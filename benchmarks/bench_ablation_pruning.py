"""A1 — vertex-pruning ablation (design choice called out in DESIGN.md)."""

from repro.experiments import run_experiment


def test_ablation_pruning(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("A1",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    assert result.values["runtime"]["no-pruning"] > 1.0
