"""A3 — shared-memory hashtable ablation (the paper's rejected variant)."""

from repro.experiments import run_experiment


def test_ablation_shared_memory(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("A3",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    # Paper: "little to no performance gain" — within a few percent.
    rel = result.values["runtime"]["shared"]
    assert 0.85 < rel <= 1.001
