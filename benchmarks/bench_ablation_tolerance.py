"""A2 — tolerance sweep ablation (the paper's τ = 0.05 trade-off)."""

from repro.experiments import run_experiment


def test_ablation_tolerance(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("A2",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    vals = result.values
    # Tighter tolerance never runs fewer iterations than the loosest one.
    assert vals[1e-5]["iterations"] >= vals[0.1]["iterations"]
    # The paper's point: tau=0.05 keeps nearly all the quality of 1e-5.
    assert vals[0.05]["modularity"] > vals[1e-5]["modularity"] - 0.05
