"""R1 — chaos soak: randomized crash/fault schedules with bit-identical resume.

Runs :func:`repro.resilience.chaos.run_chaos_soak` — 25 deterministic
adversarial schedules by default (``REPRO_SOAK_SCHEDULES`` overrides),
each combining injected device faults with a process crash at an
iteration boundary, before/mid/after the checkpoint write, and sometimes
post-crash corruption of the newest snapshot — then asserts every
schedule's resumed run reproduces the never-crashed reference bit for
bit.  That differential is the resilience layer's whole contract: under
strict-LPA determinism, surviving a crash must be invisible in the final
communities.

Writes the machine-readable :class:`~repro.resilience.chaos.SoakReport`
to ``BENCH_chaos_soak.json`` (override via ``REPRO_SOAK_OUT``) for the CI
artifact.  Graph size scales with ``REPRO_BENCH_SCALE``; the schedule
stream derives from ``REPRO_BENCH_SEED``, so a failing schedule replays
in isolation via ``make_schedule(seed + i)``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.config import LPAConfig
from repro.graph.generators import web_graph
from repro.resilience.chaos import run_chaos_soak


def _soak(scale: float, seed: int, schedules: int, workdir: Path) -> dict:
    # ~1200 vertices at the default 0.25 scale: large enough that runs
    # span several checkpoint generations, small enough for CI minutes.
    graph = web_graph(max(200, int(4800 * scale)), seed=seed)
    report = run_chaos_soak(
        graph,
        workdir,
        schedules=schedules,
        seed=seed,
        engine="hashtable",
        config=LPAConfig(max_iterations=15),
    )
    doc = report.as_dict()
    doc["scale"] = scale
    doc["seed"] = seed
    return doc


def test_chaos_soak(benchmark, bench_scale, bench_seed, tmp_path):
    schedules = int(os.environ.get("REPRO_SOAK_SCHEDULES", 25))
    doc = benchmark.pedantic(
        _soak,
        args=(bench_scale, bench_seed, schedules, tmp_path / "soak"),
        rounds=1,
        iterations=1,
    )

    out = Path(os.environ.get("REPRO_SOAK_OUT", "BENCH_chaos_soak.json"))
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'seed':>6s} {'mode':<12s} {'fired':>5s} {'corruption':<11s} "
          f"{'resumed@':>8s} {'identical':>9s}")
    for r in doc["records"]:
        s = r["schedule"]
        print(f"{s['seed']:6d} {s['crash_mode']:<12s} "
              f"{'yes' if r['crash_fired'] else 'no':>5s} "
              f"{r['corruption'] or '-':<11s} "
              f"{str(r['resumed_from']):>8s} "
              f"{'yes' if r['identical'] else 'NO':>9s}")
    print(doc["summary"])
    print(f"report written to {out}")

    assert len(doc["records"]) == schedules
    # Most schedules must actually exercise a crash — a soak where the
    # runs all converge before their crash boundary tests nothing.
    fired = sum(r["crash_fired"] for r in doc["records"])
    assert fired >= schedules // 2, f"only {fired}/{schedules} crashes fired"
    # The contract: every resumed run is bit-identical to its reference.
    divergent = [r for r in doc["records"] if not r["identical"]]
    assert not divergent, f"{len(divergent)} schedule(s) diverged after resume"
    assert doc["ok"]
