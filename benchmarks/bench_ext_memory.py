"""E3 — hashtable memory footprint (per-thread vs per-vertex)."""

from repro.experiments import run_experiment


def test_ext_memory(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment, args=("E3",), rounds=1, iterations=1,
    )
    print()
    print(result)

    # The paper's OOM pattern: only sk-2005 fails for nu-LPA.
    fits = {
        name: v["fits_wide"] or v["fits_compact"]
        for name, v in result.values.items()
        if not name.startswith("_")
    }
    assert fits["sk-2005"] is False
    assert all(ok for name, ok in fits.items() if name != "sk-2005")
    # The estimator's CSR component must price a real graph exactly.
    assert result.values["_crosscheck"]["deviation"] < 0.01
