"""E2 — size-constrained LPA partitioning (the paper's future work)."""

from repro.experiments import run_experiment


def test_ext_partitioning(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("E2",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    for name, v in result.values.items():
        assert v["cut"] < v["random_cut"], name
        assert v["imbalance"] <= 0.08, name
