"""E4 — modelled device throughput vs graph size (saturation curve)."""

from repro.experiments import run_experiment
from repro.experiments.scaling import SCALES


def test_ext_scaling(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("E4",),
        kwargs=dict(scale=min(bench_scale * 2, 1.0), seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    # Throughput must rise with graph size (device saturation).
    for name, sweep in result.values.items():
        series = [sweep[s]["edges_per_s"] for s in SCALES]
        assert series[-1] > series[0], name
