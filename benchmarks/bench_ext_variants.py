"""E1 — LPA vs COPRA / SLPA / LabelRank (extension study).

Backs the paper's Section-1 selection claim: plain LPA is the most
efficient label-propagation method while delivering comparable quality.
"""

from repro.experiments import run_experiment


def test_ext_variants(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("E1",),
        kwargs=dict(scale=min(bench_scale, 0.25), seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    assert result.values["most_efficient"] == "lpa"
    q = result.values["modularity"]
    assert q["lpa"] > 0.6 * max(q.values())  # comparable quality
