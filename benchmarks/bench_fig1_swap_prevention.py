"""F1 — regenerate Figure 1 (swap-prevention study, CC/PL/Hybrid)."""

from repro.experiments import run_experiment


def test_fig1_swap_prevention(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F1",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    quality = result.values["modularity"]
    runtime = result.values["runtime"]
    # Paper facts: PL1 is the quality disaster PL4 exists to avoid, and PL4
    # sits in the top quality cluster while not being dramatically slow.
    assert quality["PL1"] < quality["PL4"] * 0.95
    assert quality["PL4"] >= quality["PL2"] - 0.02
    assert runtime["PL4"] == 1.0  # reference
