"""F3 — regenerate Figure 3 (collision-resolution strategies)."""

from repro.experiments import run_experiment


def test_fig3_collision_resolution(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F3",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    runtime = result.values["runtime"]
    # Paper shape: quadratic probing is the clear loser (3.7x QD); the
    # periodicity of its doubling steps on Mersenne capacities shows as the
    # worst runtime here too.
    assert runtime["quadratic"] == max(runtime.values())
    # quadratic-double stays within the leading group at stand-in scale.
    assert runtime["quadratic-double"] <= runtime["quadratic"] * 0.95

    # The hub-load supplement reproduces the paper's large factors.
    stress = result.values["hub_stress"]
    qd = stress["quadratic-double"]["probes"]
    assert stress["linear"]["probes"] > 1.5 * qd
    assert stress["quadratic"]["probes"] > 10 * qd
