"""F4 — regenerate Figure 4 (thread-/block-kernel switch degree)."""

from repro.experiments import run_experiment


def test_fig4_switch_degree(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F4",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    runtime = result.values["runtime"]
    # Paper: 32 is the sweet spot. At reduced stand-in scale the exact
    # minimum can drift one step (hub tails shrink), so assert the robust
    # shape: the warp-sized middle beats both extremes, and the best value
    # sits in the 16-64 neighbourhood of 32.
    middle = min(runtime["16"], runtime["32"], runtime["64"])
    assert middle <= runtime["2"]
    assert middle <= runtime["256"] * 1.05
    assert result.values["best"] in (16, 32, 64)
