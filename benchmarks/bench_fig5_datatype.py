"""F5 — regenerate Figure 5 (fp32 vs fp64 hashtable values)."""

from repro.experiments import run_experiment


def test_fig5_datatype(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F5",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    # Paper: fp32 is moderately faster with no quality loss.
    assert result.values["runtime"]["double"] > 1.0
    assert result.values["max_modularity_gap"] < 0.01
