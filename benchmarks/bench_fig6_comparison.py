"""F6 — regenerate Figures 6a-6c (system comparison).

Paper anchors: ν-LPA 364× / 62× / 2.6× / 37× faster than FLPA / NetworKit /
Gunrock / cuGraph-Louvain; modularity +4.7 % vs FLPA, −6.1 % vs NetworKit,
−9.6 % vs Louvain; Gunrock's modularity "very low".
"""

from repro.experiments import run_experiment


def test_fig6_comparison(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F6",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    speedup = result.values["speedup"]
    # Orders of magnitude and ordering must match the paper.
    assert 100 < speedup["flpa"] < 1200
    assert 15 < speedup["networkit-lpa"] < 200
    assert 0.7 < speedup["gunrock-lpa"] < 8
    assert 10 < speedup["cugraph-louvain"] < 120
    assert speedup["flpa"] > speedup["networkit-lpa"] > speedup["gunrock-lpa"]

    q = result.values["mean_modularity"]
    # Quality ordering (paper Figure 6c).
    assert q["nu-lpa"] > q["flpa"]
    assert q["networkit-lpa"] > q["nu-lpa"]
    assert q["cugraph-louvain"] > q["nu-lpa"]
    assert q["gunrock-lpa"] == min(q.values())
