"""F7 — regenerate Figure 7 (coalesced-chaining hashtable, appendix)."""

from repro.experiments import run_experiment


def test_fig7_coalesced(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("F7",),
        kwargs=dict(scale=min(bench_scale, 0.25), seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    # Paper: coalesced chaining "did not improve performance" — it must not
    # be decisively better than the default open addressing.
    rel = result.values["runtime"]["coalesced"]
    assert rel > 0.7
