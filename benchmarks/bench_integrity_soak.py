"""R2 — integrity soak: live SDC + at-rest bit rot, never a silent wrong answer.

Runs :func:`repro.integrity.run_integrity_soak` — 20 deterministic
corruption schedules by default (``REPRO_INTEGRITY_SEEDS`` overrides),
each attacking one run three ways: valid-but-wrong ``"sdc"`` device
faults under the full :class:`~repro.integrity.config.IntegrityConfig`
guard stack, a single-bit flip in a committed checkpoint generation, and
a single-bit flip in the newest published RPSNAP01 snapshot — then
asserts every corruption was **detected and recovered** (final labels
bit-identical to the fault-free reference; damaged stores flagged by
fsck / served around) or provably harmless.  Zero silent wrong answers
is the whole contract of the integrity subsystem.

Writes the machine-readable
:class:`~repro.integrity.soak.IntegritySoakReport` to
``BENCH_integrity_soak.json`` (override via ``REPRO_INTEGRITY_OUT``) for
the CI artifact; the document validates against
``repro.observe/integrity-soak``.  Graph size scales with
``REPRO_BENCH_SCALE``; schedule *i* derives from
``default_rng([REPRO_BENCH_SEED, i])``, so a failing schedule replays in
isolation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.config import LPAConfig
from repro.graph.generators import web_graph
from repro.integrity import run_integrity_soak
from repro.observe.schema import validate_integrity_soak


def _soak(scale: float, seed: int, seeds: int, workdir: Path) -> dict:
    # ~750 vertices at the default 0.25 scale: several checkpoint
    # generations and snapshot versions per schedule, CI-minute sized.
    graph = web_graph(max(150, int(3000 * scale)), seed=seed)
    report = run_integrity_soak(
        graph,
        workdir,
        seeds=seeds,
        seed=seed,
        engine="hashtable",
        config=LPAConfig(max_iterations=15),
    )
    doc = report.as_dict()
    doc["scale"] = scale
    doc["seed"] = seed
    return doc


def test_integrity_soak(benchmark, bench_scale, bench_seed, tmp_path):
    seeds = int(os.environ.get("REPRO_INTEGRITY_SEEDS", 20))
    doc = benchmark.pedantic(
        _soak,
        args=(bench_scale, bench_seed, seeds, tmp_path / "soak"),
        rounds=1,
        iterations=1,
    )
    validate_integrity_soak(doc)

    out = Path(os.environ.get("REPRO_INTEGRITY_OUT", "BENCH_integrity_soak.json"))
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'seed':>6s} {'live-det':>8s} {'live-id':>7s} {'ckpt':>9s} "
          f"{'snap':>9s} {'silent':>6s}")
    for r in doc["records"]:

        def leg(d):
            return ("det" if d["detected"] else "pad") + (
                "/ok" if d["identical"] else "/BAD"
            )

        print(f"{r['seed']:6d} {r['live']['detections']:8d} "
              f"{'yes' if r['live']['identical'] else 'NO':>7s} "
              f"{leg(r['checkpoint']):>9s} {leg(r['snapshot']):>9s} "
              f"{r['silent']:6d}")
    print(doc["summary"])
    print(f"report written to {out}")

    assert len(doc["records"]) == seeds
    # The soak must exercise detection, not just pad flips: across all
    # schedules a majority of corruptions must have been caught.
    detected = sum(
        r["live"]["detections"] + r["checkpoint"]["detected"]
        + r["snapshot"]["detected"] for r in doc["records"]
    )
    assert detected >= seeds, f"only {detected} detections across {seeds} seeds"
    # The contract: zero silent wrong answers, every leg recovered.
    assert doc["silent"] == 0, doc["summary"]
    wrong = [r for r in doc["records"] if not r["ok"]]
    assert not wrong, f"{len(wrong)} schedule(s) published a wrong answer"
    assert doc["ok"]
