"""R3 — memory soak: OOM storms, oversized jobs, and budget shrinks.

Runs :func:`repro.resilience.run_memory_soak` — 20 deterministic
memory-pressure schedules by default (``REPRO_MEMORY_SEEDS`` overrides),
each attacking one run three ways: an injected ``"oom"`` fault storm
under a tight modelled budget (absorbed by the supervisor's memory
rungs), an oversized job bounced off the service's admission-time
footprint estimate with a typed
:class:`~repro.errors.MemoryPressure`, and a single mid-run budget
shrink — then asserts every out-of-memory event was **absorbed by a
degradation rung with valid labels** or **rejected with a typed error**,
never a silent wrong result.  Every schedule also reconciles the
allocation ledger's high-water mark against the analytic estimator —
it must stay inside the estimator's band (above the exact-size
regions, no more than :data:`~repro.gpu.governor.ESTIMATE_TOLERANCE`
past the total) — and checks a pressure-free governed run stays
bit-identical to the unconstrained reference.

Writes the machine-readable
:class:`~repro.resilience.memory_soak.MemorySoakReport` to
``BENCH_memory_soak.json`` (override via ``REPRO_MEMORY_OUT``) for the
CI artifact; the document validates against
``repro.observe/memory-soak``.  Graph size scales with
``REPRO_BENCH_SCALE``; schedule *i* derives from
``default_rng([REPRO_BENCH_SEED, i])``, so a failing schedule replays in
isolation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.config import LPAConfig
from repro.graph.generators import web_graph
from repro.observe.schema import validate_memory_soak
from repro.resilience import run_memory_soak


def _soak(scale: float, seed: int, seeds: int) -> dict:
    # ~750 vertices at the default 0.25 scale: enough hashtable regions
    # and arena waves for the ledger to matter, CI-minute sized.
    graph = web_graph(max(150, int(3000 * scale)), seed=seed)
    report = run_memory_soak(
        graph,
        seeds=seeds,
        seed=seed,
        engine="hashtable",
        config=LPAConfig(max_iterations=15),
    )
    doc = report.as_dict()
    doc["scale"] = scale
    doc["seed"] = seed
    return doc


def test_memory_soak(benchmark, bench_scale, bench_seed, tmp_path):
    seeds = int(os.environ.get("REPRO_MEMORY_SEEDS", 20))
    doc = benchmark.pedantic(
        _soak,
        args=(bench_scale, bench_seed, seeds),
        rounds=1,
        iterations=1,
    )
    validate_memory_soak(doc)

    out = Path(os.environ.get("REPRO_MEMORY_OUT", "BENCH_memory_soak.json"))
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'seed':>6s} {'ooms':>5s} {'live':>5s} {'adm':>4s} "
          f"{'shrink':>6s} {'dev':>6s} {'silent':>6s}")
    for r in doc["records"]:
        live = "ok" if (not r["live"]["absorbed"] or r["live"]["valid"]) else "BAD"
        shrink = "ok" if (not r["shrink"]["absorbed"] or r["shrink"]["valid"]) else "BAD"
        print(f"{r['seed']:6d} {r['live']['ooms'] + r['shrink']['ooms']:5d} "
              f"{live:>5s} {'rej' if r['admission']['rejected'] else 'NO':>4s} "
              f"{shrink:>6s} {r['reconcile']['deviation']:6.3f} "
              f"{r['silent']:6d}")
    print(doc["summary"])
    print(f"report written to {out}")

    assert len(doc["records"]) == seeds
    # The soak must exercise real pressure, not no-op budgets: across all
    # schedules OOM events must actually have fired and been absorbed.
    ooms = sum(r["live"]["ooms"] + r["shrink"]["ooms"] for r in doc["records"])
    assert ooms >= seeds, f"only {ooms} OOM events across {seeds} seeds"
    # Every oversized submission must bounce with a typed error.
    assert all(r["admission"]["rejected"] for r in doc["records"])
    # Ledger high-water must reconcile with the analytic estimator.
    off = [r for r in doc["records"]
           if not r["reconcile"]["within_tolerance"]]
    assert not off, (
        f"{len(off)} schedule(s) broke ledger/estimator reconciliation "
        f"(tolerance {doc['tolerance']})"
    )
    # The contract: zero silent wrong results.
    assert doc["silent"] == 0, doc["summary"]
    wrong = [r for r in doc["records"] if not r["ok"]]
    assert not wrong, f"{len(wrong)} schedule(s) failed a pressure leg"
    assert doc["ok"]
