"""Micro-benchmarks of the library's hot kernels.

Unlike the figure benches (one-shot regenerations), these time the core
vectorised operations repeatedly, so pytest-benchmark statistics are
meaningful — useful when optimising the simulator itself.
"""

import numpy as np
import pytest

from repro.core import LPAConfig, nu_lpa
from repro.core.engine_vectorized import best_labels_groupby
from repro.graph.generators import web_graph
from repro.hashing.parallel_hashtable import (
    parallel_accumulate,
    segmented_clear,
)
from repro.hashing.probing import ProbeStrategy
from repro.metrics import modularity
from repro.types import EMPTY_KEY


@pytest.fixture(scope="module")
def workload_graph():
    return web_graph(5000, avg_degree=10, seed=11)


def test_bench_parallel_accumulate(benchmark):
    rng = np.random.default_rng(0)
    n_tables, per_table = 512, 24
    caps = np.full(n_tables, 31, dtype=np.int64)
    base = np.arange(n_tables, dtype=np.int64) * 64
    p2 = np.full(n_tables, 63, dtype=np.int64)
    keys_buf = np.full(64 * n_tables, EMPTY_KEY, dtype=np.int64)
    values_buf = np.zeros(64 * n_tables, dtype=np.float32)
    entry_table = np.repeat(np.arange(n_tables, dtype=np.int64), per_table)
    entry_key = rng.integers(0, 30, size=entry_table.shape[0]) * 101
    entry_value = np.ones(entry_table.shape[0], dtype=np.float32)

    def run():
        segmented_clear(keys_buf, values_buf, base, caps)
        parallel_accumulate(
            keys_buf, values_buf, base, caps, p2,
            entry_table, entry_key, entry_value,
            ProbeStrategy.QUADRATIC_DOUBLE,
        )

    benchmark(run)


def test_bench_groupby(benchmark, workload_graph):
    g = workload_graph
    labels = np.arange(g.num_vertices, dtype=np.int64)
    src = g.source_ids()
    keys = labels[g.targets]

    benchmark(best_labels_groupby, src, keys, g.weights, labels)


def test_bench_modularity(benchmark, workload_graph):
    g = workload_graph
    labels = nu_lpa(g).labels
    benchmark(modularity, g, labels)


def test_bench_nu_lpa_vectorized(benchmark, workload_graph):
    benchmark.pedantic(
        nu_lpa, args=(workload_graph,),
        kwargs=dict(engine="vectorized"), rounds=3, iterations=1,
    )


def test_bench_nu_lpa_hashtable(benchmark, workload_graph):
    benchmark.pedantic(
        nu_lpa, args=(workload_graph,),
        kwargs=dict(engine="hashtable"), rounds=3, iterations=1,
    )


def test_bench_one_iteration(benchmark, workload_graph):
    config = LPAConfig(max_iterations=1)
    benchmark.pedantic(
        nu_lpa, args=(workload_graph, config),
        kwargs=dict(engine="hashtable"), rounds=3, iterations=1,
    )
