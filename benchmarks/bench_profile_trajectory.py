"""P1 — profile trajectory over the Table-1 stand-in suite.

Runs ν-LPA on all 13 Table-1 stand-ins and writes one
``repro.observe/bench`` document — ``BENCH_lpa.json`` by default,
overridable via ``--bench-baseline`` or ``REPRO_BENCH_OUT`` — with
per-graph modelled seconds (hashtable engine, ``profile=True``), measured
vectorized-engine wall clocks, paper-scale extrapolations, summed kernel
counters, and community counts.

Two modes:

* **baseline** (default) — write the document; later PRs diff against it;
* **check** (``--bench-check [PATH]``) — the perf regression gate: load
  the committed baseline, compare with
  :func:`repro.perf.baseline.compare_to_baseline` (>10% modelled-seconds
  or calibration-normalised wall-clock regression fails), and write the
  fresh document next to it as ``BENCH_current.json`` for CI artifacts.

Every profile is validated against the versioned schema before the
document is written, so a malformed profile fails the benchmark rather
than producing an unreadable baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.graph.datasets import dataset_names, generate_standin, get_dataset
from repro.metrics import modularity
from repro.observe.schema import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    validate_bench,
    validate_profile,
)
from repro.perf.baseline import compare_to_baseline, measure_calibration
from repro.perf.model import estimate_lpa_result_seconds, extrapolation_ratios

#: Wall-clock repetitions per graph; best-of keeps scheduler noise out.
_WALL_REPEATS = 3


def _engine_wall(graph, config: LPAConfig, engine: str) -> float:
    """Best-of-``_WALL_REPEATS`` wall seconds for one engine."""
    best = float("inf")
    for _ in range(_WALL_REPEATS):
        t0 = time.perf_counter()
        nu_lpa(graph, config, engine=engine, warn_on_no_convergence=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _profile_suite(scale: float, seed: int) -> dict:
    config = LPAConfig()
    rows = []
    for name in dataset_names():
        spec = get_dataset(name)
        graph = generate_standin(name, scale=scale, seed=seed)
        result = nu_lpa(
            graph, config, engine="hashtable", profile=True,
            warn_on_no_convergence=False,
        )
        profile = result.profile
        validate_profile(profile.as_dict())
        # The 1e-9 agreement is the profile's core invariant; enforce it on
        # every graph so the baseline can never encode a broken breakdown.
        assert abs(profile.iteration_seconds_sum - profile.modeled_seconds) < 1e-9
        ratios = extrapolation_ratios(
            graph, spec.paper_num_vertices, spec.paper_num_edges
        )
        rows.append({
            "name": name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "iterations": result.num_iterations,
            "num_communities": result.num_communities(),
            "converged": result.converged,
            "modeled_seconds": profile.modeled_seconds,
            "paper_modeled_seconds": estimate_lpa_result_seconds(result, ratios),
            "modularity": modularity(graph, result.labels),
            "wall_seconds": _engine_wall(graph, config, "vectorized"),
            "wall_seconds_hashtable": _engine_wall(graph, config, "hashtable"),
            "counters": dict(profile.counters),
        })
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "engine": "hashtable",
        "calibration_seconds": measure_calibration(),
        "device": {
            "name": config.device.name,
            "sector_bytes": config.device.sector_bytes,
        },
        "graphs": rows,
    }


def test_profile_trajectory(
    benchmark, bench_scale, bench_seed, bench_baseline_path, bench_check_path
):
    doc = benchmark.pedantic(
        _profile_suite,
        args=(bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    validate_bench(doc)

    if bench_check_path is not None:
        baseline_file = Path(bench_check_path)
        out = baseline_file.with_name("BENCH_current.json")
    else:
        out = Path(
            bench_baseline_path
            or os.environ.get("REPRO_BENCH_OUT", "BENCH_lpa.json")
        )
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'graph':18s} {'V':>9s} {'E':>10s} {'iters':>5s} {'comms':>8s} "
          f"{'model ms':>9s} {'wall ms':>8s} {'paper s':>9s} {'Q':>7s}")
    for g in doc["graphs"]:
        print(f"{g['name']:18s} {g['num_vertices']:9d} {g['num_edges']:10d} "
              f"{g['iterations']:5d} {g['num_communities']:8d} "
              f"{g['modeled_seconds'] * 1e3:9.3f} "
              f"{g['wall_seconds'] * 1e3:8.2f} "
              f"{g['paper_modeled_seconds']:9.3f} {g['modularity']:7.4f}")
    print(f"document written to {out} "
          f"(calibration {doc['calibration_seconds'] * 1e3:.2f} ms)")

    assert len(doc["graphs"]) == 13
    # Paper-scale extrapolation must dominate the stand-in time: every
    # Table-1 graph is orders of magnitude larger than its stand-in.
    for g in doc["graphs"]:
        assert g["paper_modeled_seconds"] > g["modeled_seconds"]

    if bench_check_path is not None:
        baseline = validate_bench(json.loads(Path(bench_check_path).read_text()))
        problems = compare_to_baseline(doc, baseline)
        for p in problems:
            print(f"PERF REGRESSION: {p}")
        assert not problems, (
            f"{len(problems)} perf regression(s) vs {bench_check_path}; "
            f"see output above"
        )
        print(f"perf gate passed against {bench_check_path}")
