"""Read-path latency benchmark: zipfian lookups against published snapshots.

Simulates a serving workload over the :mod:`repro.service.read` stack:
two graph sizes at least 10x apart, each with published snapshot versions,
hammered with a mixed membership/roster/diff op stream whose vertex (and
community) popularity follows a zipf law — the hot-key skew a real
membership service sees.  Readers are *cooperative* contexts (own
:class:`~repro.service.read.QueryEngine`, own RNG, round-robin interleave),
matching the deterministic single-thread execution idiom the service layer
uses everywhere else.

Latencies are recorded per op with ``perf_counter_ns`` into preallocated
arrays (gc disabled during measurement).  The report asserts two
contracts and writes the schema-validated document to ``BENCH_query.json``
(override via ``REPRO_QUERY_OUT``):

* **SLO** — worst-graph membership p99 under the budget
  (``REPRO_QUERY_SLO_P99_US``, default 250 us);
* **flatness** — membership p50 on the large graph within a small factor
  of the small graph's (O(1) reads cannot scale with graph size).

``REPRO_QUERY_LOOKUPS`` (default 1,000,000) sizes the run; CI runs
reduced.  ``pytest --query-check [PATH]`` gates against a committed
baseline instead of overwriting it (see
:func:`repro.perf.baseline.compare_query_to_baseline`).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.observe.schema import (
    QUERY_BENCH_SCHEMA,
    QUERY_BENCH_SCHEMA_VERSION,
    validate_query_bench,
)
from repro.service.read import QueryEngine, SnapshotCatalog

#: (name, num_vertices) — the large graph must be >= 10x the small one
#: for the flatness check to mean anything.
GRAPHS = (("serve_small", 50_000), ("serve_large", 500_000))

#: Vertices per community (keeps roster outputs serving-sized).
COMMUNITY_FILL = 50

#: Op mix: memberships dominate real serving load; diffs are rare but
#: priced honestly (each one opens and CRC-verifies two snapshots).
OP_MIX = {"membership": 0.899, "roster": 0.1, "diff": 0.001}

ZIPF_S = 1.1

#: Worst-graph membership p99 budget (microseconds).
DEFAULT_SLO_P99_US = 250.0

#: Large/small membership p50 ratio bound for the O(1) flatness check.
FLATNESS_BOUND = 3.0

_OPS = ("membership", "roster", "diff")


def _zipf_cdf(n: int) -> np.ndarray:
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** ZIPF_S
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _make_labels(n: int, communities: int, rng) -> np.ndarray:
    labels = rng.integers(0, communities, size=n).astype(np.int64)
    labels[:communities] = np.arange(communities)  # every community occupied
    return labels


def _publish_graph(catalog: SnapshotCatalog, name: str, n: int, rng):
    communities = max(1, n // COMMUNITY_FILL)
    labels = _make_labels(n, communities, rng)
    catalog.publish(name, labels)
    churned = labels.copy()
    moved = rng.integers(0, n, size=max(1, n // 100))
    churned[moved] = rng.integers(0, communities, size=moved.shape[0])
    catalog.publish(name, churned)
    return communities


def _reader_plan(rng, count: int, n: int, communities: int):
    """Precompute one reader's op sequence and zipfian keys."""
    ops = rng.choice(len(_OPS), size=count, p=[OP_MIX[o] for o in _OPS])
    vertex_cdf = _zipf_cdf(n)
    comm_cdf = _zipf_cdf(communities)
    vertices = np.searchsorted(vertex_cdf, rng.random(count)).astype(np.int64)
    comms = np.searchsorted(comm_cdf, rng.random(count)).astype(np.int64)
    return ops, vertices, comms


def _measure_graph(
    catalog: SnapshotCatalog, name: str, n: int, communities: int,
    lookups: int, readers: int, seed: int,
) -> dict:
    """Run one graph's share of the load; returns its report row."""
    per_reader = [lookups // readers] * readers
    per_reader[0] += lookups - sum(per_reader)
    contexts = []
    for r, count in enumerate(per_reader):
        rng = np.random.default_rng([seed, n, r])
        engine = QueryEngine(catalog)
        engine.refresh(name)  # hot path never stats the directory
        contexts.append((engine, *_reader_plan(rng, count, n, communities)))

    lat = {op: [np.empty(c, dtype=np.int64) for c in per_reader]
           for op in _OPS}
    fill = {op: [0] * readers for op in _OPS}

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Round-robin chunk interleave across reader contexts: concurrent
        # access pattern, deterministic schedule.
        chunk = 1024
        cursors = [0] * readers
        live = True
        while live:
            live = False
            for r, (engine, ops, vertices, comms) in enumerate(contexts):
                lo = cursors[r]
                hi = min(lo + chunk, ops.shape[0])
                if lo >= hi:
                    continue
                live = True
                cursors[r] = hi
                for i in range(lo, hi):
                    op = _OPS[ops[i]]
                    if op == "membership":
                        t0 = time.perf_counter_ns()
                        engine.membership(name, int(vertices[i]))
                        dt = time.perf_counter_ns() - t0
                    elif op == "roster":
                        t0 = time.perf_counter_ns()
                        engine.roster(name, int(comms[i]))
                        dt = time.perf_counter_ns() - t0
                    else:
                        t0 = time.perf_counter_ns()
                        engine.diff(name)
                        dt = time.perf_counter_ns() - t0
                    slot = fill[op][r]
                    lat[op][r][slot] = dt
                    fill[op][r] = slot + 1
    finally:
        if gc_was_enabled:
            gc.enable()
    for engine, *_ in contexts:
        engine.close()

    ops_doc = {}
    for op in _OPS:
        merged = np.concatenate([
            arr[:used] for arr, used in zip(lat[op], fill[op])
        ]) if any(fill[op]) else np.empty(0, dtype=np.int64)
        if merged.size:
            us = merged / 1000.0
            ops_doc[op] = {
                "count": int(merged.size),
                "p50_us": float(np.percentile(us, 50)),
                "p99_us": float(np.percentile(us, 99)),
                "mean_us": float(us.mean()),
            }
        else:
            ops_doc[op] = {
                "count": 0, "p50_us": 0.0, "p99_us": 0.0, "mean_us": 0.0,
            }

    versions = catalog.versions(name)
    return {
        "name": name,
        "num_vertices": n,
        "num_communities": communities,
        "snapshot_bytes": int(versions[-1].stat().st_size),
        "versions": len(versions),
        "ops": ops_doc,
    }


def run_query_bench(workdir: Path, *, lookups: int, readers: int,
                    seed: int) -> dict:
    """Publish the snapshot fixtures, run the load, build the document."""
    catalog = SnapshotCatalog(workdir / "snapshots")
    rng = np.random.default_rng(seed)
    communities = {
        name: _publish_graph(catalog, name, n, rng) for name, n in GRAPHS
    }

    share = [lookups // len(GRAPHS)] * len(GRAPHS)
    share[0] += lookups - sum(share)
    graphs = [
        _measure_graph(
            catalog, name, n, communities[name], share[i], readers, seed,
        )
        for i, (name, n) in enumerate(GRAPHS)
    ]

    budget = float(os.environ.get("REPRO_QUERY_SLO_P99_US",
                                  DEFAULT_SLO_P99_US))
    worst = max(g["ops"]["membership"]["p99_us"] for g in graphs)
    small, large = graphs[0], graphs[-1]
    small_p50 = small["ops"]["membership"]["p50_us"]
    p50_ratio = (
        large["ops"]["membership"]["p50_us"] / small_p50
        if small_p50 > 0 else 1.0
    )

    return validate_query_bench({
        "schema": QUERY_BENCH_SCHEMA,
        "version": QUERY_BENCH_SCHEMA_VERSION,
        "seed": seed,
        "lookups": lookups,
        "readers": readers,
        "zipf_s": ZIPF_S,
        "op_mix": dict(OP_MIX),
        "graphs": graphs,
        "slo": {
            "membership_p99_us": budget,
            "worst_membership_p99_us": worst,
            "met": worst <= budget,
        },
        "flatness": {
            "small_graph": small["name"],
            "large_graph": large["name"],
            "vertex_ratio": large["num_vertices"] / small["num_vertices"],
            "membership_p50_ratio": p50_ratio,
            "bound": FLATNESS_BOUND,
            "met": p50_ratio <= FLATNESS_BOUND,
        },
    })


def test_query_latency(benchmark, bench_seed, tmp_path, query_check_path):
    lookups = int(os.environ.get("REPRO_QUERY_LOOKUPS", 1_000_000))
    readers = int(os.environ.get("REPRO_QUERY_READERS", 4))
    doc = benchmark.pedantic(
        run_query_bench,
        args=(tmp_path / "query",),
        kwargs={"lookups": lookups, "readers": readers, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )

    print()
    print(f"{'graph':>12s} {'vertices':>9s} {'op':>11s} {'count':>8s} "
          f"{'p50us':>8s} {'p99us':>8s} {'meanus':>8s}")
    for g in doc["graphs"]:
        for op in _OPS:
            o = g["ops"][op]
            print(f"{g['name']:>12s} {g['num_vertices']:9d} {op:>11s} "
                  f"{o['count']:8d} {o['p50_us']:8.2f} {o['p99_us']:8.2f} "
                  f"{o['mean_us']:8.2f}")
    slo = doc["slo"]
    flat = doc["flatness"]
    print(f"SLO: membership p99 {slo['worst_membership_p99_us']:.2f}us "
          f"vs budget {slo['membership_p99_us']:.2f}us -> "
          f"{'MET' if slo['met'] else 'MISSED'}")
    print(f"flatness: p50 ratio {flat['membership_p50_ratio']:.2f} "
          f"(bound {flat['bound']:.1f}, {flat['vertex_ratio']:.0f}x "
          f"vertices) -> {'MET' if flat['met'] else 'MISSED'}")

    if query_check_path is not None:
        from repro.perf.baseline import compare_query_to_baseline

        baseline = json.loads(Path(query_check_path).read_text())
        Path("BENCH_query_current.json").write_text(
            json.dumps(doc, indent=2) + "\n"
        )
        problems = compare_query_to_baseline(doc, baseline)
        assert not problems, "query regression gate failed:\n" + "\n".join(
            f"  - {p}" for p in problems
        )
    else:
        out = Path(os.environ.get("REPRO_QUERY_OUT", "BENCH_query.json"))
        out.write_text(json.dumps(doc, indent=2) + "\n")

    assert doc["slo"]["met"], (
        f"membership p99 {slo['worst_membership_p99_us']:.2f}us exceeds "
        f"the {slo['membership_p99_us']:.2f}us budget"
    )
    assert doc["flatness"]["met"], (
        f"membership p50 grew {flat['membership_p50_ratio']:.2f}x from "
        f"{flat['small_graph']} to {flat['large_graph']} — reads are not "
        f"O(1)"
    )
