"""Service soak: seeded kill/restart schedules over the job service.

Runs :func:`repro.service.run_service_soak` across several seeded
schedules (``REPRO_SERVICE_SOAK_SCHEDULES`` overrides the count), each
replaying a mixed four-job workload under injected process deaths —
between job completions and inside checkpoint writes — and asserts that
every admitted job completes exactly once with labels bit-identical to a
crash-free reference run.  That differential is the service layer's
whole contract: under strict-LPA determinism, killing and restarting the
scheduler must be invisible in the final communities.

Also takes one post-soak :meth:`DetectionService.stats` snapshot from a
clean run of the same workload, validates it against the service schema,
and folds it into the report so CI archives the queue/breaker/latency
counters alongside the soak verdicts.

Writes the machine-readable report to ``BENCH_service_soak.json``
(override via ``REPRO_SERVICE_SOAK_OUT``) for the CI artifact.  The
schedule stream derives from ``REPRO_BENCH_SEED``, so a failing schedule
replays in isolation via ``run_service_soak(..., seed=seed + i)``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.observe.schema import validate_service_stats
from repro.service import (
    DetectionService,
    JobSpec,
    ServiceConfig,
    run_service_soak,
)

#: The workload every schedule replays: mixed datasets and engines, big
#: enough that runs span several checkpoint generations.
WORKLOAD = [
    JobSpec.dataset("svc-0", "asia_osm", scale=0.05, max_iterations=12,
                    engine="vectorized"),
    JobSpec.dataset("svc-1", "europe_osm", scale=0.05, max_iterations=12,
                    engine="hashtable"),
    JobSpec.dataset("svc-2", "kmer_V1r", scale=0.05, max_iterations=12,
                    engine="vectorized"),
    JobSpec.dataset("svc-3", "asia_osm", scale=0.08, seed=7,
                    max_iterations=12, engine="hashtable"),
]


def _soak(seed: int, schedules: int, workdir: Path) -> dict:
    records = []
    for i in range(schedules):
        outcome = run_service_soak(
            WORKLOAD,
            journal_dir=workdir / f"journal-{i}",
            config=ServiceConfig(workers=2),
            seed=seed + i,
        )
        records.append(outcome.as_dict())

    # One clean pass for the stats artifact: the soak exercises recovery,
    # this exercises the observable surface CI wants to archive.
    service = DetectionService(ServiceConfig(workers=2), recover=False)
    for spec in WORKLOAD:
        service.submit(spec)
    service.drain()
    stats = validate_service_stats(service.stats())

    return {
        "seed": seed,
        "schedules": schedules,
        "jobs_per_schedule": len(WORKLOAD),
        "records": records,
        "ok": all(r["ok"] for r in records),
        "stats": stats,
    }


def test_service_soak(benchmark, bench_seed, tmp_path):
    schedules = int(os.environ.get("REPRO_SERVICE_SOAK_SCHEDULES", 10))
    doc = benchmark.pedantic(
        _soak,
        args=(bench_seed, schedules, tmp_path / "soak"),
        rounds=1,
        iterations=1,
    )

    out = Path(os.environ.get("REPRO_SERVICE_SOAK_OUT",
                              "BENCH_service_soak.json"))
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'seed':>6s} {'crashes':>7s} {'restarts':>8s} "
          f"{'identical':>9s} {'ok':>3s}")
    for r in doc["records"]:
        print(f"{r['seed']:6d} {r['crashes']:7d} {r['restarts']:8d} "
              f"{r['identical']:9d}/{r['jobs']} "
              f"{'yes' if r['ok'] else 'NO':>3s}")
    latency = doc["stats"]["latency"]
    print(f"clean-run p50/p95 modelled: "
          f"{latency['p50_modeled_s']:.4f}/{latency['p95_modeled_s']:.4f} s")
    print(f"report written to {out}")

    assert len(doc["records"]) == schedules
    # Every schedule must actually exercise a death — a soak whose crashes
    # all miss tests nothing.
    assert all(r["crashes"] >= 1 for r in doc["records"])
    # The contract: nothing lost, nothing duplicated, everything identical.
    bad = [r for r in doc["records"] if not r["ok"]]
    assert not bad, f"{len(bad)} schedule(s) lost/duplicated/diverged"
    assert doc["ok"]
