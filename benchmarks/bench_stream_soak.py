"""Streaming-pipeline soak + throughput benchmark.

Two measurements over the same workload family:

1. **Chaos soak** — :func:`repro.stream.run_stream_soak` across seeded
   kill/restart schedules (producer deaths before/mid/after a WAL append,
   service deaths at the processor's pre-epoch / mid-epoch-apply /
   post-epoch points).  Every stream must recover bit-identically to a
   never-crashed reference and the incremental-vs-scratch modularity gap
   must stay within :data:`repro.stream.soak.GAP_BOUND`.
2. **Throughput** — one crash-free stream timed end to end: deltas
   applied per second, epochs per second, the mean warm-start frontier
   fraction (from the :class:`~repro.observe.trace.EpochEvent` stream),
   and the wall-clock speedup of warm-started incremental detection over
   re-running from scratch every epoch.

Writes the schema-validated report to ``BENCH_stream_soak.json``
(override via ``REPRO_STREAM_SOAK_OUT``; seed count via
``REPRO_STREAM_SOAK_SEEDS``) for the CI artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.lpa import nu_lpa
from repro.graph.datasets import generate_standin
from repro.observe.schema import (
    STREAM_SOAK_SCHEMA,
    STREAM_SOAK_SCHEMA_VERSION,
    validate_stream_soak,
)
from repro.observe.trace import Tracer
from repro.stream import (
    DeltaLog,
    StreamProcessor,
    random_delta_batches,
    run_stream_soak,
)

DATASET = "com-Orkut"
SCALE = 0.03
#: Throughput runs on a larger stand-in: at soak scale the per-batch
#: churn touches over half the graph, which hides the warm-start win.
THROUGHPUT_SCALE = 0.2
BATCHES = 6
BATCH_SIZE = 5
HOPS = 1


def _throughput(seed: int, workdir: Path) -> dict:
    """Time one crash-free stream; returns the ``rates`` section."""
    rng = np.random.default_rng([seed, BATCHES])
    base = generate_standin(DATASET, scale=THROUGHPUT_SCALE, seed=seed)
    batches = random_delta_batches(
        base, rng, num_batches=BATCHES, batch_size=BATCH_SIZE,
        grow_every=max(2, BATCHES // 2),
    )
    log = DeltaLog(workdir / "wal")
    for batch in batches:
        log.append(batch)
    tracer = Tracer()
    processor = StreamProcessor(
        base, log, workdir / "epochs", hops=HOPS, tracer=tracer,
    )
    processor.recover()
    t0 = time.perf_counter()
    epochs = processor.run_to_head()
    incremental_s = max(time.perf_counter() - t0, 1e-9)

    events = [e for e in tracer if e.kind == "epoch"]
    deltas = sum(e.added + e.removed + e.updated for e in events)
    frontier_mean = (
        float(np.mean([e.frontier_fraction for e in events])) if events else 0.0
    )

    # From-scratch comparison: re-detect the *final* graph once per epoch,
    # which is what a pipeline without warm starts would have to do.
    t0 = time.perf_counter()
    for _ in range(max(epochs, 1)):
        nu_lpa(processor.graph, processor.config, warn_on_no_convergence=False)
    scratch_s = max(time.perf_counter() - t0, 1e-9)

    return {
        "deltas_per_second": deltas / incremental_s,
        "epochs_per_second": epochs / incremental_s,
        "frontier_fraction_mean": frontier_mean,
        "speedup_vs_scratch": scratch_s / incremental_s,
    }


def _report(seed: int, num_seeds: int, workdir: Path) -> dict:
    soak = run_stream_soak(
        workdir / "soak",
        num_seeds=num_seeds,
        dataset=DATASET,
        scale=SCALE,
        num_batches=BATCHES,
        batch_size=BATCH_SIZE,
        hops=HOPS,
    )
    rates = _throughput(seed, workdir / "throughput")
    return validate_stream_soak({
        "schema": STREAM_SOAK_SCHEMA,
        "version": STREAM_SOAK_SCHEMA_VERSION,
        "dataset": DATASET,
        "scale": SCALE,
        "num_seeds": num_seeds,
        "batches_per_seed": BATCHES,
        "batch_size": BATCH_SIZE,
        "hops": HOPS,
        "rates": rates,
        "soak": soak.as_dict(),
    })


def test_stream_soak(benchmark, bench_seed, tmp_path):
    num_seeds = int(os.environ.get("REPRO_STREAM_SOAK_SEEDS", 20))
    doc = benchmark.pedantic(
        _report,
        args=(bench_seed, num_seeds, tmp_path / "stream"),
        rounds=1,
        iterations=1,
    )

    out = Path(os.environ.get("REPRO_STREAM_SOAK_OUT",
                              "BENCH_stream_soak.json"))
    out.write_text(json.dumps(doc, indent=2) + "\n")

    print()
    print(f"{'seed':>6s} {'producer':>8s} {'torn':>4s} {'service':>7s} "
          f"{'gap':>8s} {'ok':>3s}")
    for s in doc["soak"]["seeds"]:
        print(f"{s['seed']:6d} {s['producer_deaths']:8d} "
              f"{s['torn_tails']:4d} {s['service_deaths']:7d} "
              f"{s['modularity_gap']:8.4f} "
              f"{'yes' if s['ok'] else 'NO':>3s}")
    rates = doc["rates"]
    print(f"throughput: {rates['deltas_per_second']:.0f} deltas/s, "
          f"{rates['epochs_per_second']:.1f} epochs/s, "
          f"frontier {rates['frontier_fraction_mean']:.3f}, "
          f"speedup vs scratch {rates['speedup_vs_scratch']:.1f}x")
    print(f"report written to {out}")

    assert doc["soak"]["num_seeds"] == num_seeds
    # A soak whose deaths all miss tests nothing.
    assert all(
        s["producer_deaths"] + s["service_deaths"] >= 1
        for s in doc["soak"]["seeds"]
    )
    bad = [s for s in doc["soak"]["seeds"] if not s["ok"]]
    assert not bad, f"{len(bad)} stream(s) diverged after kill/restart"
    assert doc["soak"]["ok"]
