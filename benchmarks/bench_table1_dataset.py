"""T1 — regenerate Table 1 (datasets + ν-LPA community counts)."""

from repro.experiments import run_experiment


def test_table1(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("T1",),
        kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    # Shape checks against the paper's Table 1.
    vals = result.values
    assert len(vals) == 13
    # Road/k-mer families find communities for a large fraction of vertices;
    # web graphs far fewer (paper: 0.13-0.17 vs 0.02-0.07 per vertex).
    assert vals["kmer_V1r"]["communities_per_vertex"] > 0.05
    assert vals["indochina-2004"]["communities_per_vertex"] < 0.06
