"""Benchmark configuration.

Every benchmark regenerates one paper artefact (table/figure) through
:mod:`repro.experiments` and reports the regenerated rows in the captured
output.  ``REPRO_BENCH_SCALE`` (default 0.25) sizes the dataset stand-ins:
0.25 keeps the full suite in minutes on one core; 1.0 gives the
higher-fidelity numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = 0.25


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Stand-in scale for benchmark runs (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed shared by all benchmark graph generation."""
    return int(os.environ.get("REPRO_BENCH_SEED", 42))
