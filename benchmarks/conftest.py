"""Benchmark configuration.

Every benchmark regenerates one paper artefact (table/figure) through
:mod:`repro.experiments` and reports the regenerated rows in the captured
output.  ``REPRO_BENCH_SCALE`` (default 0.25) sizes the dataset stand-ins:
0.25 keeps the full suite in minutes on one core; 1.0 gives the
higher-fidelity numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = 0.25


def pytest_addoption(parser):
    group = parser.getgroup("repro-bench")
    group.addoption(
        "--bench-baseline",
        action="store",
        default=None,
        metavar="PATH",
        help="write the trajectory bench document to PATH (refreshes the "
             "committed baseline; default BENCH_lpa.json via REPRO_BENCH_OUT)",
    )
    group.addoption(
        "--bench-check",
        action="store",
        nargs="?",
        const="BENCH_lpa.json",
        default=None,
        metavar="PATH",
        help="regression-gate mode: compare the run against the committed "
             "baseline at PATH (default BENCH_lpa.json) instead of "
             "overwriting it; fails on >10%% modelled-seconds or "
             "calibration-normalised wall-clock regression",
    )
    group.addoption(
        "--query-check",
        action="store",
        nargs="?",
        const="BENCH_query.json",
        default=None,
        metavar="PATH",
        help="regression-gate mode for the query bench: compare membership "
             "p99 against the committed baseline at PATH (default "
             "BENCH_query.json) instead of overwriting it; fails when the "
             "SLO is missed or latency regresses past the headroom factor",
    )


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Stand-in scale for benchmark runs (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed shared by all benchmark graph generation."""
    return int(os.environ.get("REPRO_BENCH_SEED", 42))


@pytest.fixture(scope="session")
def bench_baseline_path(request) -> str | None:
    """Target path for refreshing the committed baseline (or ``None``)."""
    return request.config.getoption("--bench-baseline")


@pytest.fixture(scope="session")
def bench_check_path(request) -> str | None:
    """Baseline to gate against (``None`` = baseline-writing mode)."""
    return request.config.getoption("--bench-check")


@pytest.fixture(scope="session")
def query_check_path(request) -> str | None:
    """Query-bench baseline to gate against (``None`` = writing mode)."""
    return request.config.getoption("--query-check")
