"""Scenario: reproduce one row of the paper's Figure-6 comparison.

Runs all five systems — ν-LPA, FLPA, NetworKit PLP, Gunrock LPA, and the
cuGraph-Louvain stand-in — on the com-LiveJournal stand-in, printing
measured modularity and the modelled paper-scale runtime per system.

Run:
    python examples/compare_systems.py [dataset-name]
"""

import sys

from repro.graph.datasets import dataset_names, generate_standin
from repro.perf.harness import ALGORITHMS, run_measurement


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "com-LiveJournal"
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}; pick one of {dataset_names()}")

    graph = generate_standin(dataset, scale=0.3, seed=42)
    print(f"{dataset} stand-in: {graph}\n")
    print(f"{'system':18s} {'Q':>8s} {'communities':>12s} {'iters':>6s} "
          f"{'modelled paper-scale s':>24s}")
    for system in ALGORITHMS:
        m = run_measurement(system, graph, dataset=dataset, seed=42)
        print(f"{system:18s} {m.modularity:8.4f} {m.num_communities:12d} "
              f"{m.iterations:6d} {m.modeled_seconds:24.3f}")


if __name__ == "__main__":
    main()
