"""Scenario: keep communities fresh as the graph changes.

A streaming setting: a crawl keeps discovering links, and re-running LPA
from scratch after every batch is wasteful.  ν-LPA's pruning frontier
supports warm restarts: seed the run with the previous labels and only the
touched region active, and corrections propagate exactly as far as they
need to.

Run:
    python examples/dynamic_updates.py
"""

import numpy as np

from repro import nu_lpa
from repro.core import nu_lpa_incremental
from repro.graph.build import from_edges
from repro.graph.generators import web_graph
from repro.metrics import modularity


def add_random_edges(graph, count, rng):
    """Insert ``count`` random edges; returns (new_graph, touched_vertices)."""
    new_src = rng.integers(0, graph.num_vertices, size=count)
    new_dst = rng.integers(0, graph.num_vertices, size=count)
    src = np.concatenate([graph.source_ids(), new_src])
    dst = np.concatenate([graph.targets, new_dst])
    w = np.concatenate([graph.weights, np.ones(count, dtype=np.float32)])
    updated = from_edges(src, dst, w, num_vertices=graph.num_vertices)
    return updated, np.unique(np.concatenate([new_src, new_dst]))


def main() -> None:
    rng = np.random.default_rng(21)
    graph = web_graph(10_000, avg_degree=10, seed=21)
    result = nu_lpa(graph, engine="hashtable")
    print(f"initial: {graph}  Q={modularity(graph, result.labels):.4f} "
          f"({result.total_counters.vertices_processed:,} vertex visits)\n")

    for batch in range(3):
        graph, touched = add_random_edges(graph, 25, rng)
        fresh = nu_lpa(graph, engine="hashtable")
        warm = nu_lpa_incremental(
            graph, result.labels, touched, engine="hashtable"
        )
        speedup = (
            fresh.total_counters.vertices_processed
            / max(warm.total_counters.vertices_processed, 1)
        )
        print(f"batch {batch + 1}: +25 edges, {touched.shape[0]} touched "
              f"vertices")
        print(f"  fresh run: Q={modularity(graph, fresh.labels):.4f} "
              f"({fresh.total_counters.vertices_processed:,} visits)")
        print(f"  warm run:  Q={modularity(graph, warm.labels):.4f} "
              f"({warm.total_counters.vertices_processed:,} visits, "
              f"{speedup:.1f}x less vertex work)\n")
        result = warm


if __name__ == "__main__":
    main()
