"""Scenario: inspect what the simulated GPU actually did.

The instrumented hashtable engine counts every event a real A100 would
generate — memory sectors, hashtable probes, warp-critical-path work,
atomic CAS/add traffic, residency waves — and the cost model converts the
counts into modelled seconds.  This tour runs one configuration per probing
strategy and prints the breakdown, ending with the modelled runtime at
paper scale (it-2004's 2.19 B edges).

Run:
    python examples/gpu_simulator_tour.py
"""

from repro import LPAConfig, ProbeStrategy, nu_lpa
from repro.gpu.device import A100
from repro.graph.datasets import generate_standin, get_dataset
from repro.perf.model import (
    estimate_gpu_seconds,
    extrapolation_ratios,
    scale_counters,
)
from repro.perf.platforms import A100_PLATFORM


def main() -> None:
    dataset = "it-2004"
    graph = generate_standin(dataset, scale=0.3, seed=42)
    spec = get_dataset(dataset)
    ratios = extrapolation_ratios(
        graph, spec.paper_num_vertices, spec.paper_num_edges
    )
    print(f"{dataset} stand-in: {graph} "
          f"(paper scale: |V|={spec.paper_num_vertices:,}, "
          f"|E|={spec.paper_num_edges:,})\n")

    header = (f"{'strategy':18s} {'iters':>5s} {'edges':>12s} {'probes':>12s} "
              f"{'probes/edge':>11s} {'warp-serial':>12s} {'atomics':>10s} "
              f"{'modelled s':>10s}")
    print(header)
    for strategy in ProbeStrategy:
        result = nu_lpa(graph, LPAConfig(probing=strategy), engine="hashtable")
        c = result.total_counters
        paper_scale = scale_counters(c, ratios)
        secs = estimate_gpu_seconds(paper_scale, A100_PLATFORM)
        print(f"{strategy.value:18s} {result.num_iterations:5d} "
              f"{c.edges_scanned:12,d} {c.probes:12,d} "
              f"{c.probes / max(c.edges_scanned, 1):11.3f} "
              f"{c.warp_serial_probes:12,d} {c.atomic_add:10,d} {secs:10.3f}")

    # Wave structure of the default run.
    result = nu_lpa(graph, engine="hashtable")
    c = result.total_counters
    print(f"\ndefault run: {c.launches} kernel launches in {c.waves} waves; "
          f"{c.bytes_moved(A100.sector_bytes) / 1e9:.2f} GB moved at "
          f"stand-in scale; "
          f"{c.slots_cleared:,} hashtable slots cleared")


if __name__ == "__main__":
    main()
