"""Scenario: file-based pipeline — save, reload, and cluster a graph.

Shows the supported interchange formats (Matrix Market as used by
SuiteSparse, SNAP edge lists, METIS) and that community detection results
are identical regardless of the on-disk representation.

Run:
    python examples/graph_io_roundtrip.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import load_graph, nu_lpa
from repro.graph.generators import lfr_like
from repro.graph.io import write_edgelist, write_matrix_market, write_metis
from repro.metrics import modularity


def main() -> None:
    graph, truth = lfr_like(2000, avg_degree=10, mixing=0.2, seed=9)
    reference = nu_lpa(graph)
    print(f"in-memory graph: {graph}  "
          f"Q={modularity(graph, reference.labels):.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        files = {
            "Matrix Market": tmpdir / "graph.mtx",
            "edge list": tmpdir / "graph.txt",
            "edge list (gzip)": tmpdir / "graph.txt.gz",
            "METIS": tmpdir / "graph.graph",
        }
        write_matrix_market(graph, files["Matrix Market"])
        write_edgelist(graph, files["edge list"])
        write_edgelist(graph, files["edge list (gzip)"])
        write_metis(graph, files["METIS"])

        for fmt, path in files.items():
            loaded = load_graph(path)
            result = nu_lpa(loaded)
            # Edge lists cannot represent isolated vertices, so their
            # roundtrip compacts ids; compare labels only when the vertex
            # set is preserved, otherwise compare quality.
            if loaded.num_vertices == graph.num_vertices:
                fidelity = (
                    f"identical-labels="
                    f"{np.array_equal(result.labels, reference.labels)}"
                )
            else:
                fidelity = f"compacted-to-{loaded.num_vertices}-vertices"
            print(f"{fmt:18s} {path.stat().st_size:>9,d} bytes  {fidelity}  "
                  f"Q={modularity(loaded, result.labels):.4f}")


if __name__ == "__main__":
    main()
