"""Scenario: a multilevel pipeline — coarsen, partition, refine-by-lift.

The paper's related-work section surveys LPA-based multilevel partitioners
(SCLaP, PuLP, Mt-KaHIP); its conclusion names graph partitioning as
ν-LPA's next application.  This example composes the library's pieces into
that pipeline:

1. coarsen the graph with weight-constrained LPA;
2. partition the coarsest level with size-constrained LPA;
3. lift the partition back to the original vertices;
4. compare against partitioning the fine graph directly.

Run:
    python examples/multilevel_pipeline.py
"""

import numpy as np

from repro.graph.coarsen import coarsen
from repro.graph.generators import road_network
from repro.partition import edge_cut_fraction, imbalance, size_constrained_lpa


def main() -> None:
    graph = road_network(35, 35, chain_length=6, seed=11)
    k = 8
    print(f"graph: {graph}; target: {k} parts\n")

    # Direct partitioning of the fine graph.
    direct = size_constrained_lpa(graph, k, epsilon=0.05)
    print(f"direct:      cut={direct.edge_cut_fraction:.4f} "
          f"imbalance={direct.imbalance:.3f} sweeps={direct.iterations}")

    # Multilevel: coarsen, partition small, lift.
    hierarchy = coarsen(graph, max_weight=graph.num_vertices // (4 * k))
    print(f"coarsening:  {' -> '.join(str(g.num_vertices) for g in hierarchy.levels)} "
          f"vertices ({hierarchy.reduction:.1f}x reduction)")

    coarse = hierarchy.coarsest
    # Balance by super-vertex *weight* so the lifted partition stays
    # balanced over original vertices.
    coarse_part = size_constrained_lpa(
        coarse, k, epsilon=0.05, vertex_weights=hierarchy.vertex_weights
    )
    lifted = coarse_part.parts[hierarchy.mapping]
    print(f"multilevel:  cut={edge_cut_fraction(graph, lifted):.4f} "
          f"imbalance={imbalance(lifted, k):.3f} "
          f"(partitioned {coarse.num_vertices} super-vertices)")

    # Baseline for scale.
    rng = np.random.default_rng(0)
    random_cut = edge_cut_fraction(
        graph, rng.integers(0, k, size=graph.num_vertices)
    )
    print(f"random:      cut={random_cut:.4f}")


if __name__ == "__main__":
    main()
