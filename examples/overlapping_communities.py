"""Scenario: overlapping community detection with the LPA variant family.

The paper's selection study (Section 1) compared plain LPA with COPRA,
SLPA, and LabelRank before committing to LPA.  This example runs all four
on a graph with a genuinely overlapping vertex — a consultant linked
equally to two otherwise-disjoint teams — and shows that the overlapping
variants can express the double membership plain LPA cannot.

Run:
    python examples/overlapping_communities.py
"""

import itertools

import numpy as np

from repro import nu_lpa
from repro.graph.build import from_edges
from repro.metrics import modularity
from repro.variants import copra, labelrank, slpa


def build_two_teams_with_consultant():
    """Two K6 teams; vertex 12 is wired equally into both."""
    edges = []
    for base in (0, 6):
        edges.extend(
            (base + a, base + b) for a, b in itertools.combinations(range(6), 2)
        )
    consultant = 12
    edges += [(consultant, v) for v in (0, 1, 2, 6, 7, 8)]
    src, dst = map(np.asarray, zip(*edges))
    return from_edges(src, dst), consultant


def main() -> None:
    graph, consultant = build_two_teams_with_consultant()
    print(f"graph: {graph} — vertex {consultant} belongs to both teams\n")

    lpa = nu_lpa(graph)
    print(f"{'nu-LPA':12s} Q={modularity(graph, lpa.labels):.3f} "
          f"consultant -> community {lpa.labels[consultant]} (single, by design)")

    for name, fn, kwargs in (
        ("COPRA", copra, dict(v=2)),
        ("SLPA", slpa, dict(rounds=60, r=0.1)),
        ("LabelRank", labelrank, dict(cutoff=0.05)),
    ):
        r = fn(graph, seed=5, **kwargs)
        member_of = sorted(
            int(c) for v, c in zip(r.vertex, r.label) if v == consultant
        )
        print(f"{name:12s} Q={modularity(graph, r.labels):.3f} "
              f"consultant memberships: {member_of} "
              f"(mean memberships/vertex {r.mean_memberships_per_vertex():.2f})")


if __name__ == "__main__":
    main()
