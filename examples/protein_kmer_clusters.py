"""Scenario: cluster a protein k-mer graph and validate against ground truth.

GenBank k-mer graphs (the paper's kmer_A2a / kmer_V1r) decompose into tens
of millions of tiny communities — unbranched sequence runs.  This example
clusters a k-mer stand-in, then uses a planted-partition benchmark to show
the NMI-vs-modularity point the paper cites: LPA's modularity is moderate,
but its agreement with ground truth is high.

Run:
    python examples/protein_kmer_clusters.py
"""

from repro import nu_lpa
from repro.baselines import louvain
from repro.graph.generators import kmer_graph, planted_partition
from repro.metrics import (
    modularity,
    normalized_mutual_information,
    summarize_communities,
)


def main() -> None:
    # Part 1: the k-mer workload.
    graph = kmer_graph(30_000, seed=5)
    result = nu_lpa(graph)
    s = summarize_communities(result.labels)
    print(f"k-mer graph: {graph}")
    print(f"nu-LPA found {s.num_communities} clusters "
          f"(median size {s.median_size:.0f}, largest {s.largest}) "
          f"Q={modularity(graph, result.labels):.4f}\n")

    # Part 2: ground-truth agreement on a planted benchmark.
    bench, truth = planted_partition(2000, 20, p_in=0.15, p_out=0.005, seed=5)
    lpa_labels = nu_lpa(bench).labels
    louvain_labels = louvain(bench).labels
    print(f"planted benchmark: {bench} with 20 planted communities")
    print(f"{'method':10s} {'Q':>8s} {'NMI vs truth':>13s}")
    for name, labels in (("nu-LPA", lpa_labels), ("Louvain", louvain_labels)):
        print(f"{name:10s} {modularity(bench, labels):8.4f} "
              f"{normalized_mutual_information(truth, labels):13.4f}")


if __name__ == "__main__":
    main()
