"""Quickstart: detect communities in a synthetic web crawl with ν-LPA.

Run:
    python examples/quickstart.py
"""

from repro import LPAConfig, nu_lpa
from repro.graph.generators import web_graph
from repro.metrics import modularity, summarize_communities

def main() -> None:
    # A 20k-page synthetic crawl: heavy-tailed degrees, host-local links.
    graph = web_graph(20_000, avg_degree=12, seed=7)
    print(f"graph: {graph}")

    # Paper defaults: Pick-Less every 4 iterations, quadratic-double
    # probing, tolerance 0.05, at most 20 iterations.
    result = nu_lpa(graph)

    q = modularity(graph, result.labels)
    summary = summarize_communities(result.labels)
    print(f"converged:     {result.converged} in {result.num_iterations} iterations")
    print(f"communities:   {summary.num_communities}")
    print(f"largest:       {summary.largest} vertices "
          f"({summary.largest_fraction:.1%} of the graph)")
    print(f"modularity:    {q:.4f}")

    # Tightening the tolerance buys a little quality for more iterations.
    tight = nu_lpa(graph, LPAConfig(tolerance=0.001))
    print(f"tau=0.001:     Q={modularity(graph, tight.labels):.4f} "
          f"in {tight.num_iterations} iterations")


if __name__ == "__main__":
    main()
