"""Scenario: partition a road network into regions.

Road networks (the paper's asia_osm / europe_osm family) are LPA's hard
case: average degree ~2.1 and near-perfect local symmetry, which is where
community swaps bite and Pick-Less earns its keep.  This example contrasts
ν-LPA with and without swap mitigation and against the Louvain quality
ceiling.

Run:
    python examples/road_network_regions.py
"""

from repro import LPAConfig, nu_lpa
from repro.baselines import louvain
from repro.graph.generators import road_network
from repro.metrics import modularity, summarize_communities


def main() -> None:
    graph = road_network(40, 40, chain_length=6, seed=3)
    print(f"road network: {graph}")

    runs = {
        "nu-LPA (PL4, paper default)": nu_lpa(graph),
        "nu-LPA (no swap mitigation)": nu_lpa(graph, LPAConfig(pl_period=None)),
        "nu-LPA (Cross-Check every iter)": nu_lpa(
            graph, LPAConfig(pl_period=None, cc_period=1)
        ),
    }
    for name, result in runs.items():
        q = modularity(graph, result.labels)
        s = summarize_communities(result.labels)
        conv = "converged" if result.converged else "NOT converged"
        print(f"{name:36s} Q={q:.4f}  regions={s.num_communities:5d}  "
              f"iters={result.num_iterations:2d}  {conv}")

    lv = louvain(graph)
    print(f"{'Louvain (quality ceiling)':36s} Q={modularity(graph, lv.labels):.4f}  "
          f"regions={lv.num_communities():5d}  passes={lv.extra['passes']}")


if __name__ == "__main__":
    main()
