"""repro — reproduction of ν-LPA (Sahu, 2025) in pure Python.

Fast GPU-based Label Propagation for community detection, rebuilt on a
deterministic SIMT execution-model simulator: per-vertex open-addressing
hashtables with hybrid quadratic-double probing, Pick-Less symmetry
breaking every 4 iterations, a two-kernel degree partition, and fp32
hashtable values — plus the four systems the paper compares against and a
benchmark harness regenerating every table and figure.

Quickstart::

    from repro import nu_lpa, LPAConfig
    from repro.graph.generators import web_graph
    from repro.metrics import modularity

    g = web_graph(20_000, seed=7)
    result = nu_lpa(g)
    print(result.num_communities(), modularity(g, result.labels))
"""

from repro.core import (
    LPAConfig,
    LPAResult,
    ResilienceConfig,
    RunBudget,
    SwapPrevention,
    nu_lpa,
)
from repro.graph import CSRGraph, from_edges, load_graph
from repro.hashing import ProbeStrategy
from repro.metrics import modularity, normalized_mutual_information
from repro.observe import Tracer
from repro.resilience import FaultSpec
from repro.resilience.validate import ValidationReport, validate_graph

__version__ = "1.0.0"

#: Job-service names resolved lazily (PEP 562): the service pulls in the
#: full resilience + journal stack, which ``import repro`` must not pay.
_SERVICE_NAMES = {
    "DetectionService",
    "ServiceConfig",
    "JobSpec",
    "JobRecord",
    "JobOutcome",
    "JobState",
    "GraphRef",
}


def __getattr__(name: str):
    if name in _SERVICE_NAMES:
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SERVICE_NAMES)


__all__ = [
    "nu_lpa",
    "LPAConfig",
    "LPAResult",
    "ResilienceConfig",
    "RunBudget",
    "FaultSpec",
    "SwapPrevention",
    "ValidationReport",
    "validate_graph",
    "Tracer",
    "ProbeStrategy",
    "CSRGraph",
    "from_edges",
    "load_graph",
    "modularity",
    "normalized_mutual_information",
    "DetectionService",
    "ServiceConfig",
    "JobSpec",
    "JobRecord",
    "JobOutcome",
    "JobState",
    "GraphRef",
    "__version__",
]
