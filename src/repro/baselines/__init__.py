"""Reimplementations of the systems the paper compares against.

Each baseline is built from its published algorithm description so the
quality numbers in the Figure-6 comparison are *measured*, not asserted:

* :func:`flpa` — Fast Label Propagation (Traag & Šubelj 2023): sequential,
  queue-based, processes only vertices with recently-updated neighbourhoods;
* :func:`networkit_plp` — NetworKit's parallel LPA: unique labels, active
  flags, tolerance 1e-5, guided-schedule multicore processing;
* :func:`gunrock_lpa` — Gunrock-style fully synchronous data-parallel LPA
  with no swap mitigation (the reason its modularity is "very low");
* :func:`louvain` — the Louvain method (move + aggregate phases), standing
  in for cuGraph Louvain;
* :func:`gve_lpa` — GVE-LPA, the paper's own multicore ancestor of ν-LPA.
"""

from repro.baselines.flpa import flpa
from repro.baselines.networkit_plp import networkit_plp
from repro.baselines.gunrock_lpa import gunrock_lpa
from repro.baselines.louvain import louvain, LouvainResult
from repro.baselines.gve_lpa import gve_lpa
from repro.baselines.rak import rak
from repro.baselines.common import BaselineResult

__all__ = [
    "flpa",
    "networkit_plp",
    "gunrock_lpa",
    "louvain",
    "LouvainResult",
    "gve_lpa",
    "rak",
    "BaselineResult",
]
