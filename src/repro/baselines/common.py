"""Shared machinery for the baseline implementations.

The multicore baselines (NetworKit PLP, GVE-LPA) are asynchronous LPA run
by a few dozen hardware threads: each thread walks its scheduled vertices
sequentially and every label write is immediately visible.  We model that
as *chunk-asynchronous* execution — vertices are processed in small chunks
(one chunk ≈ one scheduling quantum across the cores); reads within a chunk
see the pre-chunk state, commits land at chunk boundaries.  With chunk
sizes near the hardware thread count this is a faithful and fully
vectorisable stand-in for CPU-parallel async LPA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core._gather import gather_edges
from repro.core.engine_vectorized import best_labels_groupby
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["BaselineResult", "chunked_async_sweep", "decorrelated_order"]

#: Knuth multiplicative constant for the deterministic processing shuffle.
_ORDER_MULT = np.int64(2654435761)
_ORDER_MASK = np.int64(2**31 - 1)


def decorrelated_order(vertices: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random processing order for async sweeps.

    Synthetic generators hand out geometrically-contiguous vertex ids
    (chain interiors, host blocks), so an *in-id-order* asynchronous sweep
    lets one label cascade down an entire chain in a single pass — an
    artifact real systems do not exhibit (crawl/OSM ids are not
    geometry-ordered, and thread interleaving decorrelates the schedule
    further).  Sorting by a multiplicative hash of the id restores the
    realistic decorrelated order while staying reproducible.
    """
    key = (vertices * _ORDER_MULT) & _ORDER_MASK
    return vertices[np.argsort(key, kind="stable")]


@dataclass
class BaselineResult:
    """Outcome of a baseline run, with the work counts its cost model needs."""

    labels: np.ndarray
    algorithm: str
    iterations: int
    converged: bool
    #: Total adjacency entries examined across the run.
    edges_scanned: int
    #: Vertices processed across the run.
    vertices_processed: int
    #: ΔN per iteration.
    changed_history: list[int] = field(default_factory=list)
    #: Wall-clock seconds of the Python simulation (not modelled time).
    wall_seconds: float = 0.0
    #: Algorithm-specific extras (e.g. Louvain pass structure).
    extra: dict = field(default_factory=dict)

    def num_communities(self) -> int:
        """Distinct labels in the final assignment."""
        return int(np.unique(self.labels).shape[0])


def chunked_async_sweep(
    graph: CSRGraph,
    labels: np.ndarray,
    active: np.ndarray,
    chunk: int,
    *,
    tie_break: str = "hash",
) -> tuple[np.ndarray, int]:
    """One asynchronous pass over ``active`` vertices in ``chunk``-sized steps.

    Returns ``(changed_vertices, edges_scanned)``.  ``labels`` is updated in
    place chunk by chunk, so later chunks observe earlier chunks' commits —
    the defining property of asynchronous LPA.

    Ties default to the ``"hash"`` tie-break: a monotone ("smallest")
    tie-break combined with asynchronous visibility lets small labels
    cascade across the graph in a single pass, collapsing quality — the
    direction-free hash order models what a real hashtable scan does.
    """
    changed_parts: list[np.ndarray] = []
    edges = 0
    for lo in range(0, active.shape[0], chunk):
        batch = active[lo : lo + chunk]
        gather = gather_edges(graph, batch)
        targets = graph.targets[gather.edge_index]
        non_loop = targets != batch[gather.table_id]
        table_id = gather.table_id[non_loop]
        keys = labels[targets[non_loop]]
        values = graph.weights[gather.edge_index][non_loop]
        edges += int(keys.shape[0])

        fallback = labels[batch]
        best = best_labels_groupby(
            table_id, keys, values, fallback, tie_break=tie_break
        )
        adopt = best != fallback
        adopters = batch[adopt]
        labels[adopters] = best[adopt]
        if adopters.shape[0]:
            changed_parts.append(adopters)
    changed = (
        np.concatenate(changed_parts)
        if changed_parts
        else np.empty(0, dtype=VERTEX_DTYPE)
    )
    return changed, edges
