"""FLPA — Fast Label Propagation Algorithm (Traag & Šubelj 2023).

The sequential queue-based LPA variant shipped in igraph
(``IGRAPH_LPA_FAST``): every vertex starts in the queue with a unique
label; popping a vertex recomputes its dominant neighbour label; on a
change, neighbours *not already sharing the new label* re-enter the queue
(if absent).  No random node-order shuffling; among tied dominant labels a
random one is picked (the paper notes both properties).  Convergence is
exact: the algorithm stops only when the queue drains — the reason the
paper observes FLPA "can take a large number of iterations ... with minimal
gain in community quality".

The inner loop is inherently sequential (each pop observes all previous
updates), so this is an honest O(M)-per-pass Python/NumPy hybrid: the
dominant-label computation per pop is a small vectorised ``bincount`` over
the neighbour slice.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.baselines.common import BaselineResult
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["flpa"]


def _dominant_label(
    labels: np.ndarray,
    nbrs: np.ndarray,
    wts: np.ndarray,
    vertex: int,
    rng: np.random.Generator,
) -> int:
    """Most-weighted neighbour label; ties broken uniformly at random."""
    non_loop = nbrs != vertex
    if not non_loop.any():
        return int(labels[vertex])
    nbr_labels = labels[nbrs[non_loop]]
    w = wts[non_loop].astype(np.float64)
    uniq, inv = np.unique(nbr_labels, return_inverse=True)
    sums = np.zeros(uniq.shape[0], dtype=np.float64)
    np.add.at(sums, inv, w)
    best = sums.max()
    candidates = uniq[sums >= best - 1e-12]
    if candidates.shape[0] == 1:
        return int(candidates[0])
    return int(candidates[rng.integers(0, candidates.shape[0])])


def flpa(
    graph: CSRGraph,
    *,
    seed: int = 0,
    max_pops: int | None = None,
) -> BaselineResult:
    """Run FLPA to exact convergence (empty queue).

    Parameters
    ----------
    graph:
        Undirected weighted CSR graph.
    seed:
        Seed for the random tie-break.
    max_pops:
        Safety cap on queue pops (default ``50 * N``); exceeded only on
        adversarial inputs, reported as ``converged=False``.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if max_pops is None:
        max_pops = 50 * max(n, 1)

    queue: deque[int] = deque(range(n))
    in_queue = np.ones(n, dtype=bool)

    t0 = time.perf_counter()
    pops = 0
    changes = 0
    edges_scanned = 0
    converged = True
    while queue:
        if pops >= max_pops:
            converged = False
            break
        v = queue.popleft()
        in_queue[v] = False
        pops += 1

        nbrs = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        edges_scanned += int(nbrs.shape[0])
        new_label = _dominant_label(labels, nbrs, wts, v, rng)
        if new_label != labels[v]:
            labels[v] = new_label
            changes += 1
            # Re-queue neighbours not already in the new community.
            for j in nbrs[labels[nbrs] != new_label]:
                j = int(j)
                if not in_queue[j]:
                    in_queue[j] = True
                    queue.append(j)

    return BaselineResult(
        labels=labels,
        algorithm="flpa",
        iterations=max(1, pops // max(n, 1)),
        converged=converged,
        edges_scanned=edges_scanned,
        vertices_processed=pops,
        changed_history=[changes],
        wall_seconds=time.perf_counter() - t0,
        extra={"pops": pops},
    )
