"""Gunrock-style LPA: fully synchronous data-parallel label propagation.

Gunrock's ``LpProblem`` propagates labels with a bulk-synchronous operator:
every vertex simultaneously reads its neighbours' *previous-iteration*
labels and adopts the dominant one.  There is no swap mitigation, which on
symmetric structures produces persistent label oscillation — the mechanism
behind the paper's observation that "the modularity achieved by Gunrock LPA
is very low".

This is one ``best_labels_groupby`` over all edges per iteration — the
simplest and fastest baseline to simulate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult
from repro.core.engine_vectorized import best_labels_groupby
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["gunrock_lpa"]


def gunrock_lpa(
    graph: CSRGraph,
    *,
    max_iterations: int = 10,
    seed: int = 0,
) -> BaselineResult:
    """Run synchronous LPA for up to ``max_iterations`` iterations.

    Stops early when no vertex changes (rare: oscillation usually persists,
    so Gunrock-style runs are effectively fixed-iteration — the paper times
    its per-iteration cost).
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    src = graph.source_ids()
    dst = graph.targets
    non_loop = src != dst
    src_nl = src[non_loop]
    dst_nl = dst[non_loop]
    w_nl = graph.weights[non_loop]

    t0 = time.perf_counter()
    history: list[int] = []
    edges_total = 0
    converged = n == 0

    for _ in range(max_iterations):
        old = labels
        keys = old[dst_nl]
        best = best_labels_groupby(src_nl, keys, w_nl, old)
        edges_total += int(src_nl.shape[0])
        changed = int(np.count_nonzero(best != old))
        history.append(changed)
        labels = best  # synchronous commit: next round reads this snapshot
        if changed == 0:
            converged = True
            break

    return BaselineResult(
        labels=labels,
        algorithm="gunrock-lpa",
        iterations=len(history),
        converged=converged,
        edges_scanned=edges_total,
        vertices_processed=len(history) * n,
        changed_history=history,
        wall_seconds=time.perf_counter() - t0,
    )
