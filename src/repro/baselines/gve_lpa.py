"""GVE-LPA — the paper's multicore ancestor of ν-LPA (Sahu 2023).

Shares ν-LPA's algorithmic frame: asynchronous updates, per-iteration
tolerance 0.05, at most 20 iterations, vertex pruning, strict LPA.  Instead
of GPU hashtables it uses per-thread collision-free hashtables (a keys list
plus a full-size values array per thread), which on a CPU's few dozen
threads is affordable — the very design the paper explains does *not*
transfer to a GPU's hundred-thousand threads.

Chunk-asynchronous execution models the multicore thread pool; community
swaps are rare at CPU thread counts, so no Pick-Less is needed (nor does
GVE-LPA have one).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    chunked_async_sweep,
    decorrelated_order,
)
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["gve_lpa"]


def gve_lpa(
    graph: CSRGraph,
    *,
    tolerance: float = 0.05,
    max_iterations: int = 20,
    num_threads: int = 64,
    seed: int = 0,
) -> BaselineResult:
    """Run GVE-LPA-style multicore label propagation."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)

    t0 = time.perf_counter()
    edges_total = 0
    vertices_total = 0
    history: list[int] = []
    converged = n == 0

    for _ in range(max_iterations):
        work = np.flatnonzero(active).astype(np.int64)
        if work.shape[0] == 0:
            converged = True
            break
        work = decorrelated_order(work)
        active[work] = False
        vertices_total += int(work.shape[0])

        changed, edges = chunked_async_sweep(graph, labels, work, num_threads)
        edges_total += edges
        history.append(int(changed.shape[0]))

        if changed.shape[0]:
            offs, tgts = graph.offsets, graph.targets
            degs = graph.degrees[changed]
            total = int(degs.sum())
            if total:
                seg_start = np.zeros(changed.shape[0], dtype=np.int64)
                np.cumsum(degs[:-1], out=seg_start[1:])
                rep = np.repeat(np.arange(changed.shape[0]), degs)
                within = np.arange(total, dtype=np.int64) - seg_start[rep]
                active[tgts[offs[changed][rep] + within]] = True

        if changed.shape[0] / max(n, 1) < tolerance:
            converged = True
            break

    return BaselineResult(
        labels=labels,
        algorithm="gve-lpa",
        iterations=len(history),
        converged=converged,
        edges_scanned=edges_total,
        vertices_processed=vertices_total,
        changed_history=history,
        wall_seconds=time.perf_counter() - t0,
        extra={"num_threads": num_threads},
    )
