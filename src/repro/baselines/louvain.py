"""Louvain community detection — the cuGraph-Louvain stand-in.

Full two-phase Louvain (Blondel et al. 2008) with the chunk-asynchronous,
vectorised local-moving used across this library (cuGraph's own Louvain is
likewise a batch-parallel mover):

1. **Local moving** — every vertex repeatedly considers joining the
   neighbouring community with the highest modularity gain
   (Equation 2 of the paper),

   .. math:: \\Delta Q_{i: d \\to c} \\propto K_{i \\to c}
             - \\gamma \\, K_i \\Sigma^*_c / (2m),

   where :math:`\\Sigma^*_c` excludes :math:`K_i` when :math:`c` is the
   current community; rounds continue until the moved fraction drops below
   ``move_tolerance``.
2. **Aggregation** — communities become super-vertices; arc weights are
   group-summed (intra-community weight turns into self-loops), which
   preserves total weight exactly, and the process repeats on the smaller
   graph until a pass yields no further modularity gain.

Louvain is the quality ceiling of the paper's comparison (9.6 % above
ν-LPA on average) and its cost — several full passes plus aggregations —
is what makes it 37× slower there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import BaselineResult, decorrelated_order
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.metrics.modularity import modularity
from repro.types import VERTEX_DTYPE

__all__ = ["louvain", "LouvainResult", "local_moving", "aggregate_graph"]


@dataclass
class LouvainResult(BaselineResult):
    """Baseline result plus the Louvain pass structure."""

    #: Modularity after each pass.
    pass_modularity: list[float] = field(default_factory=list)
    #: Vertex count of the working graph at the start of each pass.
    pass_sizes: list[int] = field(default_factory=list)


def _best_moves_chunk(
    graph: CSRGraph,
    labels: np.ndarray,
    batch: np.ndarray,
    k: np.ndarray,
    sigma: np.ndarray,
    m: float,
    resolution: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Best target community and its gain-over-staying per batch vertex."""
    from repro.core._gather import gather_edges

    gather = gather_edges(graph, batch)
    targets = graph.targets[gather.edge_index]
    non_loop = targets != batch[gather.table_id]
    table_id = gather.table_id[non_loop]
    comm = labels[targets[non_loop]]
    w = graph.weights[gather.edge_index][non_loop].astype(np.float64)

    current = labels[batch]
    k_batch = k[batch]

    if comm.shape[0] == 0:
        return current.copy(), np.zeros(batch.shape[0])

    # Group by (vertex, community): K_{i->c}.
    order = np.lexsort((comm, table_id))
    t_s, c_s, w_s = table_id[order], comm[order], w[order]
    first = np.ones(t_s.shape[0], dtype=bool)
    first[1:] = (t_s[1:] != t_s[:-1]) | (c_s[1:] != c_s[:-1])
    starts = np.flatnonzero(first)
    k_i_to_c = np.add.reduceat(w_s, starts)
    g_table = t_s[starts]
    g_comm = c_s[starts]

    # Score(c) = K_{i->c} - gamma * K_i * Sigma*_c / (2m).
    sigma_star = sigma[g_comm] - np.where(
        g_comm == current[g_table], k_batch[g_table], 0.0
    )
    score = k_i_to_c - resolution * k_batch[g_table] * sigma_star / (2.0 * m)

    # Stay score: K_{i->d} (0 when no neighbour shares d) with the same
    # Sigma correction.
    stay = -resolution * k_batch * (sigma[current] - k_batch) / (2.0 * m)
    own = g_comm == current[g_table]
    stay_addition = np.zeros(batch.shape[0])
    stay_addition[g_table[own]] = k_i_to_c[own]
    stay = stay + stay_addition

    # Per-table argmax of score, ties to smallest community id (groups are
    # community-sorted within each table, so first max wins).
    table_first = np.ones(starts.shape[0], dtype=bool)
    table_first[1:] = g_table[1:] != g_table[:-1]
    t_starts = np.flatnonzero(table_first)
    t_of_g = np.cumsum(table_first) - 1
    best_score = np.maximum.reduceat(score, t_starts)
    is_max = score == best_score[t_of_g]
    pos = np.arange(starts.shape[0], dtype=np.int64)
    big = np.int64(np.iinfo(np.int64).max)
    first_max = np.minimum.reduceat(np.where(is_max, pos, big), t_starts)

    best_comm = current.copy()
    gain = np.zeros(batch.shape[0])
    present = g_table[t_starts]
    best_comm[present] = g_comm[first_max]
    gain[present] = best_score - stay[present]
    return best_comm, gain


def local_moving(
    graph: CSRGraph,
    *,
    resolution: float = 1.0,
    move_tolerance: float = 0.01,
    max_rounds: int = 20,
    chunk: int = 2048,
) -> tuple[np.ndarray, int, int]:
    """Louvain phase 1 on ``graph``.

    Returns ``(labels, rounds, edges_scanned)``.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    k = graph.weighted_degrees()
    sigma = k.copy()  # community totals; initially singleton communities
    sizes = np.ones(n, dtype=np.int64)  # community member counts
    m = graph.total_weight()
    edges_scanned = 0
    if m == 0 or n == 0:
        return labels, 0, 0

    # Decorrelated chunking: id-adjacent vertices of synthetic graphs are
    # geometrically adjacent, and moving them in the same chunk recreates
    # the swap pathology (both endpoints adopt each other's community with
    # stale totals).  See baselines.common.decorrelated_order.
    order = decorrelated_order(np.arange(n, dtype=np.int64))

    rounds = 0
    for rounds in range(1, max_rounds + 1):
        moves = 0
        for lo in range(0, n, chunk):
            batch = order[lo : min(lo + chunk, n)]
            best, gain = _best_moves_chunk(
                graph, labels, batch, k, sigma, m, resolution
            )
            edges_scanned += int(graph.degrees[batch].sum())
            current = labels[batch]
            move = (best != current) & (gain > 1e-12)
            # Singleton-swap guard (Grappolo / cuGraph): when two singleton
            # communities want to adopt each other in the same step, allow
            # only the move towards the smaller community id — otherwise
            # the pair oscillates forever on stale totals.
            swap_risk = (
                (sizes[current] == 1) & (sizes[best] == 1) & (best > current)
            )
            move &= ~swap_risk
            movers = batch[move]
            if movers.shape[0]:
                old = labels[movers]
                new = best[move]
                np.subtract.at(sigma, old, k[movers])
                np.add.at(sigma, new, k[movers])
                np.subtract.at(sizes, old, 1)
                np.add.at(sizes, new, 1)
                labels[movers] = new
                moves += int(movers.shape[0])
        if moves / n < move_tolerance:
            break
    return labels, rounds, edges_scanned


def aggregate_graph(graph: CSRGraph, labels: np.ndarray) -> CSRGraph:
    """Louvain phase 2: collapse communities into super-vertices.

    Arc weights are group-summed, so total (arc) weight — and therefore
    ``m`` — is preserved exactly; intra-community weight becomes self-loops.
    """
    _, compact = np.unique(labels, return_inverse=True)
    src = compact[graph.source_ids()]
    dst = compact[graph.targets]
    return from_edges(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        graph.weights,
        num_vertices=int(compact.max()) + 1 if compact.shape[0] else 0,
        symmetrize=False,
        dedupe=True,
        combine="sum",
    )


def louvain(
    graph: CSRGraph,
    *,
    resolution: float = 1.0,
    pass_tolerance: float = 1e-3,
    max_passes: int = 10,
    move_tolerance: float = 0.01,
    seed: int = 0,
) -> LouvainResult:
    """Run full Louvain; returns labels over the *original* vertices."""
    t0 = time.perf_counter()
    n = graph.num_vertices
    assign = np.arange(n, dtype=VERTEX_DTYPE)
    work = graph

    pass_mod: list[float] = []
    pass_sizes: list[int] = []
    edges_total = 0
    vertices_total = 0
    rounds_total = 0
    prev_q = modularity(graph, assign)

    for _ in range(max_passes):
        pass_sizes.append(work.num_vertices)
        labels, rounds, edges = local_moving(
            work, resolution=resolution, move_tolerance=move_tolerance
        )
        edges_total += edges
        vertices_total += work.num_vertices * rounds
        rounds_total += rounds

        _, compact = np.unique(labels, return_inverse=True)
        assign = compact[assign].astype(VERTEX_DTYPE)
        q = modularity(graph, assign)
        pass_mod.append(q)

        if int(compact.max()) + 1 == work.num_vertices or q - prev_q < pass_tolerance:
            prev_q = q
            break
        prev_q = q
        work = aggregate_graph(work, labels)

    return LouvainResult(
        labels=assign,
        algorithm="louvain",
        iterations=rounds_total,
        converged=True,
        edges_scanned=edges_total,
        vertices_processed=vertices_total,
        changed_history=[],
        wall_seconds=time.perf_counter() - t0,
        extra={"passes": len(pass_mod)},
        pass_modularity=pass_mod,
        pass_sizes=pass_sizes,
    )
