"""NetworKit-style PLP (Parallel Label Propagation).

Modelled on ``NetworKit::PLP::run()`` as the paper describes it: unique
initial labels, a boolean active-node vector, OpenMP *guided* scheduling
over the active nodes, ``std::map`` per vertex for label weights (ties thus
break to the smallest label id), and the *threshold heuristic* — converge
when fewer than ``tolerance * N`` vertices change (NetworKit default
tolerance 1e-5, the setting the paper contrasts with its own 0.05).

Execution is asynchronous across threads; we model it with chunk-async
sweeps (:func:`repro.baselines.common.chunked_async_sweep`) where one chunk
is one scheduling quantum of the thread pool.  Guided scheduling is modelled
by geometrically shrinking chunk sizes within each iteration.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    chunked_async_sweep,
    decorrelated_order,
)
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["networkit_plp"]


def networkit_plp(
    graph: CSRGraph,
    *,
    tolerance: float = 1e-5,
    max_iterations: int = 100,
    num_threads: int = 32,
    seed: int = 0,
) -> BaselineResult:
    """Run NetworKit-style PLP.

    Parameters
    ----------
    graph:
        Undirected weighted CSR graph.
    tolerance:
        Threshold heuristic: stop once ``changed < tolerance * N``
        (NetworKit default 1e-5).
    max_iterations:
        Safety cap (NetworKit runs unbounded; 100 is far beyond observed
        convergence).
    num_threads:
        Simulated OpenMP thread count (paper host: 32 cores).
    seed:
        Unused (PLP is deterministic given the schedule); kept for API
        symmetry across baselines.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    threshold = tolerance * n

    t0 = time.perf_counter()
    edges_total = 0
    vertices_total = 0
    history: list[int] = []
    converged = n == 0

    for _ in range(max_iterations):
        work = np.flatnonzero(active).astype(np.int64)
        if work.shape[0] == 0:
            converged = True
            break
        work = decorrelated_order(work)
        active[work] = False
        vertices_total += int(work.shape[0])

        # Guided schedule: chunks start at remaining/threads and shrink.
        changed_parts: list[np.ndarray] = []
        pos = 0
        remaining = work.shape[0]
        while remaining > 0:
            chunk = max(1, remaining // (2 * num_threads))
            # One quantum = all threads grab a chunk; process them as one
            # async step of chunk * num_threads vertices.
            quantum = min(remaining, chunk * num_threads)
            batch = work[pos : pos + quantum]
            changed, edges = chunked_async_sweep(graph, labels, batch, quantum)
            edges_total += edges
            if changed.shape[0]:
                changed_parts.append(changed)
            pos += quantum
            remaining -= quantum

        changed = (
            np.concatenate(changed_parts)
            if changed_parts
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        history.append(int(changed.shape[0]))

        # Changed vertices reactivate their neighbourhoods (vectorised
        # marking over the concatenated adjacency slices).
        if changed.shape[0]:
            offs, tgts = graph.offsets, graph.targets
            degs = graph.degrees[changed]
            total = int(degs.sum())
            if total:
                seg_start = np.zeros(changed.shape[0], dtype=np.int64)
                np.cumsum(degs[:-1], out=seg_start[1:])
                rep = np.repeat(np.arange(changed.shape[0]), degs)
                within = np.arange(total, dtype=np.int64) - seg_start[rep]
                nbrs = tgts[offs[changed][rep] + within]
                active[nbrs] = True

        if changed.shape[0] < threshold:
            converged = True
            break

    return BaselineResult(
        labels=labels,
        algorithm="networkit-plp",
        iterations=len(history),
        converged=converged,
        edges_scanned=edges_total,
        vertices_processed=vertices_total,
        changed_history=history,
        wall_seconds=time.perf_counter() - t0,
        extra={"num_threads": num_threads, "tolerance": tolerance},
    )
