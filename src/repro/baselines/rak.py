"""Original LPA / RAK (Raghavan, Albert & Kumara 2007).

The algorithm everything in this repository descends from: asynchronous
label propagation over a *freshly shuffled* vertex order each iteration,
with uniform-random tie-breaks, stopping when every vertex already holds a
(possibly tied) maximal label.  The random shuffle is RAK's symmetry
breaker — the role the paper's Pick-Less plays on lockstep hardware, where
shuffling is not an option (SM assignment follows vertex ids).

Randomised tie-breaks make exact vectorisation awkward; we keep the hash
tie-break within chunks but re-randomise the *processing order* per
iteration with the run's RNG, which preserves RAK's statistical behaviour.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult, chunked_async_sweep
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["rak"]


def rak(
    graph: CSRGraph,
    *,
    max_iterations: int = 100,
    chunk: int | None = None,
    seed: int = 0,
) -> BaselineResult:
    """Run original-flavour LPA with per-iteration random vertex order.

    Converges when an iteration changes no labels (RAK's "every vertex has
    a maximal label" criterion, evaluated post-hoc).  ``chunk`` is the
    vectorisation batch; RAK is logically one-vertex-at-a-time, so the
    default keeps chunks small relative to the graph (a chunk the size of
    the graph would be synchronous LPA, shuffle or not).
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if chunk is None:
        chunk = max(1, min(64, n // 8))

    t0 = time.perf_counter()
    history: list[int] = []
    edges_total = 0
    vertices_total = 0
    converged = n == 0

    for _ in range(max_iterations):
        order = rng.permutation(n).astype(np.int64)
        changed, edges = chunked_async_sweep(graph, labels, order, chunk)
        edges_total += edges
        vertices_total += n
        history.append(int(changed.shape[0]))
        if changed.shape[0] == 0:
            converged = True
            break

    return BaselineResult(
        labels=labels,
        algorithm="rak",
        iterations=len(history),
        converged=converged,
        edges_scanned=edges_total,
        vertices_processed=vertices_total,
        changed_history=history,
        wall_seconds=time.perf_counter() - t0,
    )
