"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``detect``
    Run community detection on a graph file or a Table-1 stand-in and
    write/print the labels plus quality metrics.
``info``
    Print structural statistics of a graph.
``generate``
    Generate a synthetic graph (one of the dataset-family generators) and
    write it to a file.
``compare``
    Run the five comparison systems on one graph and print a Figure-6-style
    row set.
``serve``
    Run a batch of detection jobs through the resilient job service
    (admission control, retries, circuit breakers, degradation ladder,
    crash-recovering journal) and emit a health-stats JSON.  With
    ``--snapshot-dir`` every completed job (and every streaming epoch)
    publishes a versioned, CRC-checked label snapshot for the read path;
    ``--wave-batching`` coalesces compatible queued jobs into shared
    waves on the modelled GPU clock.
``query``
    Serve reads from a snapshot directory published by ``serve``:
    membership of a vertex, roster of a community, community sizes, and
    version-over-version churn diffs.
``fsck``
    Unified at-rest integrity audit: walk a directory tree, find every
    durable store (checkpoints, service journal, delta WALs, epoch
    journals, snapshot catalogs), verify all of them, and report one
    machine-readable verdict.

Exit codes
----------
0 success · 1 generic ``ReproError`` / failed jobs · 3 resume misuse
(``--resume`` without ``--checkpoint-dir``) · 4 nothing to resume ·
5 every checkpoint generation damaged · 130/143 interrupted by
SIGINT/SIGTERM (after writing a final checkpoint and flushing the trace).

The fsck family (``fsck --all``, ``ckpt fsck``, ``stream fsck``) shares
one contract: **0** every store clean (recoverable findings — a torn WAL
tail, a stale temp file — don't count as damage) · **1** at least one
damaged entry · **2** the audited directory is missing or unreadable.
All three support ``--json`` for the machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

import numpy as np

from repro import LPAConfig, RunBudget, nu_lpa
from repro.core.config import ResilienceConfig
from repro.errors import (
    CheckpointCorruptError,
    CheckpointNotFoundError,
    CheckpointResumeError,
    MemoryPressure,
    ReproError,
    ServiceOverloaded,
)
from repro.graph.csr import CSRGraph
from repro.graph.datasets import dataset_names, generate_standin
from repro.graph.generators import (
    kmer_graph,
    lfr_like,
    rmat_graph,
    road_network,
    web_graph,
)
from repro.graph.io import load_graph, write_edgelist, write_matrix_market
from repro.graph.properties import degree_statistics, largest_component_fraction
from repro.hashing.probing import ProbeStrategy
from repro.metrics import modularity, summarize_communities
from repro.resilience.faults import FAULT_KINDS, FaultSpec

__all__ = ["main"]


def _load(args) -> CSRGraph:
    if args.dataset:
        return generate_standin(args.dataset, scale=args.scale, seed=args.seed)
    if args.input:
        # --validate also relaxes the parse-time weight checks, which
        # default to strict rejection.
        return load_graph(args.input, validate=getattr(args, "validate", None) or "strict")
    raise SystemExit("provide --input FILE or --dataset NAME")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", type=Path, help="graph file (.mtx/.txt/.graph)")
    parser.add_argument(
        "--dataset", choices=dataset_names(), help="Table-1 stand-in name"
    )
    parser.add_argument("--scale", type=float, default=0.25,
                        help="stand-in scale (default 0.25)")
    parser.add_argument("--seed", type=int, default=42)


def _resilience_from_args(args) -> ResilienceConfig | None:
    faults = None
    if args.inject_faults:
        faults = FaultSpec(
            kinds=tuple(args.inject_faults),
            rate=args.fault_rate,
            seed=args.fault_seed,
            max_fires=args.fault_max_fires,
        )
    integrity = None
    if getattr(args, "integrity", False):
        from repro.integrity import IntegrityConfig

        integrity = IntegrityConfig()
    if (
        faults is None
        and integrity is None
        and args.checkpoint_dir is None
        and not args.resume
    ):
        return None
    return ResilienceConfig(
        faults=faults,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        integrity=integrity,
    )


def _budget_from_args(args) -> RunBudget | None:
    if (
        args.deadline is None
        and args.gpu_budget is None
        and args.iteration_budget is None
    ):
        return None
    return RunBudget(
        wall_seconds=args.deadline,
        gpu_seconds=args.gpu_budget,
        max_iterations=args.iteration_budget,
    )


class _SignalToken:
    """Records the first SIGINT/SIGTERM so runs can stop gracefully.

    Used as the ``cancel`` callable of :func:`repro.nu_lpa` (and as the
    service's stop trigger): the run finishes its current iteration,
    writes a final checkpoint when checkpointing is on, and the CLI exits
    with the conventional ``128 + signum`` code.
    """

    def __init__(self) -> None:
        self.signum: int | None = None
        #: Optional extra reaction (e.g. ``service.request_stop``).
        self.on_fire = None

    def __call__(self) -> bool:
        return self.signum is not None

    def _handler(self, signum, frame) -> None:  # pragma: no cover - trivial
        self.signum = signum
        if self.on_fire is not None:
            self.on_fire()

    def install(self) -> dict[int, object]:
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, self._handler)
            except (ValueError, OSError):  # non-main thread / platform quirk
                pass
        return previous

    @staticmethod
    def restore(previous: dict[int, object]) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _preflight_resume(args) -> None:
    """Typed, actionable failures for every ``--resume`` misuse."""
    if not args.resume:
        return
    if args.checkpoint_dir is None:
        raise CheckpointResumeError(
            "--resume needs --checkpoint-dir: there is no checkpoint "
            "directory to resume from"
        )
    from repro.resilience.checkpoint import preflight_resume

    preflight_resume(args.checkpoint_dir)


def _cmd_detect(args) -> int:
    _preflight_resume(args)
    token = _SignalToken()
    previous = token.install()
    try:
        return _detect_body(args, token)
    finally:
        _SignalToken.restore(previous)


def _detect_body(args, token: _SignalToken) -> int:
    graph = _load(args)
    config = LPAConfig(
        max_iterations=args.max_iterations,
        tolerance=args.tolerance,
        pl_period=args.pl_period if args.pl_period > 0 else None,
        probing=ProbeStrategy(args.probing),
        switch_degree=args.switch_degree,
        fused_sweep=not args.no_fused_sweep,
        persistent_kernel=args.persistent_kernel,
        compact_layout=not args.no_compact_layout,
        degree_renumber=args.degree_renumber,
        memory_budget_bytes=args.memory_budget,
        reserved_memory_fraction=args.reserved_memory_fraction,
    )
    resilience = _resilience_from_args(args)
    want_profile = args.profile or args.trace_out is not None
    result = nu_lpa(
        graph, config, engine=args.engine, resilience=resilience,
        profile=want_profile, validate=args.validate,
        budget=_budget_from_args(args),
        cancel=token,
    )
    q = modularity(graph, result.labels)
    s = summarize_communities(result.labels)
    print(f"graph:       {graph}")
    if result.validation is not None:
        print(f"validation:  {result.validation.summary()}")
    if result.resumed_from is not None:
        print(f"resumed:     from iteration {result.resumed_from}")
    if result.degraded_reason == "interrupted":
        sig_name = (
            signal.Signals(token.signum).name if token.signum else "signal"
        )
        ckpt_note = (
            f"; final checkpoint in {args.checkpoint_dir}"
            if args.checkpoint_dir is not None else ""
        )
        print(f"interrupted: {sig_name} at iteration boundary "
              f"{result.num_iterations}; labels are the best-so-far "
              f"partition{ckpt_note}")
    elif result.degraded_reason is not None:
        print(f"degraded:    stopped on {result.degraded_reason} budget; "
              f"labels are the best-so-far partition")
    print(f"iterations:  {result.num_iterations} "
          f"({'converged' if result.converged else 'not converged'})")
    print(f"communities: {s.num_communities} (largest {s.largest}, "
          f"{s.singletons} singletons)")
    print(f"modularity:  {q:.4f}")
    if result.fault_events:
        by_action: dict[str, int] = {}
        for ev in result.fault_events:
            by_action[ev.action] = by_action.get(ev.action, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(by_action.items()))
        print(f"faults:      {len(result.fault_events)} events ({summary})"
              f"{' [degraded]' if result.degraded else ''}")
    if result.integrity is not None:
        g = result.integrity
        print(f"integrity:   {g['scrubs']} scrub(s) "
              f"({g['scrub_repairs']} repaired), "
              f"{g['shadow_replays']} shadow replay(s), "
              f"{g['spot_audits']} spot audit(s), "
              f"{g['violations']} violation(s), {g['rewinds']} rewind(s)")
    if result.memory is not None:
        mem = result.memory
        rungs = ",".join(mem["construction_rungs"]) or "none"
        print(f"memory:      high-water {mem['high_water_bytes']:,} B of "
              f"{mem['budget_bytes']:,} B budget; {mem['ooms']} OOM(s), "
              f"{mem['shrinks']} budget shrink(s), "
              f"construction rungs: {rungs}")
    if args.profile:
        print(result.profile.summary())
    if args.trace_out is not None:
        doc = {
            "profile": result.profile.as_dict(),
            "events": result.trace.as_dicts(),
        }
        args.trace_out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"trace written to {args.trace_out} "
              f"({len(result.trace)} events)")
    if args.output:
        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels written to {args.output}")
    if token.signum is not None:
        return 128 + int(token.signum)
    return 0


def _cmd_info(args) -> int:
    graph = _load(args)
    st = degree_statistics(graph)
    print(f"vertices:        {graph.num_vertices:,}")
    print(f"arcs:            {graph.num_edges:,}")
    print(f"undirected:      {graph.num_undirected_edges:,}")
    print(f"degree:          min={st.min} mean={st.mean:.2f} "
          f"median={st.median:.0f} max={st.max}")
    print(f"degree gini:     {st.gini:.3f}")
    print(f"below degree 32: {st.frac_low_degree:.1%}")
    print(f"giant component: {largest_component_fraction(graph):.1%}")
    return 0


_GENERATORS = {
    "web": lambda n, seed: web_graph(n, seed=seed),
    "social": lambda n, seed: lfr_like(n, avg_degree=18, seed=seed)[0],
    "road": lambda n, seed: road_network(
        max(3, int(np.sqrt(n / 11))), max(3, int(np.sqrt(n / 11))), seed=seed
    ),
    "kmer": lambda n, seed: kmer_graph(n, seed=seed),
    "rmat": lambda n, seed: rmat_graph(
        max(4, int(np.ceil(np.log2(max(n, 2))))), 8, seed=seed
    ),
}


def _cmd_generate(args) -> int:
    graph = _GENERATORS[args.family](args.vertices, args.seed)
    if args.output.suffix == ".mtx":
        write_matrix_market(graph, args.output)
    else:
        write_edgelist(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


#: Fsck entry statuses that count as damage under the unified contract
#: (0 clean / 1 damaged / 2 unreadable directory); ``torn-tail`` and
#: ``stale-tmp`` are recoverable findings, not damage.
_FSCK_DAMAGED = ("corrupt", "unreadable")


def _fsck_json(kind: str, directory, entries, extra=None) -> dict:
    damaged = sum(1 for e in entries if e["status"] in _FSCK_DAMAGED)
    doc = {
        "schema": "repro.integrity/fsck",
        "version": 1,
        "kind": kind,
        "path": str(directory),
        "ok": damaged == 0,
        "damaged": damaged,
        "findings": entries,
    }
    if extra:
        doc.update(extra)
    return doc


def _cmd_ckpt_fsck(args) -> int:
    from repro.errors import CheckpointError
    from repro.resilience.checkpoint import fsck

    try:
        entries = fsck(args.directory)
    except CheckpointError as exc:
        if args.json:
            print(json.dumps({
                "schema": "repro.integrity/fsck", "version": 1,
                "kind": "checkpoint", "path": str(args.directory),
                "ok": False, "error": str(exc),
            }, indent=2))
        else:
            print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    bad = [e for e in entries if e.status in _FSCK_DAMAGED]
    stale = [e for e in entries if e.status == "stale-tmp"]
    if args.json:
        print(json.dumps(_fsck_json(
            "checkpoint", args.directory,
            [{"path": str(e.path), "status": e.status, "detail": e.detail}
             for e in entries],
        ), indent=2))
    elif not entries:
        print(f"{args.directory}: no checkpoints")
    else:
        for e in entries:
            if e.status == "ok":
                print(f"ok        {e.path.name}  iteration={e.iteration} "
                      f"digest={e.digest}")
            else:
                print(f"{e.status:9s} {e.path.name}  {e.detail}")
        print(f"{len(entries)} file(s): "
              f"{len(entries) - len(bad) - len(stale)} ok, "
              f"{len(stale)} stale (recoverable), {len(bad)} damaged")
    if args.delete and (bad or stale):
        for e in bad + stale:
            e.path.unlink(missing_ok=True)
        if not args.json:
            print(f"deleted {len(bad) + len(stale)} damaged/stale file(s)")
        return 0
    return 1 if bad else 0


def _cmd_stream_fsck(args) -> int:
    from repro.errors import StreamError
    from repro.stream import fsck_log

    try:
        entries = fsck_log(args.directory)
    except StreamError as exc:
        if args.json:
            print(json.dumps({
                "schema": "repro.integrity/fsck", "version": 1,
                "kind": "wal", "path": str(args.directory),
                "ok": False, "error": str(exc),
            }, indent=2))
        else:
            print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    bad = [e for e in entries if e.status in _FSCK_DAMAGED]
    if args.json:
        print(json.dumps(_fsck_json(
            "wal", args.directory,
            [{"path": str(e.path), "status": e.status, "detail": e.detail}
             for e in entries],
        ), indent=2))
    elif not entries:
        print(f"{args.directory}: no segments")
    else:
        for e in entries:
            if e.status == "ok":
                print(f"ok        {e.path.name}  frames={e.frames} "
                      f"seq={e.first_seq}..{e.last_seq}")
            else:
                print(f"{e.status:9s} {e.path.name}  frames={e.frames}  "
                      f"{e.detail}")
        torn = sum(1 for e in entries if e.status == "torn-tail")
        print(f"{len(entries)} segment(s): {len(entries) - len(bad) - torn} "
              f"ok, {torn} torn tail (recoverable), {len(bad)} corrupt")
    return 1 if bad else 0


def _cmd_fsck(args) -> int:
    from repro.integrity import fsck_all

    report = fsck_all(args.directory)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return report.exit_code
    if report.error:
        print(f"repro: error: {report.error}", file=sys.stderr)
        return report.exit_code
    for store in report.stores:
        print(f"{store.kind:17s} {store.path}: {len(store.findings)} "
              f"entrie(s), {store.damaged} damaged")
        for f in store.findings:
            if f.status != "ok":
                print(f"  {f.status:9s} {f.path}  {f.detail}")
    print(f"{len(report.stores)} store(s), "
          f"{sum(len(s.findings) for s in report.stores)} entrie(s), "
          f"{report.damaged} damaged")
    return report.exit_code


def _cmd_stream_status(args) -> int:
    from repro.stream import DeltaLog
    from repro.stream.epoch import EpochJournal

    log = DeltaLog(args.directory)
    if log.repairs:
        for repair in log.repairs:
            print(f"repaired  {repair}")
    print(f"log head: seq {log.head_seq} "
          f"({len(log.segments())} segment(s))")
    if args.epochs is not None:
        journal = EpochJournal(args.epochs)
        state = journal.latest()
        if state is None:
            print("epochs: none journaled")
        else:
            print(f"epoch {state.epoch}: {state.num_vertices} vertices, "
                  f"{state.num_edges} arcs"
                  + (f", modularity gap {state.modularity_gap:.4f}"
                     if state.modularity_gap is not None else ""))
        lag = max(0, log.head_seq - (state.epoch if state else 0))
        print(f"lag: {lag} batch(es)")
    return 0


def _job_spec_from_json(raw: dict, index: int):
    """One jobs-file entry → JobSpec (shorthand or full ``graph`` ref)."""
    from repro.errors import ConfigurationError
    from repro.service.job import GraphRef, JobSpec

    if "graph" in raw:
        graph = GraphRef.from_dict(raw["graph"])
    elif "dataset" in raw:
        graph = GraphRef(
            kind="dataset", name=str(raw["dataset"]),
            scale=float(raw.get("scale", 0.25)), seed=int(raw.get("seed", 42)),
        )
    elif "file" in raw:
        graph = GraphRef(kind="file", name=str(raw["file"]))
    else:
        raise ConfigurationError(
            f"jobs file entry #{index}: provide 'dataset', 'file', or a "
            f"full 'graph' reference"
        )
    return JobSpec(
        job_id=str(raw.get("job_id", f"job-{index}")),
        graph=graph,
        engine=str(raw.get("engine", "vectorized")),
        tenant=str(raw.get("tenant", "default")),
        priority=int(raw.get("priority", 0)),
        deadline_s=raw.get("deadline_s"),
        gpu_budget_s=raw.get("gpu_budget_s"),
        max_iterations=raw.get("max_iterations"),
        tolerance=raw.get("tolerance"),
        validate=raw.get("validate"),
        kind=str(raw.get("kind", "detect")),
        stream_dir=raw.get("stream_dir"),
        hops=int(raw.get("hops", 1)),
        delta_policy=str(raw.get("delta_policy", "strict")),
    )


def _cmd_serve(args) -> int:
    from repro.errors import ConfigurationError
    from repro.observe.schema import validate_service_stats
    from repro.observe.trace import Tracer
    from repro.service.backoff import BackoffPolicy
    from repro.service.job import JobState
    from repro.service.service import DetectionService, ServiceConfig

    raw_jobs = json.loads(args.jobs.read_text())
    if not isinstance(raw_jobs, list):
        raise ConfigurationError(
            f"jobs file {args.jobs} must hold a JSON list of job objects"
        )
    specs = [_job_spec_from_json(raw, i) for i, raw in enumerate(raw_jobs)]

    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        tenant_inflight=args.tenant_inflight,
        max_attempts=args.max_attempts,
        backoff=BackoffPolicy(seed=args.seed),
        breaker_enabled=not args.no_breaker,
        journal_dir=args.journal,
        default_deadline_s=args.default_deadline,
        snapshot_dir=args.snapshot_dir,
        snapshot_keep=args.snapshot_keep,
        wave_batching=args.wave_batching,
        batch_max_jobs=args.batch_max_jobs,
        memory_budget_bytes=args.memory_budget,
        reserved_memory_fraction=args.reserved_memory_fraction,
    )
    tracer = Tracer(enabled=args.trace_out is not None)
    service = DetectionService(config, tracer=tracer)
    token = _SignalToken()
    token.on_fire = service.request_stop
    previous = token.install()
    rejected = 0
    try:
        for spec in specs:
            if spec.job_id in service.jobs:
                continue  # journal recovery already owns this id
            try:
                service.submit(spec)
            except ServiceOverloaded as exc:
                rejected += 1
                print(f"rejected {spec.job_id}: {exc.reason} "
                      f"(retry after ~{exc.retry_after_s:.1f}s)",
                      file=sys.stderr)
            except MemoryPressure as exc:
                rejected += 1
                print(f"rejected {spec.job_id}: memory pressure "
                      f"(estimate {exc.estimate_bytes:,} B > budget "
                      f"{exc.budget_bytes:,} B)",
                      file=sys.stderr)
        service.drain()
    finally:
        _SignalToken.restore(previous)

    stats = service.snapshot()
    validate_service_stats(stats)
    if args.stats_out is not None:
        args.stats_out.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"stats written to {args.stats_out}")
    if args.trace_out is not None:
        args.trace_out.write_text(
            json.dumps({"events": tracer.as_dicts()}, indent=2) + "\n"
        )
        print(f"trace written to {args.trace_out} ({len(tracer)} events)")

    jobs = stats["jobs"]
    print(f"jobs:        {jobs['completed']} completed "
          f"({jobs['degraded']} degraded), {jobs['failed']} failed, "
          f"{jobs['pending'] + jobs['running']} unfinished, "
          f"{rejected} rejected")
    print(f"retries:     {jobs['retries']} (reroutes {jobs['reroutes']})")
    print(f"rungs:       " + ", ".join(
        f"{k}={v}" for k, v in stats["rungs"].items()))
    print(f"breakers:    " + ", ".join(
        f"{b['engine']}={b['state']}" for b in stats["breakers"]))
    print(f"latency:     p50 {stats['latency']['p50_modeled_s']:.4f}s "
          f"p95 {stats['latency']['p95_modeled_s']:.4f}s (modelled)")
    batching = stats["batching"]
    if batching["enabled"]:
        print(f"batching:    {batching['batched_jobs']} jobs in "
              f"{batching['batches']} wave(s), "
              f"{batching['launch_seconds_saved']:.4f}s launch overhead "
              f"saved")
    memory = stats["memory"]
    if memory["enabled"]:
        print(f"memory:      high-water {memory['high_water_bytes']:,} B "
              f"of {memory['budget_bytes']:,} B budget; "
              f"{memory['rejections']} rejection(s), "
              f"{memory['serialized']} serialisation(s), "
              f"{memory['degradations']} degraded run(s)")
    if args.snapshot_dir is not None:
        served = sum(
            1 for s in specs if service.read_catalog.versions(s.job_id)
        )
        print(f"snapshots:   {served} job(s) published under "
              f"{args.snapshot_dir}")
    if token.signum is not None:
        sig_name = signal.Signals(token.signum).name
        note = (
            f"; journal in {args.journal} resumes the rest"
            if args.journal is not None else ""
        )
        print(f"interrupted: {sig_name}{note}")
        return 128 + int(token.signum)
    failed = [
        s.job_id for s in specs
        if s.job_id in service.jobs
        and service.result(s.job_id).state is JobState.FAILED
    ]
    return 1 if failed else 0


def _cmd_query(args) -> int:
    from repro.service.read import QueryEngine, SnapshotCatalog, read_header

    catalog = SnapshotCatalog(args.snapshots)
    if args.versions:
        paths = catalog.versions(args.job)
        if not paths:
            print(f"{args.job}: no snapshots under {args.snapshots}",
                  file=sys.stderr)
            return 1
        for path in paths:
            try:
                h = read_header(path)
            except ReproError as exc:
                print(f"damaged   {path.name}  {exc}")
                continue
            epoch = "" if h["epoch"] is None else f" epoch={h['epoch']}"
            print(f"v{h['snapshot_version']:<4d} {h['source']:5s}{epoch}  "
                  f"{h['num_vertices']:,} vertices, "
                  f"{h['num_communities']:,} communities  {path.name}")
        return 0

    engine = QueryEngine(catalog)
    try:
        snap = engine.snapshot_for(args.job)
        epoch = "" if snap.epoch is None else f" epoch={snap.epoch}"
        print(f"serving:     v{snap.snapshot_version} ({snap.source}{epoch}) "
              f"{snap.num_vertices:,} vertices, "
              f"{snap.num_communities:,} communities")
        if catalog.skipped:
            print(f"skipped:     {len(catalog.skipped)} damaged newer "
                  f"version(s)", file=sys.stderr)
        if args.membership is not None:
            for vertex in args.membership:
                print(f"membership({vertex}) = "
                      f"{engine.membership(args.job, vertex)}")
        if args.roster is not None:
            members = engine.roster(args.job, args.roster)
            shown = ", ".join(str(v) for v in members[: args.top])
            more = ("" if members.shape[0] <= args.top
                    else f", ... ({members.shape[0] - args.top} more)")
            print(f"roster({args.roster}) = [{shown}{more}] "
                  f"size={members.shape[0]}")
        if args.sizes:
            ids, sizes = engine.community_sizes(args.job)
            order = np.argsort(sizes)[::-1][: args.top]
            print(f"communities: {ids.shape[0]:,} "
                  f"(largest {int(sizes.max()) if sizes.size else 0})")
            for c in order:
                print(f"  community {int(ids[c]):>10d}  "
                      f"size {int(sizes[c]):,}")
        if args.diff or args.diff_versions is not None:
            if args.diff_versions is None:
                d = engine.diff(args.job)
            else:
                d = engine.diff(
                    args.job, from_version=args.diff_versions[0],
                    to_version=args.diff_versions[1],
                )
            print(f"diff v{d.from_version} -> v{d.to_version}: "
                  f"{d.changed.shape[0]:,} relabeled, "
                  f"{d.grown.shape[0]:,} grown "
                  f"({d.fraction:.2%} churn)")
    finally:
        engine.close()
    return 0


def _cmd_compare(args) -> int:
    from repro.perf.harness import ALGORITHMS, run_measurement

    graph = _load(args)
    print(f"graph: {graph}\n")
    print(f"{'system':18s} {'Q':>8s} {'comms':>7s} {'iters':>6s} "
          f"{'modelled s':>11s}")
    for system in ALGORITHMS:
        m = run_measurement(system, graph, dataset=args.dataset, seed=args.seed)
        print(f"{system:18s} {m.modularity:8.4f} {m.num_communities:7d} "
              f"{m.iterations:6d} {m.modeled_seconds:11.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="nu-LPA reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("detect", help="run nu-LPA community detection")
    _add_graph_source(p)
    p.add_argument("--engine", choices=["vectorized", "hashtable"],
                   default="vectorized")
    p.add_argument("--max-iterations", type=int, default=20)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument("--pl-period", type=int, default=4,
                   help="Pick-Less period; 0 disables")
    p.add_argument("--probing", default="quadratic-double",
                   choices=[s.value for s in ProbeStrategy])
    p.add_argument("--switch-degree", type=int, default=32)
    p.add_argument("--no-fused-sweep", action="store_true",
                   help="run the unfused clear/insert/max hashtable sweeps "
                        "(reference path; labels are bit-identical to fused)")
    p.add_argument("--persistent-kernel", action="store_true",
                   help="model grid-resident kernels: only the first launch "
                        "of each kernel kind pays launch overhead")
    p.add_argument("--no-compact-layout", action="store_true",
                   help="keep 64-bit offsets/targets/labels even when the "
                        "graph fits 32-bit indices")
    p.add_argument("--degree-renumber", action="store_true",
                   help="renumber vertices by ascending degree before the "
                        "run (labels are mapped back to input ids)")
    p.add_argument("--output", type=Path, help="write labels to this file")
    p.add_argument("--profile", action="store_true",
                   help="print a per-kernel/per-iteration profile of the run")
    p.add_argument("--trace-out", type=Path, metavar="FILE",
                   help="write the profile plus the full structured trace "
                        "(kernel launches, waves, iterations, fault rungs) "
                        "as JSON to FILE")
    p.add_argument("--checkpoint-dir", type=Path,
                   help="snapshot run state into this directory")
    p.add_argument("--checkpoint-every", type=int, default=1,
                   help="snapshot every N iterations (default 1)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest checkpoint in --checkpoint-dir")
    p.add_argument("--inject-faults", action="append", choices=list(FAULT_KINDS),
                   metavar="KIND", default=None,
                   help="inject device faults (repeatable; "
                        f"choices: {', '.join(FAULT_KINDS)})")
    p.add_argument("--fault-rate", type=float, default=1.0,
                   help="per-opportunity fire probability (default 1.0)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="fault injector RNG seed (default 0)")
    p.add_argument("--fault-max-fires", type=int, default=None,
                   help="total injection budget (default: unlimited)")
    p.add_argument("--validate", choices=["strict", "repair", "quarantine"],
                   default=None,
                   help="validate (and under repair/quarantine, fix) the "
                        "input graph before the run; strict rejects any "
                        "defect, repair rewrites defective weights and "
                        "restores symmetry, quarantine drops offending arcs")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; on breach the run stops at the "
                        "next iteration boundary with its best-so-far "
                        "partition instead of failing")
    p.add_argument("--gpu-budget", type=float, default=None, metavar="SECONDS",
                   help="modelled GPU-seconds budget (same graceful-"
                        "degradation contract as --deadline)")
    p.add_argument("--iteration-budget", type=int, default=None, metavar="N",
                   help="iteration budget; unlike --max-iterations, a breach "
                        "marks the result degraded rather than merely "
                        "unconverged")
    p.add_argument("--integrity", action="store_true",
                   help="enable the ABFT corruption guards (CSR scrub "
                        "checksums, label-conservation audits, hashtable "
                        "spot-audits, shadow replay, ECC model); detections "
                        "recover through the resilience ladder")
    p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                   help="modelled device-memory budget; allocations are "
                        "metered through a ledger and an over-budget "
                        "reservation triggers the memory degradation rungs "
                        "(compact layout, table shrink, fallback) instead "
                        "of a silent wrong result")
    p.add_argument("--reserved-memory-fraction", type=float, default=0.0,
                   metavar="FRAC",
                   help="fraction of the budget held back from the run "
                        "(runtime/fragmentation slack; default 0.0)")
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("info", help="print graph statistics")
    _add_graph_source(p)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("family", choices=sorted(_GENERATORS))
    p.add_argument("--vertices", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--output", type=Path, required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("compare", help="run the five comparison systems")
    _add_graph_source(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "serve",
        help="run a batch of jobs through the resilient job service",
    )
    p.add_argument("--jobs", type=Path, required=True, metavar="FILE",
                   help="JSON list of job objects; each needs 'dataset' "
                        "(plus optional scale/seed), 'file', or a full "
                        "'graph' ref, and may set job_id, engine, tenant, "
                        "priority, deadline_s, gpu_budget_s, "
                        "max_iterations, tolerance, validate, and (for "
                        "kind='subscription') stream_dir, hops, "
                        "delta_policy")
    p.add_argument("--journal", type=Path, default=None, metavar="DIR",
                   help="durable job journal; a re-run over the same "
                        "directory recovers finished jobs and resumes "
                        "unfinished ones bit-identically")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--queue-capacity", type=int, default=64)
    p.add_argument("--tenant-inflight", type=int, default=None, metavar="N",
                   help="per-tenant in-flight cap (default: uncapped)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="full-run attempts per job before the degradation "
                        "ladder (default 3)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="deadline for jobs that do not set one")
    p.add_argument("--no-breaker", action="store_true",
                   help="disable the per-engine circuit breakers")
    p.add_argument("--seed", type=int, default=0,
                   help="backoff-jitter seed (default 0)")
    p.add_argument("--stats-out", type=Path, default=None, metavar="FILE",
                   help="write the schema-validated health stats JSON here")
    p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                   help="write job/breaker/stats trace events as JSON")
    p.add_argument("--snapshot-dir", type=Path, default=None, metavar="DIR",
                   help="publish a versioned, CRC-checked label snapshot "
                        "for every completed job and streaming epoch; "
                        "'repro query' serves reads from this directory")
    p.add_argument("--snapshot-keep", type=int, default=None, metavar="N",
                   help="retain only the newest N snapshot versions per "
                        "job (default: keep all)")
    p.add_argument("--wave-batching", action="store_true",
                   help="coalesce compatible queued jobs into shared "
                        "waves, amortising modelled kernel-launch overhead "
                        "(per-job labels stay bit-identical)")
    p.add_argument("--batch-max-jobs", type=int, default=8, metavar="N",
                   help="cap on jobs sharing one wave (default 8)")
    p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                   help="modelled device-memory budget for admission "
                        "control: oversized jobs are rejected with a typed "
                        "memory-pressure error, concurrent jobs that would "
                        "not fit together are serialised, and each run "
                        "enforces the budget live through its allocation "
                        "ledger")
    p.add_argument("--reserved-memory-fraction", type=float, default=0.0,
                   metavar="FRAC",
                   help="fraction of the memory budget held back from jobs "
                        "(default 0.0)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "query",
        help="serve membership/roster/diff reads from published snapshots",
    )
    p.add_argument("--snapshots", type=Path, required=True, metavar="DIR",
                   help="snapshot directory written by 'serve "
                        "--snapshot-dir'")
    p.add_argument("--job", required=True, metavar="JOB_ID",
                   help="job (or subscription) whose labels to serve")
    p.add_argument("--membership", type=int, action="append", default=None,
                   metavar="VERTEX",
                   help="print the community of VERTEX (repeatable)")
    p.add_argument("--roster", type=int, default=None, metavar="COMMUNITY",
                   help="print the members of COMMUNITY")
    p.add_argument("--sizes", action="store_true",
                   help="print the largest communities by size")
    p.add_argument("--diff", action="store_true",
                   help="churn between the two newest readable versions")
    p.add_argument("--diff-versions", type=int, nargs=2, default=None,
                   metavar=("FROM", "TO"),
                   help="churn between two explicit snapshot versions")
    p.add_argument("--versions", action="store_true",
                   help="list every published snapshot version and exit")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="row cap for --sizes/--roster output (default 10)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("ckpt", help="checkpoint maintenance")
    ckpt_sub = p.add_subparsers(dest="ckpt_command", required=True)
    pf = ckpt_sub.add_parser(
        "fsck",
        help="verify every checkpoint in a directory (CRC32s, schema, "
             "stale temp files); exits 0 clean / 1 damaged / 2 unreadable "
             "directory (stale temp files are recoverable)",
    )
    pf.add_argument("directory", type=Path, help="checkpoint directory")
    pf.add_argument("--delete", action="store_true",
                    help="delete damaged checkpoints and stale temp files")
    pf.add_argument("--json", action="store_true",
                    help="print the machine-readable report")
    pf.set_defaults(func=_cmd_ckpt_fsck)

    p = sub.add_parser("stream", help="delta-log stream maintenance")
    stream_sub = p.add_subparsers(dest="stream_command", required=True)
    pf = stream_sub.add_parser(
        "fsck",
        help="verify every WAL segment in a delta-log directory without "
             "modifying it; exits 0 clean / 1 damaged / 2 unreadable "
             "directory (a torn tail on the final segment is recoverable)",
    )
    pf.add_argument("directory", type=Path, help="delta log directory")
    pf.add_argument("--json", action="store_true",
                    help="print the machine-readable report")
    pf.set_defaults(func=_cmd_stream_fsck)
    pf = stream_sub.add_parser(
        "status",
        help="open a delta log (truncating any torn tail) and report its "
             "head; with --epochs also report the newest epoch and lag",
    )
    pf.add_argument("directory", type=Path, help="delta log directory")
    pf.add_argument("--epochs", type=Path, default=None, metavar="DIR",
                    help="epoch journal directory of the stream's consumer")
    pf.set_defaults(func=_cmd_stream_status)

    p = sub.add_parser(
        "fsck",
        help="unified at-rest integrity audit: walk a directory tree, "
             "verify every durable store found (checkpoints, service "
             "journal, delta WALs, epoch journals, snapshot catalogs); "
             "exits 0 clean / 1 damaged / 2 unreadable directory",
    )
    p.add_argument("--all", action="store_true",
                   help="audit every store kind found under the tree "
                        "(the default and only mode; the flag documents "
                        "intent in scripts)")
    p.add_argument("directory", type=Path, help="root directory to audit")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable IntegrityReport")
    p.set_defaults(func=_cmd_fsck)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CheckpointCorruptError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 5
    except CheckpointNotFoundError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 4
    except CheckpointResumeError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
