"""Core ν-LPA: the paper's GPU Label Propagation Algorithm (Algorithm 1).

Public entry point::

    from repro import nu_lpa, LPAConfig
    result = nu_lpa(graph)                 # paper defaults (PL4, QD probing)
    result = nu_lpa(graph, LPAConfig(pl_period=None))   # no swap mitigation

Two engines execute the same driver loop:

* ``engine="hashtable"`` — Algorithm 2's per-vertex open-addressing tables
  on the SIMT simulator, with full event counters (the experiments use
  this);
* ``engine="vectorized"`` — sort-based group-by label selection, the fast
  path for applications.
"""

from repro.core.budget import RunBudget
from repro.core.config import LPAConfig, ResilienceConfig, SwapPrevention
from repro.core.result import LPAResult, IterationStats
from repro.core.lpa import nu_lpa
from repro.core.incremental import nu_lpa_incremental, affected_vertices
from repro.core.kernels import partition_by_degree

__all__ = [
    "LPAConfig",
    "ResilienceConfig",
    "RunBudget",
    "SwapPrevention",
    "LPAResult",
    "IterationStats",
    "nu_lpa",
    "nu_lpa_incremental",
    "affected_vertices",
    "partition_by_degree",
]
