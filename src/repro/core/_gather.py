"""Vectorised gathering of the concatenated adjacency slices of a vertex set.

Every engine wave needs "all edges of these vertices" as flat arrays.  The
construction is the standard CSR expansion: repeat each vertex's offset,
add a within-segment ramp, and index.  O(total edges), no Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["EdgeGather", "gather_edges"]


@dataclass(frozen=True)
class EdgeGather:
    """Flat view of the edges of a wave's vertices."""

    #: CSR edge indices, concatenated per vertex in order.
    edge_index: np.ndarray
    #: Wave-local id (0..len(vertices)-1) of the owning vertex, per edge.
    table_id: np.ndarray
    #: Rank of the edge within its vertex's adjacency list.
    edge_rank: np.ndarray

    @property
    def num_edges(self) -> int:
        """Total edges gathered."""
        return int(self.edge_index.shape[0])


def gather_edges(graph: CSRGraph, vertices: np.ndarray) -> EdgeGather:
    """Build the :class:`EdgeGather` for ``vertices`` (wave-local order)."""
    if vertices.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return EdgeGather(edge_index=empty, table_id=empty, edge_rank=empty)
    degrees = graph.degrees[vertices].astype(np.int64)
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return EdgeGather(edge_index=empty, table_id=empty, edge_rank=empty)
    seg_start = np.zeros(vertices.shape[0], dtype=np.int64)
    np.cumsum(degrees[:-1], out=seg_start[1:])
    table_id = np.repeat(np.arange(vertices.shape[0], dtype=np.int64), degrees)
    edge_rank = np.arange(total, dtype=np.int64) - seg_start[table_id]
    edge_index = graph.offsets[vertices][table_id] + edge_rank
    return EdgeGather(edge_index=edge_index, table_id=table_id, edge_rank=edge_rank)
