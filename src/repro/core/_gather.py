"""Vectorised gathering of the concatenated adjacency slices of a vertex set.

Every engine wave needs "all edges of these vertices" as flat arrays.  The
construction is the standard CSR expansion: repeat each vertex's offset,
add a within-segment ramp, and index.  O(total edges), no Python loop.

All scratch comes from an optional :class:`~repro.perf.workspace.
WorkspaceArena`; with one attached, a steady-state gather performs no heap
allocation (the returned arrays are views into reused slots, valid until
the next gather with the same ``prefix``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.perf.workspace import WorkspaceArena, iota, take

__all__ = ["EdgeGather", "gather_edges"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class EdgeGather:
    """Flat view of the edges of a wave's vertices."""

    #: CSR edge indices, concatenated per vertex in order.
    edge_index: np.ndarray
    #: Wave-local id (0..len(vertices)-1) of the owning vertex, per edge.
    table_id: np.ndarray
    #: Rank of the edge within its vertex's adjacency list; ``None`` when
    #: the caller passed ``need_rank=False``.
    edge_rank: np.ndarray | None

    @property
    def num_edges(self) -> int:
        """Total edges gathered."""
        return int(self.edge_index.shape[0])


def gather_edges(
    graph: CSRGraph,
    vertices: np.ndarray,
    arena: WorkspaceArena | None = None,
    *,
    prefix: str = "g",
    need_rank: bool = True,
) -> EdgeGather:
    """Build the :class:`EdgeGather` for ``vertices`` (wave-local order).

    ``prefix`` namespaces the arena slots so two gathers with overlapping
    lifetimes (the engine's wave gather and the frontier's neighbour
    gather) never alias each other's buffers.

    ``need_rank=False`` skips materialising per-edge within-list ranks —
    ``edge_index`` is instead built from the per-vertex *offset
    adjustment* ``offsets[v] - seg_start`` spread over the ramp, which is
    one O(vertices) subtraction instead of an O(edges) gather+subtract.
    The resulting ``edge_index`` is bit-identical either way
    (``(starts - seg_start)[tid] + ramp == starts[tid] + (ramp -
    seg_start[tid])``); callers that never read ``edge_rank`` (the
    thread-per-vertex kernel, the frontier) take the cheaper path.
    """
    nv = int(vertices.shape[0])
    if nv == 0:
        return EdgeGather(edge_index=_EMPTY, table_id=_EMPTY, edge_rank=_EMPTY)
    degrees = take(arena, f"{prefix}.deg", nv, graph.degrees.dtype)
    graph.degrees.take(vertices, out=degrees, mode="clip")
    total = int(degrees.sum())
    if total == 0:
        return EdgeGather(edge_index=_EMPTY, table_id=_EMPTY, edge_rank=_EMPTY)
    seg_start = take(arena, f"{prefix}.ss", nv, np.int64)
    seg_start[0] = 0
    np.cumsum(degrees[:-1], out=seg_start[1:])

    ramp = iota(arena, total)
    table_id = take(arena, f"{prefix}.tid", total, np.int64)
    # Segment ids via boundary-scatter + cumsum (the allocation-free
    # np.repeat): mark each segment's first edge, then prefix-sum.  With a
    # zero-degree vertex present boundaries coincide, so fall back to the
    # duplicate-safe (slower) scattered add.
    table_id[:] = 0
    if nv > 1:
        if int(degrees.min()) > 0:
            table_id[seg_start[1:]] = 1
        else:
            # Zero-degree vertices collapse boundaries (duplicates, and
            # trailing ones point past the last edge).  Engines retire
            # degree-0 vertices before gathering, so only direct callers
            # pay this allocating path.
            idx = seg_start[1:]
            np.add.at(table_id, idx[idx < total], 1)
    np.cumsum(table_id, out=table_id)

    ostarts = take(arena, f"{prefix}.off", nv, graph.offsets.dtype)
    graph.offsets.take(vertices, out=ostarts, mode="clip")
    starts = take(arena, f"{prefix}.adj", nv, np.int64)
    np.subtract(ostarts, seg_start, out=starts)  # offset adjustment per vertex

    edge_index = take(arena, f"{prefix}.ei", total, np.int64)
    starts.take(table_id, out=edge_index, mode="clip")
    np.add(edge_index, ramp, out=edge_index)

    if not need_rank:
        return EdgeGather(edge_index=edge_index, table_id=table_id, edge_rank=None)

    edge_rank = take(arena, f"{prefix}.rank", total, np.int64)
    seg_start.take(table_id, out=edge_rank, mode="clip")
    np.subtract(ramp, edge_rank, out=edge_rank)
    return EdgeGather(edge_index=edge_index, table_id=table_id, edge_rank=edge_rank)
