"""Run budgets: deadlines with graceful degradation instead of exceptions.

A production service cannot let one pathological graph hold a worker
hostage: LPA on an adversarial input can oscillate up to its iteration cap,
and the cap itself may be minutes of modelled GPU time on a paper-scale
graph.  A :class:`RunBudget` bounds a run three ways — wall-clock seconds,
modelled GPU seconds (the cost model's currency, so the bound is
device-portable), and an iteration cap tighter than
``LPAConfig.max_iterations`` — and, crucially, *breaching a budget is not
an error*: label propagation improves its partition monotonically enough
(Traag & Šubelj, arXiv 2209.13338, show LPA quality survives aggressively
reduced work) that the best-so-far labels are a valid degraded answer.
The driver returns them with ``result.degraded = True`` and
``result.degraded_reason`` set, emits a
:class:`~repro.observe.trace.BudgetEvent`, and records a supervisor fault
event when a supervisor is attached — operators see the degradation in
every channel they already watch, and nothing raises.

:class:`BudgetMeter` is the driver-side tracker: the loop charges each
iteration's kernel counters and wall time to it and asks ``breached()``
at every boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.gpu.metrics import KernelCounters

__all__ = ["RunBudget", "BudgetMeter"]


@dataclass(frozen=True)
class RunBudget:
    """Limits a run may not exceed; ``None`` fields are unlimited.

    Attributes
    ----------
    wall_seconds:
        Host wall-clock deadline for the driver loop.
    gpu_seconds:
        Modelled GPU-seconds cap, charged from each iteration's
        :class:`~repro.gpu.metrics.KernelCounters` through the cost model
        (:func:`~repro.perf.model.estimate_gpu_seconds`).
    max_iterations:
        Iteration cap override; effective only when tighter than
        ``LPAConfig.max_iterations``.  Unlike hitting the config cap
        (which warns), stopping here marks the result degraded.
    """

    wall_seconds: float | None = None
    gpu_seconds: float | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        for name, value in (
            ("wall_seconds", self.wall_seconds),
            ("gpu_seconds", self.gpu_seconds),
        ):
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be > 0; got {value}")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1; got {self.max_iterations}"
            )

    @property
    def unlimited(self) -> bool:
        """True when no field constrains anything."""
        return (
            self.wall_seconds is None
            and self.gpu_seconds is None
            and self.max_iterations is None
        )

    def with_(self, **changes) -> "RunBudget":
        """Functional update (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)

    def shrunk(
        self,
        *,
        wall_spent: float = 0.0,
        gpu_spent: float = 0.0,
        iterations_spent: int = 0,
        floor_s: float = 1e-3,
    ) -> "RunBudget":
        """The budget that remains after part of it has been consumed.

        This is deadline *propagation*: a retried (or resumed) job does not
        get a fresh deadline — each attempt runs under what its
        predecessors left behind.  Limited fields shrink by the matching
        ``*_spent`` amount; unlimited fields stay unlimited.  Time fields
        are floored at ``floor_s`` (an exhausted wall/GPU budget must still
        be a *valid* budget — the very next boundary check then stops the
        run with its best-so-far labels); the iteration field floors at 1
        for the same reason.
        """
        wall = self.wall_seconds
        if wall is not None:
            wall = max(floor_s, wall - wall_spent)
        gpu = self.gpu_seconds
        if gpu is not None:
            gpu = max(floor_s, gpu - gpu_spent)
        iters = self.max_iterations
        if iters is not None:
            iters = max(1, iters - iterations_spent)
        return RunBudget(wall_seconds=wall, gpu_seconds=gpu, max_iterations=iters)

    @property
    def exhausted(self) -> bool:
        """True when shrinking has pinned every limited field at its floor.

        A job whose propagated deadline is exhausted should not start
        another full attempt; the service's degradation ladder skips
        straight to its cheapest rung instead.
        """
        if self.unlimited:
            return False
        checks = []
        if self.wall_seconds is not None:
            checks.append(self.wall_seconds <= 1e-3)
        if self.gpu_seconds is not None:
            checks.append(self.gpu_seconds <= 1e-3)
        if self.max_iterations is not None:
            checks.append(self.max_iterations <= 1)
        return all(checks)


class BudgetMeter:
    """Charges iterations against a :class:`RunBudget` for one run."""

    def __init__(self, budget: RunBudget, device) -> None:
        self.budget = budget
        self._device = device
        self._platform = None
        self.start = time.perf_counter()
        #: Modelled GPU seconds charged so far.
        self.gpu_spent = 0.0
        #: Iterations charged so far (this run only; a resumed prefix is
        #: sunk cost that was already paid for by the killed run).
        self.iterations = 0

    def charge(self, counters: KernelCounters) -> None:
        """Account one completed iteration."""
        self.iterations += 1
        if self.budget.gpu_seconds is None:
            return
        if self._platform is None:
            # Deferred: repro.perf pulls in the baselines, which import the
            # driver module that instantiates this meter.
            from repro.observe.profile import platform_for_device

            self._platform = platform_for_device(self._device)
        from repro.perf.model import estimate_gpu_seconds

        self.gpu_spent += estimate_gpu_seconds(counters, self._platform)

    @property
    def wall_spent(self) -> float:
        """Wall-clock seconds since the meter started."""
        return time.perf_counter() - self.start

    def breached(self) -> str | None:
        """The first exceeded limit as a reason string, or ``None``.

        Reasons: ``"wall-clock"``, ``"gpu-seconds"``, ``"iterations"`` —
        stable strings carried on ``result.degraded_reason`` and the
        budget trace event.
        """
        b = self.budget
        if b.wall_seconds is not None and self.wall_spent >= b.wall_seconds:
            return "wall-clock"
        if b.gpu_seconds is not None and self.gpu_spent >= b.gpu_seconds:
            return "gpu-seconds"
        if b.max_iterations is not None and self.iterations >= b.max_iterations:
            return "iterations"
        return None
