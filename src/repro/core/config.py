"""Configuration for ν-LPA runs.

Defaults mirror the paper exactly: asynchronous updates, at most 20
iterations, per-iteration tolerance τ = 0.05, Pick-Less every ρ = 4
iterations, quadratic-double probing, switch degree 32, fp32 hashtable
values, vertex pruning on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.device import A100, DeviceSpec
from repro.hashing.probing import ProbeStrategy
from repro.types import VALUE_DTYPE_F32, VALUE_DTYPE_F64

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see resilience/)
    from repro.integrity.config import IntegrityConfig
    from repro.resilience.faults import FaultSpec

__all__ = ["LPAConfig", "ResilienceConfig", "SwapPrevention"]


class SwapPrevention(enum.Enum):
    """Symmetry-breaking method families from the swap-prevention study."""

    NONE = "none"
    PICK_LESS = "pick-less"
    CROSS_CHECK = "cross-check"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class LPAConfig:
    """All tunables of ν-LPA; immutable so runs can share one instance.

    Attributes
    ----------
    max_iterations:
        Hard iteration cap (paper: 20).
    tolerance:
        Per-iteration convergence threshold τ on the changed-vertex
        fraction (paper: 0.05).
    pl_period:
        Apply Pick-Less every this many iterations (paper default ρ = 4,
        i.e. iterations 0, 4, 8, ...); ``None`` disables PL.
    cc_period:
        Apply Cross-Check after iterations divisible by this period;
        ``None`` (default) disables CC.  Setting both periods gives the
        paper's Hybrid (H) method.
    switch_degree:
        Degree threshold between the thread-per-vertex and block-per-vertex
        kernels (paper: 32).
    probing:
        Hashtable collision-resolution strategy (paper: quadratic-double).
    value_dtype:
        Hashtable value dtype, fp32 (paper default) or fp64 (Figure 5).
    pruning:
        Vertex pruning: skip vertices none of whose neighbours changed.
    workspace_arena:
        Serve every per-wave scratch array from a reusable
        :class:`~repro.perf.workspace.WorkspaceArena` so steady-state
        iterations are allocation-free.  Results are bit-identical with
        the arena off (the differential tests assert it); the switch
        exists for those tests and for debugging buffer-lifetime issues.
    shared_memory_tables:
        Place the hashtables of sufficiently-low-degree thread-kernel
        vertices in per-SM shared memory instead of the global buffers.
        The paper tried this and "saw little to no performance gain"
        (ablation A3); off by default, like the paper's final design.
    fused_sweep:
        Fuse the per-wave clear → insert → max-key hashtable sweeps into
        one kernel-model pass: tables start (and are left) clean, the
        accumulate rounds record which slots they claim, and a single
        fused reduction scans only the claimed slots before re-clearing
        them.  Labels and :class:`~repro.gpu.counters.KernelCounters` are
        bit-identical with the unfused path (the differential tests
        assert it); the switch exists for those tests.  Automatically
        bypassed while a fault hook is attached, because injected
        corruption must land on the same buffers the unfused sweeps
        touch.
    persistent_kernel:
        Model a persistent (mega-)kernel: each kernel kind pays its
        launch overhead once per run instead of once per iteration, and
        subsequent dispatches are traced as
        :class:`~repro.observe.trace.PersistentKernelEvent` wave batches
        instead of :class:`~repro.observe.trace.KernelLaunchEvent`.
        Only the launch accounting changes — labels stay bit-identical.
    compact_layout:
        Shrink per-run data to 32-bit ids when the graph fits: labels
        (and, via :meth:`~repro.graph.csr.CSRGraph.with_compact_layout`,
        CSR offsets/targets) drop from int64 to int32 whenever
        ``num_vertices`` and ``num_edges`` are below ``2**31 - 1``.
        Halves label/topology traffic; results are bit-identical because
        every id fits either width.  Graphs too large for 32 bits are
        silently left at full width.
    degree_renumber:
        Renumber vertices in descending-degree order before running
        (better coalescing for the block-per-vertex kernel model) and
        un-permute the labels on output.  The relabelled run visits
        vertices in a different order, so labels are a *renaming* of a
        valid convergent partition rather than bit-identical to the
        default path.
    device:
        Simulated device (default A100).
    memory_budget_bytes:
        Device-memory budget enforced by a
        :class:`~repro.gpu.governor.MemoryGovernor` allocation ledger.
        ``None`` (default) disables the ledger entirely — zero overhead —
        unless the run injects ``oom`` faults, in which case the budget
        defaults to the device's ``global_memory_bytes``.  Reservations
        that would exceed the budget raise a typed retryable
        :class:`~repro.errors.DeviceOomError`; the resilience ladder
        answers with memory rungs (compact layout, hashtable shrink,
        fallback).  Accounting never changes the computation: labels are
        bit-identical to an unconstrained run whenever no rung fires.
    reserved_memory_fraction:
        Fraction of the budget held back from the ledger (modeling the
        CUDA context, co-tenant allocations, fragmentation slack).  Must
        be in ``[0, 1)``.
    seed:
        Reserved for future randomised variants; the implemented algorithm
        is deterministic and ignores it.
    """

    max_iterations: int = 20
    tolerance: float = 0.05
    pl_period: int | None = 4
    cc_period: int | None = None
    switch_degree: int = 32
    probing: ProbeStrategy = ProbeStrategy.QUADRATIC_DOUBLE
    value_dtype: type = VALUE_DTYPE_F32
    pruning: bool = True
    workspace_arena: bool = True
    shared_memory_tables: bool = False
    fused_sweep: bool = True
    persistent_kernel: bool = False
    compact_layout: bool = True
    degree_renumber: bool = False
    device: DeviceSpec = field(default=A100)
    memory_budget_bytes: int | None = None
    reserved_memory_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1; got {self.max_iterations}"
            )
        if not 0.0 <= self.tolerance <= 1.0:
            raise ConfigurationError(
                f"tolerance must be in [0, 1]; got {self.tolerance}"
            )
        for name, period in (("pl_period", self.pl_period), ("cc_period", self.cc_period)):
            if period is not None and period < 1:
                raise ConfigurationError(f"{name} must be >= 1 or None; got {period}")
        if self.switch_degree < 0:
            raise ConfigurationError(
                f"switch_degree must be non-negative; got {self.switch_degree}"
            )
        if np.dtype(self.value_dtype) not in (
            np.dtype(VALUE_DTYPE_F32),
            np.dtype(VALUE_DTYPE_F64),
        ):
            raise ConfigurationError(
                f"value_dtype must be float32 or float64; got {self.value_dtype}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ConfigurationError(
                f"memory_budget_bytes must be >= 1 or None; got {self.memory_budget_bytes}"
            )
        if not 0.0 <= self.reserved_memory_fraction < 1.0:
            raise ConfigurationError(
                "reserved_memory_fraction must be in [0, 1); "
                f"got {self.reserved_memory_fraction}"
            )

    @property
    def swap_prevention(self) -> SwapPrevention:
        """Which method family this configuration uses."""
        if self.pl_period is not None and self.cc_period is not None:
            return SwapPrevention.HYBRID
        if self.pl_period is not None:
            return SwapPrevention.PICK_LESS
        if self.cc_period is not None:
            return SwapPrevention.CROSS_CHECK
        return SwapPrevention.NONE

    def pick_less_active(self, iteration: int) -> bool:
        """Algorithm 1 line 5: PL mode is on in iterations ≡ 0 (mod ρ)."""
        return self.pl_period is not None and iteration % self.pl_period == 0

    def cross_check_active(self, iteration: int) -> bool:
        """CC validation runs after iterations ≡ 0 (mod cc_period)."""
        return self.cc_period is not None and iteration % self.cc_period == 0

    def with_(self, **changes) -> "LPAConfig":
        """Functional update (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short label used in experiment tables, e.g. ``PL4`` or ``H(2,4)``."""
        kind = self.swap_prevention
        if kind is SwapPrevention.PICK_LESS:
            return f"PL{self.pl_period}"
        if kind is SwapPrevention.CROSS_CHECK:
            return f"CC{self.cc_period}"
        if kind is SwapPrevention.HYBRID:
            return f"H(CC{self.cc_period},PL{self.pl_period})"
        return "none"


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerant execution policy for a ν-LPA run.

    Passing a ``ResilienceConfig`` to :func:`~repro.core.lpa.nu_lpa`
    routes every engine move through the
    :class:`~repro.resilience.supervisor.KernelSupervisor` (invariant
    checks + the retry → regrow → fallback → abort degradation ladder) and
    optionally enables checkpoint/resume and fault injection.

    Attributes
    ----------
    max_retries:
        Ladder rung 1: how many times a faulted move is retried from the
        restored pre-move snapshot before descending.
    backoff_base_s:
        Base of the exponential retry backoff (``base * 2**attempt``
        seconds).  0 (default) disables sleeping — the simulator's faults
        are deterministic, so backoff only matters when modelling wall
        time.
    allow_regrow:
        Ladder rung 2: rebuild the per-vertex hashtables at the next
        power-of-two capacity after a persistent overflow or corruption
        (also scrubs the flat buffers).
    allow_fallback:
        Ladder rung 3: recompute the affected move on a fresh, hook-free
        :class:`~repro.core.engine_vectorized.VectorizedEngine`.
    validate_invariants:
        Run the post-move invariant checks (label range, finite values).
    deep_checks:
        Include the O(|E|) finite-value sweep over the hashtable value
        buffer in those checks.
    strict_pl_monotone:
        Escalate a rising changed-vertex fraction across Pick-Less rounds
        from a flagged report entry to a hard
        :class:`~repro.errors.InvariantViolation` raised to the caller
        (re-execution cannot change a deterministic outcome, so this
        anomaly bypasses the ladder).
    checkpoint_dir:
        Directory for iteration-boundary snapshots; ``None`` disables
        checkpointing.
    checkpoint_every:
        Snapshot every this many iterations (k).
    checkpoint_keep:
        Retention ring size: keep only the newest N generations on disk
        (superseded ones are pruned after each save).  ``None`` (default)
        keeps every generation.
    resume:
        Continue from the newest *readable* checkpoint in
        ``checkpoint_dir`` if one exists (bit-identical to the
        uninterrupted run; corrupt generations are skipped newest-first);
        start fresh otherwise.
    faults:
        Optional :class:`~repro.resilience.faults.FaultSpec` describing
        faults to inject (testing / chaos engineering).
    checkpoint_factory:
        Callable with the :class:`~repro.resilience.checkpoint.\
CheckpointManager` constructor signature
        (``factory(directory, every=..., keep=...)``) used to build the
        run's manager.  ``None`` (default) uses ``CheckpointManager``
        itself; the chaos harness substitutes a crash-injecting subclass.
    integrity:
        Optional :class:`~repro.integrity.config.IntegrityConfig` enabling
        the ABFT corruption guards (CSR scrub checksums, label-conservation
        audits, hashtable spot-audits, shadow replay, ECC model).  ``None``
        (default) keeps the hot path untouched.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.0
    allow_regrow: bool = True
    allow_fallback: bool = True
    validate_invariants: bool = True
    deep_checks: bool = True
    strict_pl_monotone: bool = False
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int | None = None
    resume: bool = False
    faults: "FaultSpec | None" = None
    checkpoint_factory: object | None = None
    integrity: "IntegrityConfig | None" = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0; got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0; got {self.backoff_base_s}"
            )
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1; got {self.checkpoint_every}"
            )
        if self.checkpoint_keep is not None and self.checkpoint_keep < 1:
            raise ConfigurationError(
                f"checkpoint_keep must be >= 1 or None; got {self.checkpoint_keep}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume=True requires checkpoint_dir")
        if self.checkpoint_factory is not None and not callable(self.checkpoint_factory):
            raise ConfigurationError("checkpoint_factory must be callable or None")

    def with_(self, **changes) -> "ResilienceConfig":
        """Functional update (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)
