"""Convergence diagnostics: oscillation detection and run post-mortems.

The paper's Section-4 observation — "the GPU implementation of LPA fails to
converge for a number of input graphs ... several vertices are caught in
cycles of community or label swaps" — is a *diagnosable* condition.  These
helpers detect it: :func:`find_swap_cycles` runs two mitigation-free
synchronous steps and reports the vertices whose labels 2-cycle, and
:func:`diagnose_run` summarises an :class:`~repro.core.result.LPAResult`'s
convergence behaviour (tail of stuck vertices, change-decay rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LPAConfig
from repro.core.lpa import make_engine
from repro.core.pruning import Frontier
from repro.core.result import LPAResult
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["SwapReport", "find_swap_cycles", "ConvergenceReport", "diagnose_run"]


@dataclass(frozen=True)
class SwapReport:
    """Vertices caught in period-2 label cycles under synchronous LPA."""

    #: Vertex ids whose label after two steps returned to its pre-step
    #: value while changing in between.
    swapping_vertices: np.ndarray
    #: Fraction of the graph caught in swap cycles.
    swap_fraction: float

    @property
    def any_swaps(self) -> bool:
        """Whether the graph exhibits the pathology at all."""
        return self.swapping_vertices.shape[0] > 0


def find_swap_cycles(
    graph: CSRGraph,
    labels: np.ndarray | None = None,
    *,
    config: LPAConfig | None = None,
) -> SwapReport:
    """Detect period-2 label cycles from a given state.

    Runs two mitigation-free iterations of the wave engine from ``labels``
    (default: the unique-label start) and flags vertices whose label
    changed in step one and reverted in step two — the community-swap
    signature that motivates Pick-Less.
    """
    config = (config or LPAConfig()).with_(pl_period=None, cc_period=None)
    engine = make_engine(graph, config, "vectorized")
    n = graph.num_vertices
    state = (
        np.arange(n, dtype=VERTEX_DTYPE)
        if labels is None
        else np.asarray(labels, dtype=VERTEX_DTYPE).copy()
    )

    before = state.copy()
    frontier = Frontier(graph, enabled=False)
    engine.move(state, frontier, pick_less=False, iteration=0)
    mid = state.copy()
    engine.move(state, frontier, pick_less=False, iteration=1)

    swapped = (before == state) & (before != mid)
    vertices = np.flatnonzero(swapped).astype(VERTEX_DTYPE)
    return SwapReport(
        swapping_vertices=vertices,
        swap_fraction=float(vertices.shape[0] / max(n, 1)),
    )


@dataclass(frozen=True)
class ConvergenceReport:
    """Post-mortem of an LPA run's convergence behaviour."""

    converged: bool
    iterations: int
    #: Changed-vertex fraction in the final iteration.
    final_change_fraction: float
    #: Geometric decay rate of changes between consecutive iterations
    #: (< 1 means shrinking; ~1 means stuck oscillation).
    change_decay: float
    #: Iteration at which changes dropped below 10% of the first
    #: iteration's (or -1 if never).
    knee_iteration: int


def diagnose_run(result: LPAResult, num_vertices: int) -> ConvergenceReport:
    """Summarise a finished run's convergence behaviour."""
    history = result.changed_history.astype(np.float64)
    if history.shape[0] == 0:
        return ConvergenceReport(result.converged, 0, 0.0, 0.0, -1)

    final_fraction = float(history[-1] / max(num_vertices, 1))
    # Geometric-mean decay over consecutive *positive* pairs only: a single
    # zero mid-history (e.g. a Pick-Less round that froze every vertex)
    # must not collapse the decay estimate for the whole run, and a ratio
    # into or out of zero is undefined rather than "infinitely fast".
    decay = 0.0
    if history.shape[0] >= 2:
        prev, nxt = history[:-1], history[1:]
        positive = (prev > 0) & (nxt > 0)
        if positive.any():
            ratios = nxt[positive] / prev[positive]
            decay = float(np.exp(np.mean(np.log(ratios))))

    knee = -1
    threshold = history[0] * 0.1
    below = np.flatnonzero(history <= threshold)
    if below.shape[0]:
        knee = int(below[0])

    return ConvergenceReport(
        converged=result.converged,
        iterations=int(history.shape[0]),
        final_change_fraction=final_fraction,
        change_decay=decay,
        knee_iteration=knee,
    )
