"""The instrumented ν-LPA engine: Algorithm 1 + 2 on the SIMT simulator.

One :meth:`HashtableEngine.move` call is one ``lpaMove`` launch pair: the
active vertices are split between the thread-per-vertex and block-per-vertex
kernels (Section 4.3), each kernel executes in residency waves
(:mod:`repro.gpu.scheduler`), and within a wave every vertex clears its
per-vertex hashtable, accumulates its neighbours' labels through the
simulated ``atomicCAS`` machinery, takes the most-weighted label, and —
subject to Pick-Less — adopts it.  Label writes commit at wave boundaries,
which is the deterministic stand-in for lockstep execution (DESIGN.md).

Every memory access class is accounted in sectors so the cost model can
price the run: adjacency sweeps (coalesced only for the block kernel),
per-edge label gathers (scattered), hashtable probe traffic (with linear
probing's cache reuse), atomic read-modify-writes, clears, label commits,
and frontier updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core._gather import gather_edges
from repro.core.config import LPAConfig
from repro.core.kernels import partition_by_degree
from repro.core.pruning import Frontier
from repro.core.swap_prevention import pick_less_filter
from repro.gpu.kernel import KernelKind
from repro.gpu.memory import AccessPattern, MemoryModel
from repro.gpu.metrics import KernelCounters
from repro.gpu.scheduler import plan_waves
from repro.graph.csr import CSRGraph
from repro.observe.trace import (
    KernelLaunchEvent,
    PersistentKernelEvent,
    WaveEvent,
    counter_delta,
)
from repro.hashing.hashtable import PerVertexHashtables
from repro.hashing.parallel_hashtable import (
    SlotTracker,
    fused_max_and_clear,
    parallel_accumulate,
    segmented_clear,
    segmented_max_key,
)
from repro.hashing.probing import ProbeStrategy
from repro.perf.workspace import WorkspaceArena, compact, iota, take
from repro.resilience.faults import FaultContext
from repro.types import EMPTY_KEY

__all__ = ["MoveOutcome", "HashtableEngine"]

#: Sector cost of one probe beyond the first when the strategy walks
#: adjacent slots: 8 four-byte keys share a 32-byte sector, so linear
#: probing's extra probes mostly hit an already-fetched sector.
_LINEAR_EXTRA_PROBE_SECTORS = 1.0 / 8.0

#: Fraction of a tiny table's traffic that shared-memory placement
#: actually saves — the rest was L2-resident regardless (ablation A3).
_SMEM_SAVING_FACTOR = 0.4


@dataclass
class MoveOutcome:
    """Result of one ``lpaMove`` iteration."""

    changed: int
    processed: int
    counters: KernelCounters
    #: Vertices that adopted a new label this iteration (for Cross-Check).
    changed_vertices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class HashtableEngine:
    """Algorithm 1's ``lpaMove`` with per-vertex hashtables and counters."""

    name = "hashtable"

    #: Optional resilience hook (see :mod:`repro.resilience.faults`): called
    #: with a :class:`FaultContext` at the accumulate and reduce points of
    #: every wave.  ``None`` (the default) costs one attribute test per wave.
    fault_hook = None

    #: Optional :class:`~repro.observe.trace.Tracer`: receives kernel-launch
    #: and per-wave counter-delta events.  ``None`` (the default) costs one
    #: attribute test per move; a disabled tracer one boolean more.
    tracer = None

    #: Optional :class:`~repro.gpu.governor.MemoryGovernor`: attached by
    #: the driver after it has reserved this engine's initial hashtable
    #: region, so regrow/shrink can move the charge without ever
    #: double-counting (old region released before the new is reserved).
    governor = None

    def __init__(self, graph: CSRGraph, config: LPAConfig) -> None:
        self.graph = graph
        self.config = config
        self.arena = WorkspaceArena() if config.workspace_arena else None
        # Loop-free graphs (the common case; checked once, cached on the
        # graph) skip the per-wave self-loop filter entirely.
        self._loop_free = not graph.has_self_loops
        self.tables = PerVertexHashtables(
            graph, value_dtype=config.value_dtype, strategy=config.probing
        )
        # Fused sweep: the accumulate rounds record their claimed slots
        # here so one fused pass can reduce and re-clear them (the flat
        # buffers start all-empty, so no up-front clear is needed either).
        self._tracker = SlotTracker() if config.fused_sweep else None
        # Persistent-kernel mode: kinds whose one-time launch cost has
        # been paid (each kernel stays resident after its first launch).
        self._launched: set[KernelKind] = set()
        self.memory = MemoryModel(config.device)
        # Shared-memory table eligibility (paper's rejected optimisation):
        # a thread-kernel vertex's table fits when its 2*D slots fit in the
        # per-thread slice of the SM's shared memory.
        device = config.device
        slot_bytes = 4 + np.dtype(config.value_dtype).itemsize
        per_thread_budget = (
            device.shared_memory_per_sm_bytes // device.max_threads_per_sm
        )
        self._smem_degree_limit = max(1, per_thread_budget // (2 * slot_bytes))

    # ------------------------------------------------------------------ #

    def grow_tables(self) -> int:
        """Rebuild every per-vertex table at the next power-of-two capacity.

        The resilience layer's *regrow* ladder rung: doubling the capacity
        scale moves each ``p1`` to the next Mersenne number, and the fresh
        allocation scrubs any corrupted slots.  Returns the new scale;
        the bytes freed/claimed by the swap are reported in
        :attr:`last_regrow` (and, when a governor is attached, the old
        region is released *before* the new one is reserved, so a regrow
        never holds ``old + new`` against the budget at once).
        """
        return self._rebuild_tables(self.tables.capacity_scale * 2)

    def shrink_tables(self) -> int:
        """Undo regrowth under memory pressure (the ladder's memory rung).

        Halves the capacity scale, floored at the paper's layout
        (``capacity_scale=1``); returns the (possibly unchanged) scale.
        A shrunk table that overflows again simply re-enters the regrow
        rung — correctness never depends on the scale, only footprint
        and probe counts do.
        """
        scale = max(1, self.tables.capacity_scale // 2)
        if scale == self.tables.capacity_scale:
            return scale
        return self._rebuild_tables(scale)

    def _rebuild_tables(self, scale: int) -> int:
        """Swap the flat buffers to ``scale``, keeping the ledger exact.

        Release-before-reserve: the old region's charge is returned
        first, so the budget check sees only the *new* region on top of
        everything else.  If even that fails, the old layout is rebuilt
        and re-charged (guaranteed to fit — it was charged a moment ago)
        before the :class:`~repro.errors.DeviceOomError` propagates, so
        the engine stays usable for the ladder's next rung.
        """
        governor = self.governor
        old_scale = self.tables.capacity_scale
        freed = self.tables.memory_bytes()
        if governor is not None:
            governor.release("hashtable", freed)

        def build(s: int) -> PerVertexHashtables:
            return PerVertexHashtables(
                self.graph,
                value_dtype=self.config.value_dtype,
                strategy=self.config.probing,
                capacity_scale=s,
            )

        tables = build(scale)
        claimed = tables.memory_bytes()
        if governor is not None:
            try:
                governor.reserve("hashtable", claimed)
            except Exception:
                self.tables = build(old_scale)
                governor.reserve("hashtable", freed)
                if self._tracker is not None:
                    self._tracker.reset()
                raise
        self.tables = tables
        #: Byte report of the newest regrow/shrink (the ledger's receipt).
        self.last_regrow = {
            "scale": scale,
            "freed_bytes": freed,
            "claimed_bytes": claimed,
        }
        if self._tracker is not None:
            # The fresh buffers are all-empty; stale claims must not be
            # re-cleared (or reduced) against the new layout.
            self._tracker.reset()
        return scale

    def release_memory(self) -> int:
        """Return every ledger charge this engine owns (tables + arena).

        Called when the engine is discarded (supervisor fallback, end of
        run).  Idempotent; returns the bytes released.
        """
        released = 0
        if self.governor is not None:
            released = self.tables.memory_bytes()
            self.governor.release("hashtable", released)
            self.governor = None
        if self.arena is not None:
            released += self.arena.release_charges()
            self.arena.governor = None
        return released

    # ------------------------------------------------------------------ #

    def move(
        self,
        labels: np.ndarray,
        frontier: Frontier,
        *,
        pick_less: bool,
        iteration: int,
    ) -> MoveOutcome:
        """One LPA iteration over the frontier's active vertices."""
        arena = self.arena
        active = frontier.active_vertices()
        counters = KernelCounters()

        # Degree-0 vertices can never change label (no neighbours) and own
        # no hashtable slots (their reserved region is 2*0); retire them.
        # They still count as processed — the frontier flagged them done.
        na = active.shape[0]
        adeg = take(arena, "hv.adeg", na, self.graph.degrees.dtype)
        self.graph.degrees.take(active, out=adeg, mode="clip")
        zmask = take(arena, "hv.zmask", na, bool)
        np.equal(adeg, 0, out=zmask)
        retired = int(np.count_nonzero(zmask))
        if retired:
            zero = compact(arena, "hv.zero", zmask, retired, active)
            frontier.mark_processed(zero)
            np.logical_not(zmask, out=zmask)
            active = compact(arena, "hv.act", zmask, na - retired, active)

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        partition = partition_by_degree(
            active, self.graph.degrees, self.config.switch_degree, arena=arena
        )
        changed_buf = take(arena, "hv.changed", partition.total, np.int64)
        num_changed = 0
        for kind in (KernelKind.THREAD_PER_VERTEX, KernelKind.BLOCK_PER_VERTEX):
            vertices = partition.for_kind(kind)
            if vertices.shape[0] == 0:
                continue
            # Persistent-kernel mode: after a kind's first launch the
            # kernel stays resident, so later dispatches cost waves but
            # no launch (and trace as their own event kind).
            persistent = self.config.persistent_kernel and kind in self._launched
            if not persistent:
                counters.launches += 1
                self._launched.add(kind)
            plan = plan_waves(self.config.device, kind, vertices.shape[0])
            counters.waves += plan.num_waves
            if tracing:
                event_cls = PersistentKernelEvent if persistent else KernelLaunchEvent
                tracer.emit(event_cls(
                    iteration=iteration,
                    kernel=kind.value,
                    num_items=int(vertices.shape[0]),
                    num_waves=plan.num_waves,
                ))
            for wave_index, (lo, hi) in enumerate(plan):
                wave = vertices[lo:hi]
                before = counters.as_dict() if tracing else None
                adopters = self._process_wave(
                    wave, kind, labels, frontier, pick_less, counters
                )
                changed_buf[num_changed : num_changed + adopters.shape[0]] = adopters
                num_changed += adopters.shape[0]
                if tracing:
                    tracer.emit(WaveEvent(
                        iteration=iteration,
                        kernel=kind.value,
                        wave_index=wave_index,
                        lo=lo,
                        hi=hi,
                        counters=counter_delta(before, counters.as_dict()),
                    ))

        # One per-iteration copy (tiny in steady state): the scratch slot is
        # recycled next move, but changed_vertices outlives it.
        changed_vertices = changed_buf[:num_changed].copy()
        counters.vertices_processed += partition.total + retired
        return MoveOutcome(
            changed=num_changed,
            processed=partition.total + retired,
            counters=counters,
            changed_vertices=changed_vertices,
        )

    # ------------------------------------------------------------------ #

    def _process_wave(
        self,
        wave: np.ndarray,
        kind: KernelKind,
        labels: np.ndarray,
        frontier: Frontier,
        pick_less: bool,
        counters: KernelCounters,
    ) -> np.ndarray:
        """Execute one residency wave; returns the adopting vertices.

        The returned array is an arena view (``hw.adopters``), valid until
        the next wave; ``move`` copies it into its change log immediately.
        """
        arena = self.arena
        device = self.config.device
        frontier.mark_processed(wave)

        # Edge ranks are only consumed by the block kernel's lane
        # striding; the thread kernel skips computing them entirely.
        need_rank = kind is KernelKind.BLOCK_PER_VERTEX
        gather = gather_edges(self.graph, wave, arena, need_rank=need_rank)
        ne = gather.num_edges
        targets = take(arena, "hw.tg", ne, self.graph.targets.dtype)
        self.graph.targets.take(gather.edge_index, out=targets, mode="clip")
        if targets.dtype != np.int64:
            # Compact graphs gather 4-byte ids (half the sector traffic),
            # but indexing labels with an int32 array makes numpy malloc
            # an intp copy of it per take; widen once into an arena slot
            # so steady-state waves stay allocation-free.
            wide_targets = take(arena, "hw.tg64", ne, np.int64)
            np.copyto(wide_targets, targets)
            targets = wide_targets
        weights = take(arena, "hw.w", ne, self.graph.weights.dtype)
        self.graph.weights.take(gather.edge_index, out=weights, mode="clip")

        # Algorithm 1 line 23: skip self-loops during accumulation.  On a
        # loop-free graph the filter is an identity copy, so feed the
        # gather straight through instead.
        if self._loop_free:
            m = ne
            entry_table = gather.table_id
            edge_rank = gather.edge_rank
            entry_key = take(arena, "hw.ek", ne, labels.dtype)
            labels.take(targets, out=entry_key, mode="clip")
            if weights.dtype == self.tables.values.dtype:
                entry_value = weights
            else:
                entry_value = take(arena, "hw.ev", ne, self.tables.values.dtype)
                np.copyto(entry_value, weights, casting="unsafe")
        else:
            owner = take(arena, "hw.owner", ne, np.int64)
            wave.take(gather.table_id, out=owner, mode="clip")
            non_loop = take(arena, "hw.nl", ne, bool)
            np.not_equal(targets, owner, out=non_loop)
            m = int(np.count_nonzero(non_loop))
            if need_rank:
                entry_table, tgt_nl, wnl, edge_rank = compact(
                    arena, "hw.nl", non_loop, m,
                    gather.table_id, targets, weights, gather.edge_rank,
                )
            else:
                entry_table, tgt_nl, wnl = compact(
                    arena, "hw.nl", non_loop, m,
                    gather.table_id, targets, weights,
                )
                edge_rank = None
            entry_key = take(arena, "hw.ek", m, labels.dtype)
            labels.take(tgt_nl, out=entry_key, mode="clip")
            entry_value = take(arena, "hw.ev", m, self.tables.values.dtype)
            np.copyto(entry_value, wnl, casting="unsafe")

        w = wave.shape[0]
        base = take(arena, "hw.base", w, np.int64)
        self.tables.bases.take(wave, out=base, mode="clip")
        p1 = take(arena, "hw.p1", w, np.int64)
        self.tables.capacities.take(wave, out=p1, mode="clip")
        p2 = take(arena, "hw.p2", w, np.int64)
        self.tables.secondary_primes.take(wave, out=p2, mode="clip")

        if self.fault_hook is not None:
            self.fault_hook(self._fault_context("accumulate", kind, wave, labels, base, p1))

        # Fused sweep: tables are already clean (the init fill / the
        # previous wave's clear-at-end), so the up-front clear is skipped
        # and the accumulate records its claimed slots for one fused
        # reduce+clear pass.  Slot-clear accounting is unchanged — the
        # kernel model still prices the full per-table clear the GPU's
        # fused kernel performs in-register.  Bypassed under a fault
        # hook: injected corruption must land on the unfused buffers.
        fused = self._tracker is not None and self.fault_hook is None
        if fused:
            cleared = int(p1.sum())
            try:
                acc = parallel_accumulate(
                    self.tables.keys,
                    self.tables.values,
                    base,
                    p1,
                    p2,
                    entry_table,
                    entry_key,
                    entry_value,
                    self.config.probing,
                    shared=kind.uses_atomics,
                    arena=arena,
                    claimed=self._tracker,
                )
            except BaseException:
                # Restore the tables-start-clean invariant before the
                # resilience ladder retries or regrows.
                self._scrub_claimed()
                raise
        else:
            cleared = segmented_clear(
                self.tables.keys, self.tables.values, base, p1, arena
            )
            acc = parallel_accumulate(
                self.tables.keys,
                self.tables.values,
                base,
                p1,
                p2,
                entry_table,
                entry_key,
                entry_value,
                self.config.probing,
                shared=kind.uses_atomics,
                arena=arena,
            )
        warp_serial = self._warp_critical_path(
            kind, wave, entry_table, edge_rank, acc.entry_probes
        )

        if self.fault_hook is not None:
            self.fault_hook(self._fault_context("reduce", kind, wave, labels, base, p1))

        fallback = take(arena, "hw.fb", w, labels.dtype)
        labels.take(wave, out=fallback, mode="clip")
        if fused and 4 * len(self._tracker) < cleared:
            best = fused_max_and_clear(
                self.tables.keys,
                self.tables.values,
                fallback,
                self._tracker,
                arena=arena,
                out=take(arena, "hw.best", w, labels.dtype),
            )
        elif fused:
            # Dense tables (claimed ≳ 1/4 of the live region): the packed
            # sort in the fused sweep costs more than a straight segmented
            # scan, so reduce segment-wise and restore the clean-tables
            # invariant by scattering only the claimed slots.  Either
            # branch yields bit-identical labels; the threshold is purely
            # a speed heuristic.
            best = segmented_max_key(
                self.tables.keys,
                self.tables.values,
                base,
                p1,
                fallback,
                arena=arena,
                out=take(arena, "hw.best", w, labels.dtype),
            )
            self._scrub_claimed()
        else:
            best = segmented_max_key(
                self.tables.keys,
                self.tables.values,
                base,
                p1,
                fallback,
                arena=arena,
                out=take(arena, "hw.best", w, labels.dtype),
            )

        adopt = pick_less_filter(
            fallback,
            best,
            pick_less,
            out=take(arena, "hw.adopt", w, bool),
            scratch=take(arena, "hw.plsc", w, bool),
        )
        na_w = int(np.count_nonzero(adopt))
        adopters, new_labels = compact(
            arena, "hw.adopters", adopt, na_w, wave, best
        )
        labels[adopters] = new_labels  # wave-boundary commit
        marked_arcs = frontier.mark_neighbors_unprocessed(adopters)

        # Shared-memory tables (ablation A3): qualifying thread-kernel
        # vertices keep their table traffic on-chip.
        smem_entries = smem_probes = 0
        if (
            self.config.shared_memory_tables
            and kind is KernelKind.THREAD_PER_VERTEX
        ):
            wdeg = take(arena, "hw.wdeg", w, self.graph.degrees.dtype)
            self.graph.degrees.take(wave, out=wdeg, mode="clip")
            smem_mask = take(arena, "hw.smv", w, bool)
            np.less_equal(wdeg, self._smem_degree_limit, out=smem_mask)
            if smem_mask.any():
                entry_is_smem = take(arena, "hw.sme", m, bool)
                smem_mask.take(entry_table, out=entry_is_smem, mode="clip")
                # Tiny tables are already mostly L2-resident, so moving them
                # to shared memory only saves the fraction of their traffic
                # that would have reached the cache hierarchy at cost —
                # the reason the paper saw "little to no gain".
                saving = _SMEM_SAVING_FACTOR
                smem_entries = int(np.count_nonzero(entry_is_smem) * saving)
                smem_probes = int(
                    acc.entry_probes.sum(where=entry_is_smem) * saving
                )

        self._account(
            counters,
            kind=kind,
            wave=wave,
            num_entries=m,
            cleared=cleared,
            acc_probes=acc.total_probes,
            warp_serial=warp_serial,
            cas=acc.cas_attempts,
            adds=acc.atomic_adds,
            conflicts=acc.atomic_conflicts,
            adopters=int(adopters.shape[0]),
            marked_arcs=marked_arcs,
            p1=p1,
            smem_entries=smem_entries,
            smem_probes=smem_probes,
        )
        return adopters

    # ------------------------------------------------------------------ #

    def _scrub_claimed(self) -> None:
        """Re-empty every slot the aborted accumulate claimed."""
        tracker = self._tracker
        if tracker is not None and len(tracker):
            slots, _ = tracker.views()
            self.tables.keys[slots] = EMPTY_KEY
            self.tables.values[slots] = 0
            tracker.reset()

    # ------------------------------------------------------------------ #

    def _fault_context(self, phase, kind, wave, labels, base, p1) -> FaultContext:
        return FaultContext(
            phase=phase,
            engine=self.name,
            kernel=kind,
            device=self.config.device,
            wave=wave,
            labels=labels,
            keys=self.tables.keys,
            values=self.tables.values,
            base=base,
            p1=p1,
        )

    # ------------------------------------------------------------------ #

    def _warp_critical_path(
        self,
        kind: KernelKind,
        wave: np.ndarray,
        entry_table: np.ndarray,
        edge_rank: np.ndarray,
        entry_probes: np.ndarray,
    ) -> int:
        """Lockstep divergence cost: Σ over warps of the slowest lane's work.

        A lane's work is its serialised edge scans plus hashtable probes
        (1 + probes per entry); its warp finishes only when the slowest
        lane does.  This is what makes the thread-per-vertex kernel pay for
        high-degree vertices (one lane drags 31 idle neighbours through a
        whole adjacency list) and what amplifies clustering-heavy probe
        sequences (one colliding lane stalls its warp every round).
        """
        arena = self.arena
        device = self.config.device
        ne = entry_table.shape[0]
        if ne == 0:
            return 0
        entry_work = take(arena, "wcp.ew", ne, np.int64)
        np.add(entry_probes, 1, out=entry_work)

        if kind is KernelKind.THREAD_PER_VERTEX:
            # Lane == wave-local vertex index.  ``entry_table`` is
            # non-decreasing (gather order), so per-lane totals are
            # segment sums scattered to each run's lane — equivalent to
            # ``np.add.at`` but without its transient iterator buffer.
            nw = wave.shape[0]
            run_first = take(arena, "wcp.rf", ne, bool)
            run_first[0] = True
            np.not_equal(entry_table[1:], entry_table[:-1], out=run_first[1:])
            num_runs = int(np.count_nonzero(run_first))
            run_starts = compact(
                arena, "wcp.rs", run_first, num_runs, iota(arena, ne)
            )
            run_sums = take(arena, "wcp.sum", num_runs, np.int64)
            np.add.reduceat(entry_work, run_starts, out=run_sums)
            run_lanes = take(arena, "wcp.rl", num_runs, np.int64)
            entry_table.take(run_starts, out=run_lanes, mode="clip")
            lane_work = take(arena, "wcp.lw", nw, np.int64)
            lane_work[:] = 0
            lane_work[run_lanes] = run_sums
            return self._warp_max_sum(lane_work, nw)

        # Block kernel: the vertex's edges are strided over the block's
        # lanes, so lane work is near-uniform and divergence is small —
        # exactly the point of the block-per-vertex design.
        block_size = device.default_block_size
        lane_global = take(arena, "wcp.lg", ne, np.int64)
        np.remainder(edge_rank, block_size, out=lane_global)
        scaled = take(arena, "wcp.tb", ne, np.int64)
        np.multiply(entry_table, block_size, out=scaled)
        np.add(lane_global, scaled, out=lane_global)
        num_lanes = wave.shape[0] * block_size
        lane_work = take(arena, "wcp.lw", num_lanes, np.int64)
        lane_work[:] = 0
        np.add.at(lane_work, lane_global, entry_work)
        return self._warp_max_sum(lane_work, num_lanes)

    def _warp_max_sum(self, lane_work: np.ndarray, num_lanes: int) -> int:
        """Σ over warps of the slowest lane's work.

        Lanes are contiguous per warp, so the per-warp max is a ragged
        ``maximum.reduceat`` over ``warp_size`` chunks (lane work is
        non-negative, so this matches a zero-initialised scattered max).
        """
        arena = self.arena
        warp_size = self.config.device.warp_size
        num_warps = -(-num_lanes // warp_size)
        warp_starts = take(arena, "wcp.ws", num_warps, np.int64)
        np.multiply(iota(arena, num_warps), warp_size, out=warp_starts)
        warp_max = take(arena, "wcp.wm", num_warps, np.int64)
        np.maximum.reduceat(lane_work, warp_starts, out=warp_max)
        return int(warp_max.sum())

    # ------------------------------------------------------------------ #

    def _account(
        self,
        counters: KernelCounters,
        *,
        kind: KernelKind,
        wave: np.ndarray,
        num_entries: int,
        cleared: int,
        acc_probes: int,
        warp_serial: int,
        cas: int,
        adds: int,
        conflicts: int,
        adopters: int,
        marked_arcs: int,
        p1: np.ndarray,
        smem_entries: int = 0,
        smem_probes: int = 0,
    ) -> None:
        """Convert the wave's events into counter increments.

        ``smem_entries``/``smem_probes`` are the portion of the workload
        whose tables live in shared memory (ablation A3): their probe and
        value traffic stays on-chip, and ``p1`` already excludes their
        clear/max-reduce slots.
        """
        arena = self.arena
        mem = self.memory
        degrees = take(arena, "ac.deg", wave.shape[0], self.graph.degrees.dtype)
        self.graph.degrees.take(wave, out=degrees, mode="clip")

        counters.edges_scanned += num_entries
        counters.probes += acc_probes
        counters.warp_serial_probes += warp_serial
        counters.atomic_cas += cas
        counters.atomic_add += adds
        counters.atomic_conflicts += conflicts
        counters.slots_cleared += cleared

        # Adjacency sweep (targets + weights, 4 bytes each): the block
        # kernel's lanes read each list contiguously; the thread kernel's
        # lanes each walk unrelated lists.
        pattern = (
            AccessPattern.COALESCED
            if kind is KernelKind.BLOCK_PER_VERTEX
            else AccessPattern.SCATTERED
        )
        counters.sectors_read += 2 * mem.sectors_for_segments(
            degrees, 4, pattern, arena=arena
        )

        # Per-edge label gather C[j]: scattered in both kernels.
        counters.sectors_read += mem.sectors_for_scattered(num_entries)

        # Hashtable probe traffic: first probe of each entry is a scattered
        # key read; extra probes are scattered except under linear probing,
        # where successive slots share sectors.  Shared-memory tables keep
        # their probes on-chip.
        global_probes = acc_probes - smem_probes
        global_entries = num_entries - smem_entries
        extra_probes = max(0, global_probes - global_entries)
        if self.config.probing is ProbeStrategy.LINEAR:
            counters.sectors_read += global_entries + int(
                np.ceil(extra_probes * _LINEAR_EXTRA_PROBE_SECTORS)
            )
        else:
            counters.sectors_read += global_probes

        # Value accumulation is a read-modify-write per successful insert.
        value_bytes = self.tables.values.itemsize
        rmw_sectors = global_entries * max(1, value_bytes // 4)
        counters.sectors_read += rmw_sectors
        counters.sectors_written += rmw_sectors

        # Clear writes (keys + values), streamed contiguously per table.
        counters.sectors_written += mem.sectors_for_segments(
            p1, 4, AccessPattern.COALESCED, arena=arena
        ) + mem.sectors_for_segments(
            p1, value_bytes, AccessPattern.COALESCED, arena=arena
        )

        # Max-reduce over the table slots re-reads them contiguously.
        counters.sectors_read += mem.sectors_for_segments(
            p1, 4 + value_bytes, AccessPattern.COALESCED, arena=arena
        )

        # Label commits and frontier marking: scattered single writes.
        counters.sectors_written += adopters + marked_arcs
