"""The fast ν-LPA engine: sort-based group-by label selection.

Identical driver semantics to :class:`~repro.core.engine_hashtable.
HashtableEngine` — same wave structure, same Pick-Less filter, same pruning
— but the per-vertex "most weighted label" is computed with a packed sort +
segmented reduce instead of simulated hashtables, making it the engine of
choice for applications (an order of magnitude faster in pure NumPy).

Tie-break difference, by construction: where several labels share the
maximum weight, this engine picks the *smallest label id* (deterministic);
the hashtable engine picks the first in slot order (pseudo-random, the
paper's "strict LPA").  Cross-engine tests therefore compare modularity and
invariants rather than exact labels.

Counters are coarse (edges scanned, waves, adjacency/label traffic): this
engine exists for speed, not for the cost model — experiments use the
hashtable engine.

Every scratch array of the per-wave hot path comes from the engine's
:class:`~repro.perf.workspace.WorkspaceArena` (``config.workspace_arena``);
steady-state waves therefore allocate nothing, and the arena-off path runs
the *same* arithmetic on fresh buffers, so the two are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.core.config import LPAConfig
from repro.core.engine_hashtable import MoveOutcome
from repro.core.kernels import partition_by_degree
from repro.core.pruning import Frontier
from repro.core.swap_prevention import pick_less_filter
from repro.gpu.kernel import KernelKind
from repro.gpu.metrics import KernelCounters
from repro.gpu.scheduler import plan_waves
from repro.graph.csr import CSRGraph
from repro.observe.trace import (
    KernelLaunchEvent,
    PersistentKernelEvent,
    WaveEvent,
    counter_delta,
)
from repro.perf.workspace import WorkspaceArena, compact, iota, take
from repro.resilience.faults import FaultContext

__all__ = ["VectorizedEngine", "best_labels_groupby"]


#: Knuth's multiplicative constant, used for the "hash" tie-break.
_HASH_MULT = np.int64(2654435761)
_HASH_MASK = np.int64(2**31 - 1)

#: Ranks must fit 31 bits for the composite-key sort paths below.
_RANK_LIMIT = np.int64(1) << 31
#: ``table * 2^31 + rank`` must fit int64, so at most 2^32 tables qualify
#: for the composite argsort; beyond that we fall back to ``np.lexsort``.
_COMPOSITE_TABLE_LIMIT = 1 << 32

_INT64_MAX = np.int64(np.iinfo(np.int64).max)


def _tie_rank(keys: np.ndarray, tie_break: str, arena, name: str) -> np.ndarray:
    """Per-entry tie-break rank; smaller rank wins among equal weights."""
    if tie_break == "hash":
        rank = take(arena, name, keys.shape[0], np.int64)
        np.multiply(keys, _HASH_MULT, out=rank)
        np.bitwise_and(rank, _HASH_MASK, out=rank)
        return rank
    if tie_break == "smallest":
        return keys
    raise ValueError(f"unknown tie_break {tie_break!r}")


def _groupby_order(
    table_id: np.ndarray,
    keys: np.ndarray,
    rank: np.ndarray,
    num_tables: int,
    arena,
) -> np.ndarray:
    """Permutation sorting entries by ``(table, rank, key)``, stable.

    Ranks are injective per key for both tie-breaks whenever ``key >= 0``
    ("smallest" is the identity; the Knuth hash is odd, hence invertible
    mod 2^31), so the key column never actually breaks a tie and a stable
    ``(table, rank)`` sort yields the same permutation as the full lexsort.
    That admits two composite-key fast paths:

    1. When ``table``, ``rank``, and the entry index together fit 63 bits,
       fold all three into one int64, sort it *in place* (every value is
       unique, so an unstable sort still lands in stable order) and decode
       the permutation with a bitmask — zero allocations, and ~20x faster
       than ``np.lexsort``.  Engine waves always take this path.
    2. Otherwise argsort ``table * 2^31 + rank`` with a stable (radix)
       sort — one permutation allocation, still ~8x faster than lexsort.

    Anything unpackable (negative keys, oversized ranks or table counts)
    falls back to the equivalent ``np.lexsort``.  Every branch depends
    only on the *inputs*, never on the arena, so arena-on and arena-off
    runs take the same path and stay bit-identical.
    """
    n = keys.shape[0]
    if int(keys.min()) < 0 or int(rank.max()) >= int(_RANK_LIMIT):
        return np.lexsort((keys, rank, table_id))
    ibits = max((n - 1).bit_length(), 1)
    rbits = max(int(rank.max()).bit_length(), 1)
    tbits = max((num_tables - 1).bit_length(), 1)
    if tbits + rbits + ibits <= 63:
        comp = take(arena, "gb.comp", n, np.int64)
        np.multiply(table_id, np.int64(1) << (rbits + ibits), out=comp)
        shifted_rank = take(arena, "gb.rsh", n, np.int64)
        np.multiply(rank, np.int64(1) << ibits, out=shifted_rank)
        np.add(comp, shifted_rank, out=comp)
        np.add(comp, iota(arena, n), out=comp)
        comp.sort()
        perm = take(arena, "gb.perm", n, np.int64)
        np.bitwise_and(comp, (np.int64(1) << ibits) - np.int64(1), out=perm)
        return perm
    if num_tables <= _COMPOSITE_TABLE_LIMIT:
        comp = take(arena, "gb.comp", n, np.int64)
        np.multiply(table_id, _RANK_LIMIT, out=comp)
        np.add(comp, rank, out=comp)
        return np.argsort(comp, kind="stable")
    return np.lexsort((keys, rank, table_id))


def _groupby_order_packed(
    table_id: np.ndarray,
    keys: np.ndarray,
    num_tables: int,
    arena,
) -> tuple[np.ndarray, np.ndarray, int, int] | None:
    """The single-int64 fast path of :func:`_groupby_order`, keeping ``comp``.

    Only for the ``"smallest"`` tie-break, where the rank column *is* the
    key column: on success returns ``(perm, sorted_comp, rbits, ibits)``
    so the caller can decode each sorted entry's ``(table, key)`` pair
    straight out of ``sorted_comp >> ibits`` — replacing the random
    key-gather and the two-column group-boundary test with shifts over
    already-sorted memory.  ``perm`` is bit-identical to what
    :func:`_groupby_order` returns for the same inputs; ``None`` means
    the inputs don't pack (caller falls back to the general path).
    """
    n = keys.shape[0]
    if int(keys.min()) < 0 or int(keys.max()) >= int(_RANK_LIMIT):
        return None
    ibits = max((n - 1).bit_length(), 1)
    rbits = max(int(keys.max()).bit_length(), 1)
    tbits = max((num_tables - 1).bit_length(), 1)
    if tbits + rbits + ibits > 63:
        return None
    comp = take(arena, "gb.comp", n, np.int64)
    np.multiply(table_id, np.int64(1) << (rbits + ibits), out=comp)
    shifted_rank = take(arena, "gb.rsh", n, np.int64)
    np.multiply(keys, np.int64(1) << ibits, out=shifted_rank)
    np.add(comp, shifted_rank, out=comp)
    np.add(comp, iota(arena, n), out=comp)
    comp.sort()
    perm = take(arena, "gb.perm", n, np.int64)
    np.bitwise_and(comp, (np.int64(1) << ibits) - np.int64(1), out=perm)
    return perm, comp, rbits, ibits


def best_labels_groupby(
    table_id: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    fallback: np.ndarray,
    *,
    tie_break: str = "smallest",
    accum_dtype: np.dtype | type = np.float64,
    arena: WorkspaceArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Most-weighted key per table; empty tables -> fallback.

    ``table_id`` must be non-decreasing (gather order guarantees it); the
    table count is ``fallback.shape[0]``.

    ``tie_break`` resolves equal-weight maxima:

    * ``"smallest"`` — lowest label id.  Deterministic, but under strongly
      *asynchronous* execution the monotone bias lets small labels cascade
      across the whole graph in one pass (monster communities);
    * ``"hash"`` — lowest multiplicative hash of the label, modelling the
      direction-free pseudo-random order of a real hashtable scan; the
      asynchronous CPU baselines use this.

    ``accum_dtype`` is the precision edge weights are cast to and summed
    in — the vectorized engine passes ``config.value_dtype`` so the
    Figure-5 fp32/fp64 ablation exercises this engine too (it used to
    accumulate in float64 unconditionally).  ``arena``/``out`` plug the
    call into a scratch arena; results are bit-identical without them.
    """
    num_tables = fallback.shape[0]
    if out is None:
        out = np.empty_like(fallback)
    np.copyto(out, fallback)
    n = keys.shape[0]
    if n == 0:
        return out
    accum = np.dtype(accum_dtype)
    packed = (
        _groupby_order_packed(table_id, keys, num_tables, arena)
        if tie_break == "smallest"
        else None
    )
    if packed is None:
        rank = _tie_rank(keys, tie_break, arena, "gb.rank")
        perm = _groupby_order(table_id, keys, rank, num_tables, arena)
    else:
        perm, comp, rbits, ibits = packed

    if values.dtype == accum:
        vsrc = values
    else:
        vsrc = take(arena, "gb.vcast", n, accum)
        np.copyto(vsrc, values, casting="unsafe")
    v = take(arena, "gb.v", n, accum)
    vsrc.take(perm, out=v, mode="clip")

    # Group = contiguous run of equal (table, key); table/rank sorting makes
    # groups appear in tie-break order within each table.
    group_first = take(arena, "gb.gf", n, bool)
    group_first[0] = True
    if packed is not None:
        # ``comp >> ibits`` is exactly the (table, key) pair of each sorted
        # entry, so one shift + one diff replaces the random key gather and
        # the two-column boundary test — same groups, bit for bit.
        sh = take(arena, "gb.sh", n, np.int64)
        np.right_shift(comp, np.int64(ibits), out=sh)
        np.not_equal(sh[1:], sh[:-1], out=group_first[1:])
        num_groups = int(np.count_nonzero(group_first))
        starts = compact(arena, "gb.starts", group_first, num_groups, iota(arena, n))
        sums = take(arena, "gb.sums", num_groups, accum)
        np.add.reduceat(v, starts, out=sums)
        group_pair = take(arena, "gb.gp", num_groups, np.int64)
        sh.take(starts, out=group_pair, mode="clip")
        group_table = take(arena, "gb.gt", num_groups, np.int64)
        np.right_shift(group_pair, np.int64(rbits), out=group_table)
        group_key = take(arena, "gb.gk", num_groups, np.int64)
        np.bitwise_and(
            group_pair, (np.int64(1) << rbits) - np.int64(1), out=group_key
        )
    else:
        # Sorted-by-(table, rank, key) copies of the entry columns.  The
        # sort is table-stable and ``table_id`` is non-decreasing (the
        # contract), so the permuted table column equals the input — no
        # gather needed.
        if table_id.dtype == np.int64:
            t = table_id
        else:  # direct callers (tests, baselines) may pass narrower ids
            t = take(arena, "gb.t", n, np.int64)
            np.copyto(t, table_id, casting="unsafe")
        k = take(arena, "gb.k", n, keys.dtype)
        keys.take(perm, out=k, mode="clip")
        np.not_equal(t[1:], t[:-1], out=group_first[1:])
        key_diff = take(arena, "gb.kd", max(n - 1, 1), bool)[: n - 1]
        np.not_equal(k[1:], k[:-1], out=key_diff)
        np.logical_or(group_first[1:], key_diff, out=group_first[1:])
        num_groups = int(np.count_nonzero(group_first))
        starts = compact(arena, "gb.starts", group_first, num_groups, iota(arena, n))
        sums = take(arena, "gb.sums", num_groups, accum)
        np.add.reduceat(v, starts, out=sums)
        group_table = take(arena, "gb.gt", num_groups, np.int64)
        t.take(starts, out=group_table, mode="clip")
        group_key = take(arena, "gb.gk", num_groups, keys.dtype)
        k.take(starts, out=group_key, mode="clip")

    # Per-table argmax with ties in rank order: groups are rank-sorted
    # within each table, so the *first* group attaining the table max wins.
    table_first = take(arena, "gb.tf", num_groups, bool)
    table_first[0] = True
    np.not_equal(group_table[1:], group_table[:-1], out=table_first[1:])
    num_present = int(np.count_nonzero(table_first))
    table_starts = compact(
        arena, "gb.ts", table_first, num_present, iota(arena, num_groups)
    )
    # cumsum straight off the bool mask would materialise an int64 cast
    # copy of it; the explicit copyto keeps the cast allocation-free.
    table_of_groups = take(arena, "gb.tog", num_groups, np.int64)
    np.copyto(table_of_groups, table_first, casting="unsafe")
    np.cumsum(table_of_groups, out=table_of_groups)
    np.subtract(table_of_groups, 1, out=table_of_groups)

    max_per_table = take(arena, "gb.mpt", num_present, accum)
    np.maximum.reduceat(sums, table_starts, out=max_per_table)
    spread_max = take(arena, "gb.spread", num_groups, accum)
    max_per_table.take(table_of_groups, out=spread_max, mode="clip")
    is_max = take(arena, "gb.ismax", num_groups, bool)
    np.equal(sums, spread_max, out=is_max)

    candidate = take(arena, "gb.cand", num_groups, np.int64)
    np.copyto(candidate, iota(arena, num_groups))
    np.logical_not(is_max, out=is_max)  # is_max now "not max"
    candidate[is_max] = _INT64_MAX
    first_max = take(arena, "gb.fm", num_present, np.int64)
    np.minimum.reduceat(candidate, table_starts, out=first_max)

    present_tables = take(arena, "gb.pt", num_present, np.int64)
    group_table.take(table_starts, out=present_tables, mode="clip")
    winners = take(arena, "gb.win", num_present, keys.dtype)
    group_key.take(first_max, out=winners, mode="clip")
    out[present_tables] = winners
    return out


class VectorizedEngine:
    """``lpaMove`` via segmented group-by; application fast path."""

    name = "vectorized"

    #: Optional resilience hook (see :mod:`repro.resilience.faults`): called
    #: with a :class:`FaultContext` once per wave, before the group-by
    #: reduction.  ``None`` (the default) costs one attribute test per wave.
    fault_hook = None

    #: Optional :class:`~repro.observe.trace.Tracer` (same contract as the
    #: hashtable engine); this engine's counters are coarse, so wave deltas
    #: carry traffic and edge counts but no probe/atomic detail.
    tracer = None

    #: Optional :class:`~repro.gpu.governor.MemoryGovernor` (same contract
    #: as the hashtable engine); this engine owns no hashtable region, so
    #: only its arena charges the ledger.
    governor = None

    def __init__(self, graph: CSRGraph, config: LPAConfig) -> None:
        self.graph = graph
        self.config = config
        self.arena = WorkspaceArena() if config.workspace_arena else None
        self._accum_dtype = np.dtype(config.value_dtype)
        # Loop-free graphs (the common case; checked once, cached on the
        # graph) skip the per-wave self-loop filter entirely.
        self._loop_free = not graph.has_self_loops
        # Kernels that have already been launched once, for persistent-kernel
        # mode (config.persistent_kernel): later dispatches of the same kind
        # are grid-resident and don't count as launches.
        self._launched: set[KernelKind] = set()

    def release_memory(self) -> int:
        """Return every ledger charge this engine owns (arena only).

        Same contract as the hashtable engine's ``release_memory``:
        idempotent, returns the bytes released.
        """
        released = 0
        if self.arena is not None:
            released = self.arena.release_charges()
            self.arena.governor = None
        self.governor = None
        return released

    def move(
        self,
        labels: np.ndarray,
        frontier: Frontier,
        *,
        pick_less: bool,
        iteration: int,
    ) -> MoveOutcome:
        """One LPA iteration over the frontier's active vertices."""
        arena = self.arena
        active = frontier.active_vertices()
        counters = KernelCounters()

        # Degree-0 vertices can never change label; retire them up front
        # (mirrors the hashtable engine, which has no slots for them).
        # They still count as processed — the frontier flagged them done.
        na = active.shape[0]
        adeg = take(arena, "mv.adeg", na, self.graph.degrees.dtype)
        self.graph.degrees.take(active, out=adeg, mode="clip")
        zmask = take(arena, "mv.zmask", na, bool)
        np.equal(adeg, 0, out=zmask)
        retired = int(np.count_nonzero(zmask))
        if retired:
            zero = compact(arena, "mv.zero", zmask, retired, active)
            frontier.mark_processed(zero)
            np.logical_not(zmask, out=zmask)
            active = compact(arena, "mv.act", zmask, na - retired, active)

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        partition = partition_by_degree(
            active, self.graph.degrees, self.config.switch_degree, arena=arena
        )
        changed_buf = take(arena, "mv.changed", partition.total, np.int64)
        num_changed = 0
        for kind in (KernelKind.THREAD_PER_VERTEX, KernelKind.BLOCK_PER_VERTEX):
            vertices = partition.for_kind(kind)
            if vertices.shape[0] == 0:
                continue
            persistent = self.config.persistent_kernel and kind in self._launched
            if not persistent:
                counters.launches += 1
                self._launched.add(kind)
            plan = plan_waves(self.config.device, kind, vertices.shape[0])
            counters.waves += plan.num_waves
            if tracing:
                event_cls = PersistentKernelEvent if persistent else KernelLaunchEvent
                tracer.emit(event_cls(
                    iteration=iteration,
                    kernel=kind.value,
                    num_items=int(vertices.shape[0]),
                    num_waves=plan.num_waves,
                ))
            for wave_index, (lo, hi) in enumerate(plan):
                wave = vertices[lo:hi]
                before = counters.as_dict() if tracing else None
                frontier.mark_processed(wave)

                gather = gather_edges(self.graph, wave, arena, need_rank=False)
                ne = gather.num_edges
                targets = take(arena, "mv.tg", ne, self.graph.targets.dtype)
                self.graph.targets.take(gather.edge_index, out=targets, mode="clip")
                if targets.dtype != np.int64:
                    # Indexing labels with an int32 array makes numpy
                    # malloc an intp copy per take; widen once into an
                    # arena slot to keep steady-state waves allocation-free.
                    wide_targets = take(arena, "mv.tg64", ne, np.int64)
                    np.copyto(wide_targets, targets)
                    targets = wide_targets
                if self._loop_free:
                    # No self-loops anywhere: the loop filter would be an
                    # identity copy, so feed the gather straight through.
                    m = ne
                    table_id = gather.table_id
                    tgt_nl = targets
                    values = take(arena, "mv.val", ne, self.graph.weights.dtype)
                    self.graph.weights.take(
                        gather.edge_index, out=values, mode="clip"
                    )
                else:
                    owner = take(arena, "mv.owner", ne, wave.dtype)
                    wave.take(gather.table_id, out=owner, mode="clip")
                    non_loop = take(arena, "mv.nl", ne, bool)
                    np.not_equal(targets, owner, out=non_loop)
                    m = int(np.count_nonzero(non_loop))

                    wts = take(arena, "mv.w", ne, self.graph.weights.dtype)
                    self.graph.weights.take(
                        gather.edge_index, out=wts, mode="clip"
                    )
                    table_id, tgt_nl, values = compact(
                        arena, "mv.nl", non_loop, m,
                        gather.table_id, targets, wts,
                    )
                keys = take(arena, "mv.keys", m, labels.dtype)
                labels.take(tgt_nl, out=keys, mode="clip")

                if self.fault_hook is not None:
                    # `keys` is this wave's working set (a fresh gather), so
                    # a bit flip here corrupts the wave without touching the
                    # committed labels.
                    self.fault_hook(
                        FaultContext(
                            phase="reduce",
                            engine=self.name,
                            kernel=kind,
                            device=self.config.device,
                            wave=wave,
                            labels=labels,
                            keys=keys,
                        )
                    )

                w = wave.shape[0]
                fallback = take(arena, "mv.fb", w, labels.dtype)
                labels.take(wave, out=fallback, mode="clip")
                best = best_labels_groupby(
                    table_id,
                    keys,
                    values,
                    fallback,
                    accum_dtype=self._accum_dtype,
                    arena=arena,
                    out=take(arena, "mv.best", w, labels.dtype),
                )

                adopt = pick_less_filter(
                    fallback,
                    best,
                    pick_less,
                    out=take(arena, "mv.adopt", w, bool),
                    scratch=take(arena, "mv.plsc", w, bool),
                )
                na_w = int(np.count_nonzero(adopt))
                adopters, new_labels = compact(
                    arena, "mv.adopters", adopt, na_w, wave, best
                )
                labels[adopters] = new_labels
                marked = frontier.mark_neighbors_unprocessed(adopters)
                changed_buf[num_changed : num_changed + na_w] = adopters
                num_changed += na_w

                counters.edges_scanned += m
                counters.sectors_read += 2 * m
                counters.sectors_written += na_w + marked
                if tracing:
                    tracer.emit(WaveEvent(
                        iteration=iteration,
                        kernel=kind.value,
                        wave_index=wave_index,
                        lo=lo,
                        hi=hi,
                        counters=counter_delta(before, counters.as_dict()),
                    ))

        # One per-iteration copy (tiny in steady state): the scratch slot is
        # recycled next move, but changed_vertices outlives it.
        changed_vertices = changed_buf[:num_changed].copy()
        counters.vertices_processed += partition.total + retired
        return MoveOutcome(
            changed=num_changed,
            processed=partition.total + retired,
            counters=counters,
            changed_vertices=changed_vertices,
        )
