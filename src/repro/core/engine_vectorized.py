"""The fast ν-LPA engine: sort-based group-by label selection.

Identical driver semantics to :class:`~repro.core.engine_hashtable.
HashtableEngine` — same wave structure, same Pick-Less filter, same pruning
— but the per-vertex "most weighted label" is computed with a lexsort +
segmented reduce instead of simulated hashtables, making it the engine of
choice for applications (an order of magnitude faster in pure NumPy).

Tie-break difference, by construction: where several labels share the
maximum weight, this engine picks the *smallest label id* (deterministic);
the hashtable engine picks the first in slot order (pseudo-random, the
paper's "strict LPA").  Cross-engine tests therefore compare modularity and
invariants rather than exact labels.

Counters are coarse (edges scanned, waves, adjacency/label traffic): this
engine exists for speed, not for the cost model — experiments use the
hashtable engine.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.core.config import LPAConfig
from repro.core.engine_hashtable import MoveOutcome
from repro.core.kernels import partition_by_degree
from repro.core.pruning import Frontier
from repro.core.swap_prevention import pick_less_filter
from repro.gpu.kernel import KernelKind
from repro.gpu.metrics import KernelCounters
from repro.gpu.scheduler import plan_waves
from repro.graph.csr import CSRGraph
from repro.observe.trace import KernelLaunchEvent, WaveEvent, counter_delta
from repro.resilience.faults import FaultContext

__all__ = ["VectorizedEngine", "best_labels_groupby"]


#: Knuth's multiplicative constant, used for the "hash" tie-break.
_HASH_MULT = np.int64(2654435761)
_HASH_MASK = np.int64(2**31 - 1)


def best_labels_groupby(
    table_id: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    num_tables: int,
    fallback: np.ndarray,
    *,
    tie_break: str = "smallest",
) -> np.ndarray:
    """Most-weighted key per table; empty tables -> fallback.

    ``table_id`` must be non-decreasing (gather order guarantees it).

    ``tie_break`` resolves equal-weight maxima:

    * ``"smallest"`` — lowest label id.  Deterministic, but under strongly
      *asynchronous* execution the monotone bias lets small labels cascade
      across the whole graph in one pass (monster communities);
    * ``"hash"`` — lowest multiplicative hash of the label, modelling the
      direction-free pseudo-random order of a real hashtable scan; the
      asynchronous CPU baselines use this.
    """
    if keys.shape[0] == 0:
        return fallback.copy()
    if tie_break == "hash":
        rank = (keys * _HASH_MULT) & _HASH_MASK
    elif tie_break == "smallest":
        rank = keys
    else:
        raise ValueError(f"unknown tie_break {tie_break!r}")
    # Sort by (table, rank, key) so same-key entries are contiguous and
    # groups appear in tie-break order within each table.
    order = np.lexsort((keys, rank, table_id))
    t = table_id[order]
    k = keys[order]
    v = values[order].astype(np.float64)

    group_first = np.ones(k.shape[0], dtype=bool)
    group_first[1:] = (t[1:] != t[:-1]) | (k[1:] != k[:-1])
    starts = np.flatnonzero(group_first)
    sums = np.add.reduceat(v, starts)
    group_table = t[starts]
    group_key = k[starts]

    # Per-table argmax with ties in rank order: groups are rank-sorted
    # within each table, so the *first* group attaining the table max wins.
    table_first = np.ones(starts.shape[0], dtype=bool)
    table_first[1:] = group_table[1:] != group_table[:-1]
    table_starts = np.flatnonzero(table_first)
    table_of_groups = np.cumsum(table_first) - 1

    max_per_table = np.maximum.reduceat(sums, table_starts)
    is_max = sums == max_per_table[table_of_groups]
    group_pos = np.arange(starts.shape[0], dtype=np.int64)
    big = np.int64(np.iinfo(np.int64).max)
    first_max = np.minimum.reduceat(np.where(is_max, group_pos, big), table_starts)

    out = fallback.copy()
    present_tables = group_table[table_starts]
    out[present_tables] = group_key[first_max]
    return out


class VectorizedEngine:
    """``lpaMove`` via segmented group-by; application fast path."""

    name = "vectorized"

    #: Optional resilience hook (see :mod:`repro.resilience.faults`): called
    #: with a :class:`FaultContext` once per wave, before the group-by
    #: reduction.  ``None`` (the default) costs one attribute test per wave.
    fault_hook = None

    #: Optional :class:`~repro.observe.trace.Tracer` (same contract as the
    #: hashtable engine); this engine's counters are coarse, so wave deltas
    #: carry traffic and edge counts but no probe/atomic detail.
    tracer = None

    def __init__(self, graph: CSRGraph, config: LPAConfig) -> None:
        self.graph = graph
        self.config = config

    def move(
        self,
        labels: np.ndarray,
        frontier: Frontier,
        *,
        pick_less: bool,
        iteration: int,
    ) -> MoveOutcome:
        """One LPA iteration over the frontier's active vertices."""
        active = frontier.active_vertices()
        counters = KernelCounters()
        changed_parts: list[np.ndarray] = []

        # Degree-0 vertices can never change label; retire them up front
        # (mirrors the hashtable engine, which has no slots for them).
        zero = active[self.graph.degrees[active] == 0]
        if zero.shape[0]:
            frontier.mark_processed(zero)
            active = active[self.graph.degrees[active] > 0]

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        partition = partition_by_degree(
            active, self.graph.degrees, self.config.switch_degree
        )
        for kind in (KernelKind.THREAD_PER_VERTEX, KernelKind.BLOCK_PER_VERTEX):
            vertices = partition.for_kind(kind)
            if vertices.shape[0] == 0:
                continue
            counters.launches += 1
            plan = plan_waves(self.config.device, kind, vertices.shape[0])
            counters.waves += plan.num_waves
            if tracing:
                tracer.emit(KernelLaunchEvent(
                    iteration=iteration,
                    kernel=kind.value,
                    num_items=int(vertices.shape[0]),
                    num_waves=plan.num_waves,
                ))
            for wave_index, (lo, hi) in enumerate(plan):
                wave = vertices[lo:hi]
                before = counters.as_dict() if tracing else None
                frontier.mark_processed(wave)

                gather = gather_edges(self.graph, wave)
                targets = self.graph.targets[gather.edge_index]
                non_loop = targets != wave[gather.table_id]
                table_id = gather.table_id[non_loop]
                keys = labels[targets[non_loop]]
                values = self.graph.weights[gather.edge_index][non_loop]

                if self.fault_hook is not None:
                    # `keys` is a fresh gather (fancy indexing copies), so a
                    # bit flip here corrupts the wave's working set without
                    # touching the committed labels.
                    self.fault_hook(
                        FaultContext(
                            phase="reduce",
                            engine=self.name,
                            kernel=kind,
                            device=self.config.device,
                            wave=wave,
                            labels=labels,
                            keys=keys,
                        )
                    )

                fallback = labels[wave]
                best = best_labels_groupby(
                    table_id, keys, values, wave.shape[0], fallback
                )

                adopt = pick_less_filter(fallback, best, pick_less)
                adopters = wave[adopt]
                labels[adopters] = best[adopt]
                marked = frontier.mark_neighbors_unprocessed(adopters)

                counters.edges_scanned += int(keys.shape[0])
                counters.sectors_read += 2 * int(keys.shape[0])
                counters.sectors_written += int(adopters.shape[0]) + marked
                changed_parts.append(adopters)
                if tracing:
                    tracer.emit(WaveEvent(
                        iteration=iteration,
                        kernel=kind.value,
                        wave_index=wave_index,
                        lo=lo,
                        hi=hi,
                        counters=counter_delta(before, counters.as_dict()),
                    ))

        changed_vertices = (
            np.concatenate(changed_parts) if changed_parts else np.empty(0, np.int64)
        )
        counters.vertices_processed += partition.total
        return MoveOutcome(
            changed=int(changed_vertices.shape[0]),
            processed=partition.total,
            counters=counters,
            changed_vertices=changed_vertices,
        )
