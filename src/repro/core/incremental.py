"""Incremental re-detection after graph updates (warm-start ν-LPA).

ν-LPA's vertex-pruning frontier is exactly the machinery a *dynamic*
setting needs: after a batch of edge insertions/deletions, communities far
from the touched region are still correct, so re-detection should start
from the previous labels with only the affected vertices (and their
neighbourhoods) active.  This module provides that warm start — the
approach of the dynamic-LPA literature (e.g. DF-LPA), built from the
library's existing driver.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.core.result import LPAResult
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["affected_vertices", "nu_lpa_incremental"]


def _validate_touched(graph: CSRGraph, touched: np.ndarray, hops: int) -> np.ndarray:
    if hops < 0:
        raise ConfigurationError(f"hops must be >= 0; got {hops}")
    touched = np.unique(np.asarray(touched, dtype=np.int64))
    if touched.shape[0] and (
        touched.min() < 0 or touched.max() >= graph.num_vertices
    ):
        raise ConfigurationError("touched vertex id out of range")
    return touched


def affected_vertices(
    graph: CSRGraph, touched: np.ndarray, *, hops: int = 1
) -> np.ndarray:
    """``touched`` plus its ``hops``-neighbourhood on ``graph``.

    The frontier seed for incremental re-detection: endpoints of changed
    edges plus enough context for labels to re-equilibrate locally.

    The expansion is a vectorised BFS over the CSR arrays: each hop
    gathers the frontier rows' adjacency slices in one fancy-index
    operation, masks out already-seen vertices against a boolean visited
    array, and dedupes with :func:`numpy.unique` — no per-vertex Python
    loop on the subscription hot path.
    """
    touched = _validate_touched(graph, touched, hops)
    n = graph.num_vertices
    if touched.shape[0] == 0 or hops == 0:
        return touched
    offsets = graph.offsets
    targets = graph.targets
    degrees = graph.degrees
    seen = np.zeros(n, dtype=bool)
    seen[touched] = True
    current = touched
    for _ in range(hops):
        counts = degrees[current]
        total = int(counts.sum())
        if total == 0:
            break
        # Gather the concatenated adjacency slices of the frontier:
        # arc index = row start repeated per-degree, plus the within-row
        # offset (a global iota minus each run's start).
        run_starts = np.repeat(
            np.cumsum(counts) - counts, counts.astype(np.intp)
        )
        within = np.arange(total, dtype=np.int64) - run_starts
        nbrs = targets[np.repeat(offsets[current], counts.astype(np.intp)) + within]
        fresh = np.unique(nbrs[~seen[nbrs]])
        if fresh.shape[0] == 0:
            break
        seen[fresh] = True
        current = fresh
    return np.flatnonzero(seen).astype(np.int64)


def _affected_vertices_reference(
    graph: CSRGraph, touched: np.ndarray, *, hops: int = 1
) -> np.ndarray:
    """Pure-Python BFS oracle for the differential test of
    :func:`affected_vertices` (the pre-vectorisation implementation)."""
    touched = _validate_touched(graph, touched, hops)
    current = touched
    seen = set(touched.tolist())
    for _ in range(hops):
        nxt: list[int] = []
        for v in current:
            nxt.extend(graph.neighbors(int(v)).tolist())
        fresh = [u for u in nxt if u not in seen]
        seen.update(fresh)
        current = np.asarray(sorted(set(fresh)), dtype=np.int64)
        if current.shape[0] == 0:
            break
    return np.asarray(sorted(seen), dtype=np.int64)


def nu_lpa_incremental(
    graph: CSRGraph,
    previous_labels: np.ndarray,
    touched: np.ndarray,
    *,
    config: LPAConfig | None = None,
    engine: str = "vectorized",
    hops: int = 1,
) -> LPAResult:
    """Re-detect communities after a graph update, warm-started.

    Parameters
    ----------
    graph:
        The *updated* graph (vertex ids must be compatible with
        ``previous_labels``; grow-only updates can pad labels first).
    previous_labels:
        Labels from the previous detection on the pre-update graph.
    touched:
        Vertices incident to inserted/deleted edges.
    config, engine:
        As for :func:`~repro.core.lpa.nu_lpa`.
    hops:
        Frontier context radius around ``touched``.

    Returns the usual :class:`~repro.core.result.LPAResult`; vertices
    outside the affected region keep their previous labels unless a label
    change propagates to them (the frontier re-activates neighbours of
    every change, so corrections travel as far as they need to).
    """
    previous_labels = np.asarray(previous_labels, dtype=VERTEX_DTYPE)
    if previous_labels.shape[0] != graph.num_vertices:
        raise ConfigurationError(
            f"previous_labels length {previous_labels.shape[0]} != "
            f"num_vertices {graph.num_vertices}"
        )
    if hops < 0:
        raise ConfigurationError(f"hops must be >= 0; got {hops}")
    touched = np.unique(np.asarray(touched, dtype=np.int64))
    if touched.shape[0] == 0:
        # Nothing changed: the previous labels are already the fixed point.
        # Returning them directly skips engine construction entirely — an
        # empty delta batch must cost O(1), not a full wave.
        if engine not in ("vectorized", "hashtable"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; choose from "
                f"['hashtable', 'vectorized']"
            )
        return LPAResult(
            labels=previous_labels.copy(),
            iterations=[],
            converged=True,
            config=config or LPAConfig(),
            algorithm=f"nu-lpa-incremental[{engine}]",
        )
    seed_vertices = affected_vertices(graph, touched, hops=hops)

    # Run the standard driver from the previous labels, with only the
    # affected region initially active.
    result = nu_lpa(
        graph,
        config,
        engine=engine,
        initial_labels=previous_labels,
        initial_active=seed_vertices,
    )
    result.algorithm = result.algorithm.replace("nu-lpa", "nu-lpa-incremental")
    return result
