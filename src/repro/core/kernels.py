"""Work partitioning between the two LPA kernels (paper Section 4.3).

Vertices of degree below ``switch_degree`` go to the thread-per-vertex
kernel (one lane owns the vertex and its private hashtable — no atomics);
the rest go to the block-per-vertex kernel (the block's lanes scan the
adjacency list cooperatively and share the table through atomics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelKind

__all__ = ["DegreePartition", "partition_by_degree"]


@dataclass(frozen=True)
class DegreePartition:
    """Active vertices split by kernel."""

    low: np.ndarray  # thread-per-vertex vertices (degree < switch_degree)
    high: np.ndarray  # block-per-vertex vertices

    def for_kind(self, kind: KernelKind) -> np.ndarray:
        """The vertex set handled by ``kind``."""
        return self.low if kind is KernelKind.THREAD_PER_VERTEX else self.high

    @property
    def total(self) -> int:
        """Total vertices across both kernels."""
        return int(self.low.shape[0] + self.high.shape[0])


def partition_by_degree(
    vertices: np.ndarray, degrees: np.ndarray, switch_degree: int
) -> DegreePartition:
    """Split ``vertices`` by ``degrees[v] < switch_degree``.

    Order within each side is preserved (ascending vertex id when the
    caller passes ids in order), which fixes the wave composition and makes
    runs reproducible.  ``switch_degree == 0`` sends everything to the
    block kernel; a very large value sends everything to the thread kernel.
    """
    if vertices.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return DegreePartition(low=empty, high=empty)
    low_mask = degrees[vertices] < switch_degree
    return DegreePartition(low=vertices[low_mask], high=vertices[~low_mask])
