"""Work partitioning between the two LPA kernels (paper Section 4.3).

Vertices of degree below ``switch_degree`` go to the thread-per-vertex
kernel (one lane owns the vertex and its private hashtable — no atomics);
the rest go to the block-per-vertex kernel (the block's lanes scan the
adjacency list cooperatively and share the table through atomics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelKind
from repro.perf.workspace import WorkspaceArena, compact, take

__all__ = ["DegreePartition", "partition_by_degree"]


@dataclass(frozen=True)
class DegreePartition:
    """Active vertices split by kernel."""

    low: np.ndarray  # thread-per-vertex vertices (degree < switch_degree)
    high: np.ndarray  # block-per-vertex vertices

    def for_kind(self, kind: KernelKind) -> np.ndarray:
        """The vertex set handled by ``kind``."""
        return self.low if kind is KernelKind.THREAD_PER_VERTEX else self.high

    @property
    def total(self) -> int:
        """Total vertices across both kernels."""
        return int(self.low.shape[0] + self.high.shape[0])


_EMPTY = np.empty(0, dtype=np.int64)


def partition_by_degree(
    vertices: np.ndarray,
    degrees: np.ndarray,
    switch_degree: int,
    *,
    arena: WorkspaceArena | None = None,
) -> DegreePartition:
    """Split ``vertices`` by ``degrees[v] < switch_degree``.

    Order within each side is preserved (ascending vertex id when the
    caller passes ids in order), which fixes the wave composition and makes
    runs reproducible.  ``switch_degree == 0`` sends everything to the
    block kernel; a very large value sends everything to the thread kernel.

    With an arena the two sides are scratch views (``part.`` slots), valid
    until the caller's next move.
    """
    nv = int(vertices.shape[0])
    if nv == 0:
        return DegreePartition(low=_EMPTY, high=_EMPTY)
    deg = take(arena, "part.deg", nv, degrees.dtype)
    degrees.take(vertices, out=deg, mode="clip")
    low_mask = take(arena, "part.mask", nv, bool)
    np.less(deg, switch_degree, out=low_mask)
    num_low = int(np.count_nonzero(low_mask))
    low = compact(arena, "part.low", low_mask, num_low, vertices)
    np.logical_not(low_mask, out=low_mask)
    high = compact(arena, "part.high", low_mask, nv - num_low, vertices)
    return DegreePartition(low=low, high=high)
