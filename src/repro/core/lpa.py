"""ν-LPA driver: Algorithm 1's ``lpa()`` main loop.

The driver owns everything iteration-shaped: label initialisation, the
Pick-Less schedule (every ρ iterations), the optional Cross-Check pass,
the tolerance test (which is suppressed while PL is active, per Algorithm 1
line 9), and the iteration cap.  The per-iteration ``lpaMove`` is delegated
to one of the two engines.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.core.config import LPAConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.engine_vectorized import VectorizedEngine
from repro.core.pruning import Frontier
from repro.core.result import IterationStats, LPAResult
from repro.core.swap_prevention import cross_check_revert
from repro.errors import ConfigurationError, ConvergenceWarning
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["nu_lpa", "make_engine"]

_ENGINES = {
    "hashtable": HashtableEngine,
    "vectorized": VectorizedEngine,
}


def make_engine(graph: CSRGraph, config: LPAConfig, engine: str):
    """Instantiate an engine by name (``"hashtable"`` or ``"vectorized"``)."""
    try:
        cls = _ENGINES[engine]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return cls(graph, config)


def nu_lpa(
    graph: CSRGraph,
    config: LPAConfig | None = None,
    *,
    engine: str = "vectorized",
    initial_labels: np.ndarray | None = None,
    initial_active: np.ndarray | None = None,
    warn_on_no_convergence: bool = False,
) -> LPAResult:
    """Run ν-LPA community detection on ``graph``.

    Parameters
    ----------
    graph:
        Undirected weighted CSR graph.
    config:
        Run configuration; defaults to the paper's settings (PL4,
        quadratic-double probing, τ = 0.05, ≤ 20 iterations).
    engine:
        ``"vectorized"`` (fast application path, default) or
        ``"hashtable"`` (instrumented Algorithm 2 simulation used by the
        experiments).
    initial_labels:
        Optional starting labels; defaults to each vertex in its own
        community (Algorithm 1 line 2).
    initial_active:
        Optional vertex set to seed the pruning frontier with (default:
        all vertices).  Warm restarts — incremental re-detection after a
        graph update — pass the affected region here; label changes still
        propagate outward because every change re-activates its
        neighbourhood.  Ignored when ``config.pruning`` is off.
    warn_on_no_convergence:
        Emit :class:`~repro.errors.ConvergenceWarning` when the iteration
        cap is hit (off by default: on several paper graphs hitting the
        cap is expected behaviour without swap mitigation).

    Returns
    -------
    LPAResult
        Final labels, per-iteration statistics, kernel counters.
    """
    config = config or LPAConfig()
    eng = make_engine(graph, config, engine)

    n = graph.num_vertices
    if initial_labels is None:
        labels = np.arange(n, dtype=VERTEX_DTYPE)
    else:
        labels = np.asarray(initial_labels, dtype=VERTEX_DTYPE).copy()
        if labels.shape[0] != n:
            raise ConfigurationError(
                f"initial_labels length {labels.shape[0]} != num_vertices {n}"
            )

    frontier = Frontier(graph, enabled=config.pruning)
    if initial_active is not None:
        active = np.asarray(initial_active, dtype=np.int64)
        if active.shape[0] and (active.min() < 0 or active.max() >= n):
            raise ConfigurationError("initial_active vertex id out of range")
        frontier.flags[:] = 0
        frontier.flags[active] = 1
    iterations: list[IterationStats] = []
    converged = n == 0
    t0 = time.perf_counter()

    for li in range(config.max_iterations):
        pick_less = config.pick_less_active(li)
        cross_check = config.cross_check_active(li)

        previous = labels.copy() if cross_check else None
        outcome = eng.move(labels, frontier, pick_less=pick_less, iteration=li)

        reverted = 0
        if cross_check and previous is not None:
            reverted = cross_check_revert(labels, previous, outcome.changed_vertices)

        iterations.append(
            IterationStats(
                iteration=li,
                changed=outcome.changed,
                processed=outcome.processed,
                pick_less=pick_less,
                cross_check=cross_check,
                reverted=reverted,
                counters=outcome.counters,
            )
        )

        # Algorithm 1 line 9: converge only when PL was off this iteration.
        if not pick_less and n > 0 and outcome.changed / n < config.tolerance:
            converged = True
            break

    wall = time.perf_counter() - t0
    if not converged and warn_on_no_convergence:
        warnings.warn(
            f"LPA hit max_iterations={config.max_iterations} without meeting "
            f"tolerance {config.tolerance}",
            ConvergenceWarning,
            stacklevel=2,
        )
    return LPAResult(
        labels=labels,
        iterations=iterations,
        converged=converged,
        config=config,
        wall_seconds=wall,
        algorithm=f"nu-lpa[{eng.name}]",
    )
