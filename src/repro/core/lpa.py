"""ν-LPA driver: Algorithm 1's ``lpa()`` main loop.

The driver owns everything iteration-shaped: label initialisation, the
Pick-Less schedule (every ρ iterations), the optional Cross-Check pass,
the tolerance test (which is suppressed while PL is active, per Algorithm 1
line 9), and the iteration cap.  The per-iteration ``lpaMove`` is delegated
to one of the two engines — or, when a
:class:`~repro.core.config.ResilienceConfig` is supplied, to the
:class:`~repro.resilience.supervisor.KernelSupervisor`, which becomes the
single choke point through which every kernel launch flows (invariant
checks, the retry → regrow → fallback degradation ladder, fault
injection).  The same configuration enables iteration-boundary
checkpointing and deterministic, bit-identical resume.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace

import numpy as np

from repro.core.budget import BudgetMeter, RunBudget
from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.engine_vectorized import VectorizedEngine
from repro.core.pruning import Frontier
from repro.core.result import IterationStats, LPAResult
from repro.core.swap_prevention import cross_check_revert
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ConvergenceWarning,
    CorruptionDetectedError,
    DeviceOomError,
)
from repro.gpu.governor import MemoryGovernor
from repro.gpu.kernel import LaunchStatus
from repro.graph.csr import CSRGraph
from repro.integrity.guard import IntegrityGuard
from repro.observe.trace import (
    BudgetEvent,
    ConvergenceEvent,
    IntegrityEvent,
    IterationEvent,
    Tracer,
)
from repro.resilience.checkpoint import CheckpointManager, CheckpointState, run_digest
from repro.resilience.report import FaultEvent
from repro.resilience.supervisor import KernelSupervisor
from repro.resilience.validate import validate_graph
from repro.types import VERTEX_DTYPE

__all__ = ["nu_lpa", "make_engine"]

_ENGINES = {
    "hashtable": HashtableEngine,
    "vectorized": VectorizedEngine,
}


def make_engine(graph: CSRGraph, config: LPAConfig, engine: str):
    """Instantiate an engine by name (``"hashtable"`` or ``"vectorized"``)."""
    try:
        cls = _ENGINES[engine]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return cls(graph, config)


def _make_governor(
    config: LPAConfig,
    resilience: ResilienceConfig | None,
    tracer: Tracer | None,
) -> MemoryGovernor | None:
    """Build the run's allocation ledger, or ``None`` for the free path.

    A governor exists when the config names a budget, or when the run
    injects ``oom`` faults (the injector needs a ledger to shrink; the
    budget then defaults to the device's ``global_memory_bytes``).
    """
    wants_oom = (
        resilience is not None
        and resilience.faults is not None
        and "oom" in resilience.faults.kinds
    )
    if config.memory_budget_bytes is None and not wants_oom:
        return None
    return MemoryGovernor(
        config.device,
        budget_bytes=config.memory_budget_bytes,
        reserved_fraction=config.reserved_memory_fraction,
        tracer=tracer,
    )


def nu_lpa(
    graph: CSRGraph,
    config: LPAConfig | None = None,
    *,
    engine: str = "vectorized",
    initial_labels: np.ndarray | None = None,
    initial_active: np.ndarray | None = None,
    warn_on_no_convergence: bool = True,
    resilience: ResilienceConfig | None = None,
    profile: bool = False,
    tracer: Tracer | None = None,
    validate: str | None = None,
    budget: RunBudget | None = None,
    cancel=None,
) -> LPAResult:
    """Run ν-LPA community detection on ``graph``.

    Parameters
    ----------
    graph:
        Undirected weighted CSR graph.
    config:
        Run configuration; defaults to the paper's settings (PL4,
        quadratic-double probing, τ = 0.05, ≤ 20 iterations).
    engine:
        ``"vectorized"`` (fast application path, default) or
        ``"hashtable"`` (instrumented Algorithm 2 simulation used by the
        experiments).
    initial_labels:
        Optional starting labels; defaults to each vertex in its own
        community (Algorithm 1 line 2).
    initial_active:
        Optional vertex set to seed the pruning frontier with (default:
        all vertices).  Warm restarts — incremental re-detection after a
        graph update — pass the affected region here; label changes still
        propagate outward because every change re-activates its
        neighbourhood.  Ignored when ``config.pruning`` is off.
    warn_on_no_convergence:
        Emit :class:`~repro.errors.ConvergenceWarning` when the iteration
        cap is hit without meeting τ (on by default; the result's
        ``converged`` flag carries the same information for programmatic
        use).  Pass ``False`` for batch experiments where hitting the cap
        is expected behaviour, e.g. runs without swap mitigation.
    resilience:
        Optional fault-tolerance policy.  When given, every move runs
        under the kernel supervisor, and ``resilience.checkpoint_dir`` /
        ``resilience.resume`` enable snapshotting and bit-identical
        resume from the newest checkpoint.
    profile:
        Build a :class:`~repro.observe.profile.RunProfile` (per-kernel /
        per-iteration modelled-seconds breakdown, traffic, histograms)
        and attach it as ``result.profile``.  Implies tracing: a
        :class:`~repro.observe.trace.Tracer` is created when none is
        passed.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer` to record kernel
        launch, wave, iteration, and fault-rung events into (attached as
        ``result.trace``).  A disabled tracer records nothing at no
        measurable cost.
    validate:
        Input-validation policy (``"strict"``, ``"repair"``, or
        ``"quarantine"``; see :mod:`repro.resilience.validate`).  The
        sweep runs before the driver loop; ``strict`` raises
        :class:`~repro.errors.GraphValidationError` on any error-severity
        defect, the other policies run on the cleaned graph.  The
        :class:`~repro.resilience.validate.ValidationReport` is attached
        as ``result.validation``.  ``None`` (default) skips validation.
    budget:
        Optional :class:`~repro.core.budget.RunBudget`.  On breach the
        driver stops at the next iteration boundary and returns the
        best-so-far partition with ``result.degraded = True`` and
        ``result.degraded_reason`` set (a budget trace event and, for
        supervised runs, a ``budget-stop`` fault event are recorded) —
        it does not raise.
    cancel:
        Optional zero-argument callable polled at every iteration
        boundary.  When it returns truthy the run stops cooperatively:
        a final checkpoint is written (when checkpointing is on), and the
        best-so-far labels are returned with
        ``result.degraded_reason = "interrupted"``.  The CLI's
        SIGINT/SIGTERM handlers use this so a long ``repro detect`` exits
        with a resumable snapshot instead of an unhandled
        ``KeyboardInterrupt`` traceback.

    Returns
    -------
    LPAResult
        Final labels, per-iteration statistics, kernel counters, fault
        events (for supervised runs).
    """
    config = config or LPAConfig()
    validation = None
    if validate is not None:
        graph, validation = validate_graph(graph, validate)

    if config.degree_renumber and graph.num_vertices:
        return _run_renumbered(
            graph,
            config,
            engine=engine,
            initial_labels=initial_labels,
            initial_active=initial_active,
            warn_on_no_convergence=warn_on_no_convergence,
            resilience=resilience,
            profile=profile,
            tracer=tracer,
            budget=budget,
            cancel=cancel,
            validation=validation,
        )

    # Data-layout shrinking: 32-bit offsets/targets (and labels) whenever
    # the graph fits.  Values are unchanged — every kernel widens on the
    # fly — so labels and counters stay bit-identical to the wide layout.
    if config.compact_layout:
        graph = graph.with_compact_layout()

    if profile and tracer is None:
        tracer = Tracer()

    # Device-memory governor: every region below is reserved against the
    # budget before it is allocated, so an oversized run fails here with
    # a typed DeviceOomError (which the service's admission/degradation
    # ladder turns into backpressure or a smaller rung) instead of
    # producing a silently impossible footprint.  ``governor is None`` is
    # the default zero-overhead path — no ledger, no charging, no checks.
    governor = _make_governor(config, resilience, tracer)
    csr_charge = labels_charge = 0
    construction_rungs: list[str] = []
    if governor is not None:
        csr_charge = graph.memory_bytes()
        if not governor.would_fit(csr_charge) and not graph.is_compact:
            # Construction-time memory rung: drop to the 32-bit layout
            # even when the config left it wide — results stay
            # bit-identical, the topology halves.
            compacted = graph.with_compact_layout()
            if compacted is not graph:
                graph = compacted
                csr_charge = graph.memory_bytes()
                construction_rungs.append("compact-layout")
        governor.reserve("csr", csr_charge)
    eng = make_engine(graph, config, engine)
    if governor is not None:
        tables = getattr(eng, "tables", None)
        if tables is not None:
            governor.reserve("hashtable", tables.memory_bytes())
        # Hand the ledger to the engine: regrow/shrink move the
        # ``hashtable`` charge, arena growth charges its byte delta.
        eng.governor = governor
        if getattr(eng, "arena", None) is not None:
            eng.arena.governor = governor

    if tracer is not None:
        eng.tracer = tracer
    tracing = tracer is not None and tracer.enabled

    n = graph.num_vertices
    label_dtype: np.dtype = VERTEX_DTYPE
    if graph.is_compact and (config.compact_layout or construction_rungs):
        label_dtype = np.dtype(np.int32)
    if initial_labels is None:
        labels = np.arange(n, dtype=label_dtype)
    else:
        arr = np.asarray(initial_labels)
        if label_dtype != VERTEX_DTYPE and arr.shape[0]:
            lo, hi = int(arr.min()), int(arr.max())
            ii = np.iinfo(np.int32)
            if lo < ii.min or hi > ii.max:  # caller's ids need 64 bits
                label_dtype = VERTEX_DTYPE
        labels = arr.astype(label_dtype, copy=True)
        if labels.shape[0] != n:
            raise ConfigurationError(
                f"initial_labels length {labels.shape[0]} != num_vertices {n}"
            )
    if governor is not None:
        # Labels plus the one working copy every iteration makes (the
        # supervisor snapshot / Cross-Check ``previous``).
        labels_charge = 2 * labels.nbytes
        governor.reserve("labels", labels_charge)

    frontier = Frontier(
        graph, enabled=config.pruning, arena=getattr(eng, "arena", None)
    )
    if initial_active is not None:
        active = np.asarray(initial_active, dtype=np.int64)
        if active.shape[0] and (active.min() < 0 or active.max() >= n):
            raise ConfigurationError("initial_active vertex id out of range")
        frontier.flags[:] = 0
        frontier.flags[active] = 1

    supervisor: KernelSupervisor | None = None
    ckpt: CheckpointManager | None = None
    digest = ""
    start_iteration = 0
    resumed_from: int | None = None
    iterations: list[IterationStats] = []
    converged = n == 0

    if resilience is not None:
        supervisor = KernelSupervisor(eng, graph, config, resilience)
        if governor is not None:
            supervisor.governor = governor
            if supervisor.injector is not None:
                supervisor.injector.governor = governor
        if resilience.checkpoint_dir is not None:
            factory = resilience.checkpoint_factory or CheckpointManager
            ckpt = factory(
                resilience.checkpoint_dir,
                every=resilience.checkpoint_every,
                keep=resilience.checkpoint_keep,
            )
            digest = run_digest(graph, config, engine)
            if resilience.resume:
                state = ckpt.latest()
                if state is not None:
                    if state.digest != digest:
                        raise CheckpointError(
                            f"checkpoint in {resilience.checkpoint_dir} was "
                            f"written by a different run (digest "
                            f"{state.digest} != {digest}); refusing to resume"
                        )
                    labels[:] = state.labels
                    frontier.flags[:] = state.flags
                    start_iteration = state.iteration
                    resumed_from = state.iteration
                    iterations = list(state.stats)
                    converged = state.converged or converged
                    supervisor.restore_state(
                        injector_fires=state.injector_fires,
                        last_pl_fraction=state.last_pl_fraction,
                    )

    meter: BudgetMeter | None = None
    if budget is not None and not budget.unlimited:
        meter = BudgetMeter(budget, config.device)
    degraded_reason: str | None = None

    guard: IntegrityGuard | None = None
    if (
        supervisor is not None
        and resilience.integrity is not None
        and resilience.integrity.enabled
    ):
        guard = IntegrityGuard(
            graph, config, resilience.integrity, tracer=tracer, governor=governor
        )
        supervisor.guard = guard

    t0 = time.perf_counter()
    li = start_iteration
    if not converged:
        # A while (not a range) so the integrity guard can *rewind* ``li``
        # to a restored checkpoint when boundary corruption is detected.
        while not converged and li < config.max_iterations:
            pick_less = config.pick_less_active(li)
            cross_check = config.cross_check_active(li)

            previous = labels.copy() if cross_check else None
            if supervisor is not None:
                outcome = supervisor.move(
                    labels, frontier, pick_less=pick_less, iteration=li
                )
            else:
                outcome = eng.move(labels, frontier, pick_less=pick_less, iteration=li)

            reverted = 0
            if cross_check and previous is not None:
                reverted = cross_check_revert(labels, previous, outcome.changed_vertices)

            if guard is not None:
                # Record the committed label CRC for the boundary audit and
                # fold the accumulated audit/scrub/replay cost into this
                # iteration's counters, so profiles and the budget meter
                # price integrity as real modelled work.
                guard.note_move(labels)
                outcome.counters = outcome.counters + guard.drain()

            if tracing:
                tracer.emit(IterationEvent(
                    iteration=li,
                    changed=outcome.changed,
                    processed=outcome.processed,
                    pick_less=pick_less,
                    cross_check=cross_check,
                    reverted=reverted,
                ))

            iterations.append(
                IterationStats(
                    iteration=li,
                    changed=outcome.changed,
                    processed=outcome.processed,
                    pick_less=pick_less,
                    cross_check=cross_check,
                    reverted=reverted,
                    counters=outcome.counters,
                )
            )

            # Algorithm 1 line 9: converge only when PL was off this iteration.
            if not pick_less and n > 0 and outcome.changed / n < config.tolerance:
                converged = True

            # Budget check at the boundary: a breach stops the run with the
            # best-so-far partition instead of raising — LPA's partition at
            # any boundary is a valid (if unpolished) answer.  Every
            # iteration is charged — including the converging one, whose
            # work is just as real — but a converged run is complete, so
            # only unconverged runs can be degraded by a breach.
            if meter is not None:
                meter.charge(outcome.counters)
            if meter is not None and not converged:
                degraded_reason = meter.breached()
                if degraded_reason is not None:
                    if tracing:
                        tracer.emit(BudgetEvent(
                            iteration=li,
                            reason=degraded_reason,
                            wall_spent=meter.wall_spent,
                            gpu_spent=meter.gpu_spent,
                        ))
                    if supervisor is not None:
                        supervisor.report.append(FaultEvent(
                            iteration=li,
                            attempt=0,
                            fault="RunBudgetBreach",
                            detail=(
                                f"budget limit {degraded_reason!r} reached after "
                                f"{meter.iterations} iteration(s); returning "
                                f"best-so-far partition"
                            ),
                            action="budget-stop",
                            engine=eng.name,
                            status=LaunchStatus.COMPLETED,
                        ))

            # Cooperative cancellation (signal handlers, service shutdown):
            # checked at the boundary like a budget breach, and handled the
            # same way — final snapshot, best-so-far labels, no exception.
            if (
                degraded_reason is None
                and not converged
                and cancel is not None
                and cancel()
            ):
                degraded_reason = "interrupted"

            # Boundary integrity audit — *before* the checkpoint save, so a
            # corrupted state is never made durable.  The supervisor ladder
            # cannot replay a whole boundary; the repair rung here is a
            # rewind to the newest verified checkpoint (bounded by
            # ``max_rewinds``), after which the loop redoes the lost work.
            if guard is not None:
                try:
                    guard.at_boundary(labels, iteration=li)
                except CorruptionDetectedError:
                    state = ckpt.latest() if ckpt is not None else None
                    if (
                        state is not None
                        and state.digest == digest
                        and guard.rewinds < guard.config.max_rewinds
                    ):
                        labels[:] = state.labels
                        frontier.flags[:] = state.flags
                        iterations = list(state.stats)
                        converged = state.converged
                        degraded_reason = None
                        li = state.iteration
                        if supervisor is not None:
                            supervisor.restore_state(
                                injector_fires=state.injector_fires,
                                last_pl_fraction=state.last_pl_fraction,
                            )
                        guard.note_rewind(labels)
                        if tracing:
                            tracer.emit(IntegrityEvent(
                                iteration=li,
                                check="boundary",
                                action="rewind",
                                detail=(
                                    f"restored verified checkpoint at "
                                    f"iteration {li} "
                                    f"(rewind {guard.rewinds}/"
                                    f"{guard.config.max_rewinds})"
                                ),
                            ))
                        continue
                    raise

            # Snapshot at the iteration boundary: the state here is exactly
            # what a deterministic re-run would hold entering iteration
            # li + 1, so a killed run resumes bit-identically.  A budget
            # breach also snapshots, so a later resume can finish the work.
            if ckpt is not None and (
                ckpt.due(li + 1) or converged or degraded_reason is not None
            ):
                # Checkpoint staging is a real (transient) device buffer:
                # reserve it for the duration of the save.  Under memory
                # pressure the snapshot is *skipped* — a missing
                # checkpoint costs redone work on resume, never
                # correctness — and the skip is recorded, not silent.
                staging = 0
                skip_save = False
                if governor is not None:
                    staging = labels.nbytes + frontier.flags.nbytes
                    try:
                        governor.reserve("checkpoint", staging)
                    except DeviceOomError as exc:
                        staging = 0
                        skip_save = True
                        if supervisor is not None:
                            supervisor.report.append(FaultEvent(
                                iteration=li,
                                attempt=0,
                                fault=type(exc).__name__,
                                detail=f"checkpoint staging skipped: {exc}",
                                action="checkpoint-skip",
                                engine=eng.name,
                                status=LaunchStatus.COMPLETED,
                            ))
                if not skip_save:
                    try:
                        ckpt.save(
                            CheckpointState(
                                labels=labels,
                                flags=frontier.flags,
                                iteration=li + 1,
                                digest=digest,
                                converged=converged,
                                stats=iterations,
                                injector_fires=(
                                    supervisor.injector.fires
                                    if supervisor is not None
                                    and supervisor.injector is not None
                                    else 0
                                ),
                                last_pl_fraction=(
                                    supervisor.last_pl_fraction
                                    if supervisor is not None else None
                                ),
                            )
                        )
                    finally:
                        if staging:
                            governor.release("checkpoint", staging)

            if converged or degraded_reason is not None:
                break
            li += 1

    wall = time.perf_counter() - t0
    if not converged and degraded_reason is None:
        final_fraction = (
            iterations[-1].changed / n if iterations and n > 0 else 0.0
        )
        if tracing:
            tracer.emit(ConvergenceEvent(
                iteration=len(iterations) - 1 if iterations else 0,
                iterations=len(iterations),
                final_fraction=final_fraction,
                tolerance=config.tolerance,
            ))
        if warn_on_no_convergence:
            warnings.warn(
                ConvergenceWarning(
                    f"LPA hit max_iterations={config.max_iterations} without "
                    f"meeting tolerance {config.tolerance} "
                    f"(final changed fraction {final_fraction:.4f} after "
                    f"{len(iterations)} iteration(s))",
                    iterations=len(iterations),
                    final_fraction=final_fraction,
                ),
                stacklevel=2,
            )
    if labels.dtype != VERTEX_DTYPE:
        # Compact-layout runs compute in int32; the public result is
        # always the canonical wide dtype.
        labels = labels.astype(VERTEX_DTYPE)
    memory_stats: dict | None = None
    if governor is not None:
        # Return every region to the ledger before snapshotting the
        # stats: high-water marks survive release, and a non-zero final
        # ``in_use_bytes`` is a charging bug the tests can see.  The
        # engine/guard releases are idempotent, so a supervisor fallback
        # that already freed the engine's regions is fine.
        release = getattr(eng, "release_memory", None)
        if release is not None:
            release()
        if guard is not None:
            guard.release_memory()
        if labels_charge:
            governor.release("labels", labels_charge)
        if csr_charge:
            governor.release("csr", csr_charge)
        memory_stats = governor.stats()
        memory_stats["construction_rungs"] = list(construction_rungs)
    result = LPAResult(
        labels=labels,
        iterations=iterations,
        converged=converged,
        config=config,
        wall_seconds=wall,
        algorithm=f"nu-lpa[{eng.name}]",
        fault_events=list(supervisor.events) if supervisor is not None else [],
        resumed_from=resumed_from,
        degraded_reason=degraded_reason,
        validation=validation,
        trace=tracer,
        integrity=guard.stats() if guard is not None else None,
        memory=memory_stats,
    )
    if profile:
        # Deferred import: repro.observe.profile pulls in the perf stack
        # (and through it the baselines), which imports this module.
        from repro.observe.profile import build_profile

        result.profile = build_profile(result, device=config.device, tracer=tracer)
    return result


def _run_renumbered(
    graph: CSRGraph,
    config: LPAConfig,
    *,
    engine: str,
    initial_labels,
    initial_active,
    warn_on_no_convergence: bool,
    resilience,
    profile: bool,
    tracer,
    budget,
    cancel,
    validation,
) -> LPAResult:
    """``config.degree_renumber``: run on the degree-sorted graph.

    Renumbering vertices by ascending degree makes each wave's adjacency
    gathers walk near-contiguous CSR ranges (the two-kernel partition is a
    *slice* of the id space instead of a scatter), at the cost of one up-
    front permutation.  The returned labels are mapped back to the original
    numbering, and because default labels are vertex ids the label *values*
    are permuted too — the partition is identical to a non-renumbered run
    up to this renaming, but not bit-identical (documented on the flag).

    ``initial_labels`` is rejected: caller-supplied label values are opaque
    (they need not be vertex ids), so there is no faithful way to renumber
    them and un-renumber the result.
    """
    if initial_labels is not None:
        raise ConfigurationError(
            "degree_renumber cannot be combined with initial_labels: "
            "custom label values are opaque and cannot be renumbered"
        )
    n = graph.num_vertices
    sorted_graph, perm = graph.sorted_by_degree()
    inner_config = replace(config, degree_renumber=False)

    remapped_active = None
    if initial_active is not None:
        active = np.asarray(initial_active, dtype=np.int64)
        if active.shape[0] and (active.min() < 0 or active.max() >= n):
            raise ConfigurationError("initial_active vertex id out of range")
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n, dtype=np.int64)
        remapped_active = inverse[active]

    result = nu_lpa(
        sorted_graph,
        inner_config,
        engine=engine,
        initial_active=remapped_active,
        warn_on_no_convergence=warn_on_no_convergence,
        resilience=resilience,
        profile=profile,
        tracer=tracer,
        budget=budget,
        cancel=cancel,
    )
    # New vertex k is old vertex perm[k]; a label is itself a (new) vertex
    # id, so both the positions and the values map through perm.
    restored = np.empty(n, dtype=VERTEX_DTYPE)
    restored[perm] = perm[result.labels]
    result.labels = restored
    result.validation = validation
    return result
