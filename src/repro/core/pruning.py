"""Vertex pruning: the "unprocessed" frontier of Algorithm 1.

Every vertex starts unprocessed.  Processing marks it done; when a vertex
changes label it re-marks all its neighbours unprocessed ("a vertex assigns
its neighbors for processing upon label change").  The paper uses an 8-bit
flag vector rather than booleans in its C++ code; we keep ``uint8`` so the
memory model accounts a byte per flag.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import FLAG_DTYPE

__all__ = ["Frontier"]


class Frontier:
    """Unprocessed-vertex tracking with CSR-vectorised neighbour marking."""

    def __init__(self, graph: CSRGraph, *, enabled: bool = True) -> None:
        self.graph = graph
        self.enabled = enabled
        self._flags = np.ones(graph.num_vertices, dtype=FLAG_DTYPE)

    @property
    def flags(self) -> np.ndarray:
        """The raw uint8 flag vector (1 = unprocessed)."""
        return self._flags

    def active_vertices(self) -> np.ndarray:
        """Ascending ids of unprocessed vertices.

        With pruning disabled every vertex is active every iteration
        (the flags still track state for statistics).
        """
        if not self.enabled:
            return np.arange(self.graph.num_vertices, dtype=np.int64)
        return np.flatnonzero(self._flags).astype(np.int64)

    def mark_processed(self, vertices: np.ndarray) -> None:
        """Clear the flags of ``vertices``."""
        self._flags[vertices] = 0

    def mark_neighbors_unprocessed(self, vertices: np.ndarray) -> int:
        """Set the flags of all neighbours of ``vertices``; returns arcs walked."""
        if vertices.shape[0] == 0:
            return 0
        offsets = self.graph.offsets
        degrees = self.graph.degrees[vertices]
        total = int(degrees.sum())
        if total == 0:
            return 0
        # Gather the concatenated adjacency slices of `vertices`.
        starts = offsets[vertices]
        seg_start_pos = np.zeros(vertices.shape[0], dtype=np.int64)
        np.cumsum(degrees[:-1], out=seg_start_pos[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(seg_start_pos, degrees)
        edge_idx = np.repeat(starts, degrees) + within
        self._flags[self.graph.targets[edge_idx]] = 1
        return total

    def num_active(self) -> int:
        """Current unprocessed count."""
        if not self.enabled:
            return self.graph.num_vertices
        return int(self._flags.sum())
