"""Vertex pruning: the "unprocessed" frontier of Algorithm 1.

Every vertex starts unprocessed.  Processing marks it done; when a vertex
changes label it re-marks all its neighbours unprocessed ("a vertex assigns
its neighbors for processing upon label change").  The paper uses an 8-bit
flag vector rather than booleans in its C++ code; we keep ``uint8`` so the
memory model accounts a byte per flag.

The frontier is on the per-iteration hot path (one ``active_vertices`` per
move, one ``mark_neighbors_unprocessed`` per wave), so it shares the
engine's :class:`~repro.perf.workspace.WorkspaceArena` when given one —
its slots use the ``fr.`` prefix so they never alias the engine's.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.graph.csr import CSRGraph
from repro.perf.workspace import WorkspaceArena, compact, iota, take
from repro.types import FLAG_DTYPE

__all__ = ["Frontier"]


class Frontier:
    """Unprocessed-vertex tracking with CSR-vectorised neighbour marking."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        enabled: bool = True,
        arena: WorkspaceArena | None = None,
    ) -> None:
        self.graph = graph
        self.enabled = enabled
        self.arena = arena
        self._flags = np.ones(graph.num_vertices, dtype=FLAG_DTYPE)

    @property
    def flags(self) -> np.ndarray:
        """The raw uint8 flag vector (1 = unprocessed)."""
        return self._flags

    def active_vertices(self) -> np.ndarray:
        """Ascending ids of unprocessed vertices.

        With pruning disabled every vertex is active every iteration
        (the flags still track state for statistics).  With an arena the
        result is a scratch view, valid until the next call.
        """
        n = self.graph.num_vertices
        if not self.enabled:
            return iota(self.arena, n)
        count = int(np.count_nonzero(self._flags))
        # Flags hold only 0/1, so a bool reinterpret is a valid mask.
        return compact(
            self.arena, "fr.active", self._flags.view(bool), count,
            iota(self.arena, n),
        )

    def mark_processed(self, vertices: np.ndarray) -> None:
        """Clear the flags of ``vertices``."""
        self._flags[vertices] = 0

    def mark_neighbors_unprocessed(self, vertices: np.ndarray) -> int:
        """Set the flags of all neighbours of ``vertices``; returns arcs walked."""
        if vertices.shape[0] == 0:
            return 0
        gather = gather_edges(
            self.graph, vertices, self.arena, prefix="fr", need_rank=False
        )
        total = gather.num_edges
        if total == 0:
            return 0
        targets = take(self.arena, "fr.tg", total, self.graph.targets.dtype)
        self.graph.targets.take(gather.edge_index, out=targets, mode="clip")
        self._flags[targets] = 1
        return total

    def num_active(self) -> int:
        """Current unprocessed count."""
        if not self.enabled:
            return self.graph.num_vertices
        return int(self._flags.sum())
