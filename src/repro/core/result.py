"""Result containers for LPA runs.

An :class:`LPAResult` carries the labels plus everything an experiment
needs afterwards: per-iteration change counts, the summed
:class:`~repro.gpu.metrics.KernelCounters` (for the cost model), wall time
of the simulation itself, and convergence status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LPAConfig
from repro.gpu.metrics import KernelCounters

__all__ = ["IterationStats", "LPAResult"]


@dataclass
class IterationStats:
    """What happened in one LPA iteration."""

    iteration: int
    #: ΔN — vertices that adopted a new label.
    changed: int
    #: Vertices actually processed (pruning skips the rest).
    processed: int
    #: Whether Pick-Less mode was active.
    pick_less: bool
    #: Whether Cross-Check ran after the iteration.
    cross_check: bool
    #: Label changes reverted by Cross-Check (0 when CC inactive).
    reverted: int = 0
    counters: KernelCounters = field(default_factory=KernelCounters)


@dataclass
class LPAResult:
    """Outcome of a ν-LPA (or baseline) run."""

    #: Final community label per vertex.
    labels: np.ndarray
    #: Per-iteration statistics, in order.
    iterations: list[IterationStats]
    #: Whether the tolerance criterion was met within max_iterations.
    converged: bool
    config: LPAConfig | None = None
    #: Wall-clock seconds of the (simulated) run on the host machine.
    wall_seconds: float = 0.0
    #: Name of the algorithm/implementation that produced this result.
    algorithm: str = "nu-lpa"
    #: :class:`~repro.resilience.report.FaultEvent` records from the kernel
    #: supervisor; empty for unsupervised runs.
    fault_events: list = field(default_factory=list)
    #: Iteration the run was resumed from (``None`` = started fresh).
    resumed_from: int | None = None
    #: Why the run stopped early with a best-so-far partition (a
    #: :class:`~repro.core.budget.RunBudget` breach reason: ``wall-clock``,
    #: ``gpu-seconds``, or ``iterations``); ``None`` when the run completed
    #: normally.
    degraded_reason: str | None = None
    #: :class:`~repro.resilience.validate.ValidationReport` from input
    #: validation when the run was invoked with ``validate=``; ``None``
    #: otherwise.
    validation: object | None = None
    #: :class:`~repro.observe.profile.RunProfile` built when the run was
    #: invoked with ``profile=True``; ``None`` otherwise.
    profile: object | None = None
    #: The :class:`~repro.observe.trace.Tracer` that recorded the run
    #: (``None`` for untraced runs).
    trace: object | None = None
    #: Cumulative ABFT audit statistics from the
    #: :class:`~repro.integrity.guard.IntegrityGuard` (scrubs, repairs,
    #: shadow replays, violations, rewinds, ECC counters); ``None`` when
    #: the run had no integrity config.
    integrity: dict | None = None
    #: :meth:`~repro.gpu.governor.MemoryGovernor.stats` ledger snapshot
    #: (budget, high-water marks per region, OOM/shrink counters) plus
    #: the ``construction_rungs`` taken to fit the budget; ``None`` when
    #: the run had no memory governor.
    memory: dict | None = None

    @property
    def num_iterations(self) -> int:
        """Iterations performed."""
        return len(self.iterations)

    @property
    def total_counters(self) -> KernelCounters:
        """Sum of all iterations' kernel counters."""
        total = KernelCounters()
        for it in self.iterations:
            total += it.counters
        return total

    @property
    def changed_history(self) -> np.ndarray:
        """ΔN per iteration, for convergence plots."""
        return np.asarray([it.changed for it in self.iterations], dtype=np.int64)

    @property
    def degraded(self) -> bool:
        """Whether the result is a degraded (but valid) answer.

        True when any iteration was completed by the fallback engine, or
        when a :class:`~repro.core.budget.RunBudget` breach stopped the run
        with its best-so-far partition (see :attr:`degraded_reason`).
        """
        return self.degraded_reason is not None or any(
            ev.action == "fallback" for ev in self.fault_events
        )

    def num_communities(self) -> int:
        """Distinct labels in the final assignment."""
        return int(np.unique(self.labels).shape[0])
