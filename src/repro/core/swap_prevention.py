"""Symmetry breaking for community swaps (paper Section 4.1).

Lockstep SIMT execution makes swap cycles common: two vertices that are
each other's best move read each other's *old* labels simultaneously and
trade places forever.  The paper studies two mitigations:

* **Pick-Less (PL)** — during designated iterations a vertex may only adopt
  a label *smaller* than its current one.  Applied inside the move kernel;
  implemented in the engines via :func:`pick_less_filter`.
* **Cross-Check (CC)** — after designated iterations, every changed vertex
  verifies its new community is "good" (the leader vertex ``c*`` itself
  carries label ``c*``) and otherwise reverts — atomically, so that of a
  swapped pair only one member ends up reverting.  Implemented here in
  :func:`cross_check_revert`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pick_less_filter", "cross_check_revert"]


def pick_less_filter(
    current: np.ndarray,
    proposed: np.ndarray,
    pick_less: bool,
    *,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Adoption mask of Algorithm 1 line 27.

    ``c* != C[i] and (not pick-less or c* <= C[i])`` — with PL active, only
    strictly-smaller labels pass (equality is excluded by the first
    clause).

    ``out`` receives the mask and ``scratch`` (same shape, bool) holds the
    PL comparison; the engines pass arena views here so the hot path stays
    allocation-free.  Omit both for the allocating behaviour.
    """
    changed = np.not_equal(proposed, current, out=out)
    if not pick_less:
        return changed
    le = np.less_equal(proposed, current, out=scratch)
    return np.logical_and(changed, le, out=changed)


def cross_check_revert(
    labels: np.ndarray,
    previous: np.ndarray,
    changed_vertices: np.ndarray,
) -> int:
    """CC pass: revert "bad" community changes; returns the revert count.

    A change to community ``c*`` is good iff ``labels[c*] == c*`` (all
    members have joined a leader who is itself in the community).  Reverts
    are applied in ascending vertex order with *re-evaluation against the
    updated labels*, which models the paper's atomic revert: when a swapped
    pair ``(i, j)`` are both bad, reverting ``i`` to its previous label
    makes ``j``'s membership good again (``j`` had adopted ``i``'s old
    label), so only one member of the pair reverts and the symmetry breaks.

    ``labels`` is modified in place.
    """
    changed_vertices = np.asarray(changed_vertices)
    if changed_vertices.shape[0] == 0:
        return 0
    # Vectorised prefilter: candidates whose current leader check fails.
    cand = changed_vertices[labels[labels[changed_vertices]] != labels[changed_vertices]]
    reverted = 0
    # Sequential pass over the (typically short) bad list; order matters.
    for v in np.sort(cand):
        c_star = labels[v]
        if labels[c_star] != c_star:
            labels[v] = previous[v]
            reverted += 1
    return reverted
