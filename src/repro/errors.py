"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from misuse of NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "HashtableFullError",
    "KernelLaunchError",
    "ConfigurationError",
    "DatasetError",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """A graph file could not be parsed (bad header, ragged row, ...)."""


class GraphConstructionError(ReproError):
    """Edge data passed to a builder is structurally invalid.

    Examples: negative vertex ids, mismatched ``src``/``dst`` lengths, or a
    requested vertex count smaller than the largest endpoint.
    """


class HashtableFullError(ReproError):
    """An open-addressing insert exhausted ``MAX_RETRIES`` probes.

    The paper sizes every per-vertex table so this "is avoided by ensuring
    the hashtable has sufficient capacity for all entries"; hitting this
    error therefore indicates a sizing bug rather than expected behaviour.
    """


class KernelLaunchError(ReproError):
    """A simulated kernel was launched with an invalid configuration."""


class ConfigurationError(ReproError):
    """An :class:`repro.core.config.LPAConfig` field is out of range."""


class DatasetError(ReproError):
    """A dataset name is unknown or its generator parameters are invalid."""


class ConvergenceWarning(UserWarning):
    """LPA hit ``max_iterations`` without meeting the tolerance."""
