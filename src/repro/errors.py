"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from misuse of NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "GraphValidationError",
    "HashtableFullError",
    "KernelLaunchError",
    "KernelTimeoutError",
    "TransientKernelError",
    "EccError",
    "DeviceOomError",
    "InvariantViolation",
    "IntegrityError",
    "CorruptionDetectedError",
    "ResilienceExhaustedError",
    "CheckpointError",
    "CheckpointResumeError",
    "CheckpointNotFoundError",
    "CheckpointCorruptError",
    "ConfigurationError",
    "DatasetError",
    "SchemaValidationError",
    "StreamError",
    "DeltaLogCorruptError",
    "DeltaValidationError",
    "SnapshotError",
    "SnapshotCorruptError",
    "SnapshotNotFoundError",
    "ServiceOverloaded",
    "MemoryPressure",
    "DuplicateJobError",
    "JobNotFoundError",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """A graph file could not be parsed (bad header, ragged row, ...)."""


class GraphConstructionError(ReproError):
    """Edge data passed to a builder is structurally invalid.

    Examples: negative vertex ids, mismatched ``src``/``dst`` lengths, or a
    requested vertex count smaller than the largest endpoint.
    """


class GraphValidationError(ReproError):
    """A graph failed validation under the ``strict`` policy.

    Raised by :func:`repro.resilience.validate.validate_graph`; carries the
    machine-readable :class:`~repro.resilience.validate.ValidationReport`
    listing every issue found in :attr:`report`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The :class:`~repro.resilience.validate.ValidationReport`.
        self.report = report


class HashtableFullError(ReproError):
    """An open-addressing insert exhausted ``MAX_RETRIES`` probes.

    The paper sizes every per-vertex table so this "is avoided by ensuring
    the hashtable has sufficient capacity for all entries"; hitting this
    error therefore indicates a sizing bug rather than expected behaviour.
    """


class KernelLaunchError(ReproError):
    """A simulated kernel was launched with an invalid configuration."""


class KernelTimeoutError(KernelLaunchError):
    """A simulated kernel exceeded its watchdog budget and was killed.

    Real GPUs kill kernels that hold an SM past the driver watchdog; the
    fault injector raises this to model that class of failure.  The kernel
    supervisor treats it as retryable.
    """


class TransientKernelError(ReproError):
    """A transient device fault (e.g. an ``atomicCAS`` retry storm).

    Models faults that clear on re-execution: contention storms, spurious
    ECC corrections, scheduler hiccups.  The kernel supervisor retries
    these with backoff before descending the degradation ladder.
    """


class EccError(TransientKernelError):
    """A SEC-DED scrub found an uncorrectable (double-bit) memory error.

    Single-bit upsets are corrected in place and only counted; a double-bit
    error within one ECC word is *detected but uncorrectable* — the device
    poisons the page and the kernel must be replayed from clean state.  The
    supervisor treats this like any transient fault: restore the pre-move
    snapshot and retry (the scrub model redraws its upsets per attempt).
    """


class DeviceOomError(TransientKernelError):
    """A modeled device-memory reservation exceeded the effective budget.

    Raised by :class:`repro.gpu.governor.MemoryGovernor` when a
    ``reserve`` would push the allocation ledger past
    ``global_memory_bytes`` (minus the reserved fraction), and by the
    ``"oom"`` fault kind when an injected budget shrink leaves the
    ledger over budget.  Subclasses :class:`TransientKernelError` so
    the kernel supervisor (and the service's job-level retry
    classifier) treat it as retryable: memory pressure is relieved by
    the ladder's memory rungs (compact layout, smaller hashtables,
    engine fallback, coarsening), not by giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        region: str = "",
        requested_bytes: int = 0,
        in_use_bytes: int = 0,
        budget_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        #: Ledger region of the failed reservation (``""`` for a shrink).
        self.region = region
        #: Bytes the failed reservation asked for (0 for a shrink).
        self.requested_bytes = requested_bytes
        #: Ledger total at the time of the failure.
        self.in_use_bytes = in_use_bytes
        #: Effective budget the reservation was checked against.
        self.budget_bytes = budget_bytes


class InvariantViolation(ReproError):
    """A post-kernel invariant check failed (suspected silent corruption).

    Raised by :mod:`repro.resilience.invariants` when a supervised move
    produces labels outside ``[0, |V|)`` or non-finite hashtable values.
    The supervisor restores the pre-move snapshot and retries.
    """


class IntegrityError(InvariantViolation):
    """An ABFT integrity guard detected corruption a cheap invariant missed.

    Raised by :class:`repro.integrity.guard.IntegrityGuard` when a CSR
    checksum, label-conservation audit, hashtable spot-audit, or shadow
    replay disagrees with the primary computation.  Subclasses
    :class:`InvariantViolation` so the existing supervisor ladder
    (retry → regrow → fallback → abort) applies unchanged.
    """


class CorruptionDetectedError(IntegrityError):
    """Corruption detected at an iteration boundary, outside any one move.

    The supervisor ladder cannot help here — the committed label state
    itself is suspect — so the driver rewinds to the last good checkpoint
    (when one exists and the rewind budget allows) before re-raising.
    """


class ResilienceExhaustedError(ReproError):
    """Every rung of the degradation ladder failed for one iteration.

    Carries the structured :class:`~repro.resilience.report.FaultReport`
    describing each attempt in :attr:`report`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The :class:`~repro.resilience.report.FaultReport` of the run.
        self.report = report


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or matched to this run."""


class CheckpointResumeError(CheckpointError):
    """A resume was requested in a way that can never succeed.

    The misuse class (e.g. ``--resume`` without ``--checkpoint-dir``):
    the request itself is malformed, before any directory is even looked
    at.  Gets its own CLI exit code (3) so scripts can tell "fix the
    invocation" from "nothing to resume" (4) and "checkpoints damaged"
    (5).
    """


class CheckpointNotFoundError(CheckpointError):
    """A resume was requested but the directory holds no checkpoint at all.

    Raised by :func:`repro.resilience.checkpoint.preflight_resume` when the
    checkpoint directory is missing or contains no ``ckpt-*.npz`` file —
    distinct from :class:`CheckpointCorruptError` so callers (and the CLI's
    exit codes) can tell "nothing was ever written" from "everything that
    was written is damaged".
    """


class CheckpointCorruptError(CheckpointError):
    """Every checkpoint generation in a directory failed verification.

    Carries the per-generation failure reasons in :attr:`reasons` (newest
    first), mirroring what ``repro ckpt fsck`` would print.
    """

    def __init__(self, message: str, reasons: list[str] | None = None) -> None:
        super().__init__(message)
        #: Why each generation was rejected, newest first.
        self.reasons = reasons or []


class ConfigurationError(ReproError):
    """An :class:`repro.core.config.LPAConfig` field is out of range."""


class DatasetError(ReproError):
    """A dataset name is unknown or its generator parameters are invalid."""


class SchemaValidationError(ReproError):
    """A profile/bench JSON document does not match its declared schema.

    Raised by :mod:`repro.observe.schema`; the message names the offending
    field path (e.g. ``bench.graphs[3].counters.probes``).
    """


class StreamError(ReproError):
    """A streaming-graph pipeline operation failed (log, epoch, or replay)."""


class DeltaLogCorruptError(StreamError):
    """A delta-log segment is damaged beyond its recoverable torn tail.

    A torn *tail* — the last frames of the newest segment, killed mid-
    append before the fsync — is expected and silently truncated on open.
    This error means something stronger: a CRC-invalid frame in the middle
    of the committed record stream, where truncation would silently drop
    acknowledged batches.  Carries the per-segment findings in
    :attr:`reasons`, mirroring ``repro stream fsck``.
    """

    def __init__(self, message: str, reasons: list[str] | None = None) -> None:
        super().__init__(message)
        #: Per-segment damage descriptions, in segment order.
        self.reasons = reasons or []


class DeltaValidationError(StreamError):
    """A delta batch failed validation under the ``strict`` policy.

    Carries the machine-readable
    :class:`~repro.stream.delta.DeltaValidationReport` in :attr:`report`,
    the same contract :class:`GraphValidationError` keeps for whole-graph
    sweeps.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The :class:`~repro.stream.delta.DeltaValidationReport`.
        self.report = report


class SnapshotError(ReproError):
    """A query snapshot could not be written, read, or verified."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed its structural or CRC verification.

    Raised by :meth:`repro.service.read.Snapshot.open` /
    :meth:`~repro.service.read.Snapshot.verify`; the catalog's
    :meth:`~repro.service.read.SnapshotCatalog.latest` catches it and
    falls back generation-by-generation past the damage, recording each
    skipped file.
    """


class SnapshotNotFoundError(SnapshotError):
    """A job has no readable snapshot in the catalog.

    Distinct from :class:`SnapshotCorruptError` so callers can tell
    "nothing was ever published" from "everything published is damaged"
    (the message says which of the two happened).
    """


class ServiceOverloaded(ReproError):
    """The job service refused a submission (backpressure).

    Raised by :meth:`repro.service.DetectionService.submit` when the bounded
    admission queue is full (``reason="queue-full"``) or the submitting
    tenant is at its in-flight cap (``reason="tenant-cap"``).  The
    :attr:`retry_after_s` hint tells the client how long to wait before
    resubmitting — derived from the observed modelled job latency and the
    current queue depth, so it shrinks as the backlog drains.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue-full",
        retry_after_s: float = 1.0,
        queue_depth: int = 0,
    ) -> None:
        super().__init__(message)
        #: ``"queue-full"`` or ``"tenant-cap"``.
        self.reason = reason
        #: Suggested client wait before resubmitting, in seconds.
        self.retry_after_s = retry_after_s
        #: Pending jobs at rejection time.
        self.queue_depth = queue_depth


class MemoryPressure(ReproError):
    """The job service refused a submission for memory reasons.

    Raised by :meth:`repro.service.DetectionService.submit` when the
    admission-time footprint estimate of a job (graph + engine tables +
    workspace + integrity overhead) exceeds the device memory budget:
    no degradation rung can make the job fit, so admitting it would
    only burn queue capacity on a guaranteed
    :class:`DeviceOomError`.  Carries both sides of the comparison so
    a client can right-size the resubmission.
    """

    def __init__(
        self,
        message: str,
        *,
        estimate_bytes: int = 0,
        budget_bytes: int = 0,
        retry_after_s: float = 1.0,
        queue_depth: int = 0,
    ) -> None:
        super().__init__(message)
        #: Analytic peak-footprint estimate of the rejected job.
        self.estimate_bytes = estimate_bytes
        #: Effective device budget the estimate was checked against.
        self.budget_bytes = budget_bytes
        #: Suggested client wait before resubmitting, in seconds.
        self.retry_after_s = retry_after_s
        #: Pending jobs at rejection time.
        self.queue_depth = queue_depth


class DuplicateJobError(ReproError):
    """A job id was submitted twice.

    Job ids are the service's idempotency key: crash recovery replays the
    journal by id, so admitting a second job under an existing id could
    silently drop or double-run work.
    """


class JobNotFoundError(ReproError):
    """A job id is unknown to the service (never admitted, or evicted)."""


class ConvergenceWarning(UserWarning):
    """LPA hit ``max_iterations`` without meeting the tolerance.

    Carries the facts a log line or a service's ``degraded_reason`` needs
    to say *why* the run stopped: the number of iterations performed and
    the changed-vertex fraction of the final iteration (``None`` when the
    warning was constructed without them, e.g. by third-party code).
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int | None = None,
        final_fraction: float | None = None,
    ) -> None:
        super().__init__(message)
        #: Iterations performed before the cap stopped the run.
        self.iterations = iterations
        #: Changed-vertex fraction of the last iteration (vs tolerance τ).
        self.final_fraction = final_fraction
