"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from misuse of NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "GraphValidationError",
    "HashtableFullError",
    "KernelLaunchError",
    "KernelTimeoutError",
    "TransientKernelError",
    "InvariantViolation",
    "ResilienceExhaustedError",
    "CheckpointError",
    "ConfigurationError",
    "DatasetError",
    "SchemaValidationError",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """A graph file could not be parsed (bad header, ragged row, ...)."""


class GraphConstructionError(ReproError):
    """Edge data passed to a builder is structurally invalid.

    Examples: negative vertex ids, mismatched ``src``/``dst`` lengths, or a
    requested vertex count smaller than the largest endpoint.
    """


class GraphValidationError(ReproError):
    """A graph failed validation under the ``strict`` policy.

    Raised by :func:`repro.resilience.validate.validate_graph`; carries the
    machine-readable :class:`~repro.resilience.validate.ValidationReport`
    listing every issue found in :attr:`report`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The :class:`~repro.resilience.validate.ValidationReport`.
        self.report = report


class HashtableFullError(ReproError):
    """An open-addressing insert exhausted ``MAX_RETRIES`` probes.

    The paper sizes every per-vertex table so this "is avoided by ensuring
    the hashtable has sufficient capacity for all entries"; hitting this
    error therefore indicates a sizing bug rather than expected behaviour.
    """


class KernelLaunchError(ReproError):
    """A simulated kernel was launched with an invalid configuration."""


class KernelTimeoutError(KernelLaunchError):
    """A simulated kernel exceeded its watchdog budget and was killed.

    Real GPUs kill kernels that hold an SM past the driver watchdog; the
    fault injector raises this to model that class of failure.  The kernel
    supervisor treats it as retryable.
    """


class TransientKernelError(ReproError):
    """A transient device fault (e.g. an ``atomicCAS`` retry storm).

    Models faults that clear on re-execution: contention storms, spurious
    ECC corrections, scheduler hiccups.  The kernel supervisor retries
    these with backoff before descending the degradation ladder.
    """


class InvariantViolation(ReproError):
    """A post-kernel invariant check failed (suspected silent corruption).

    Raised by :mod:`repro.resilience.invariants` when a supervised move
    produces labels outside ``[0, |V|)`` or non-finite hashtable values.
    The supervisor restores the pre-move snapshot and retries.
    """


class ResilienceExhaustedError(ReproError):
    """Every rung of the degradation ladder failed for one iteration.

    Carries the structured :class:`~repro.resilience.report.FaultReport`
    describing each attempt in :attr:`report`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The :class:`~repro.resilience.report.FaultReport` of the run.
        self.report = report


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or matched to this run."""


class ConfigurationError(ReproError):
    """An :class:`repro.core.config.LPAConfig` field is out of range."""


class DatasetError(ReproError):
    """A dataset name is unknown or its generator parameters are invalid."""


class SchemaValidationError(ReproError):
    """A profile/bench JSON document does not match its declared schema.

    Raised by :mod:`repro.observe.schema`; the message names the offending
    field path (e.g. ``bench.graphs[3].counters.probes``).
    """


class ConvergenceWarning(UserWarning):
    """LPA hit ``max_iterations`` without meeting the tolerance."""
