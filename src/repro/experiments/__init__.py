"""Experiment runners regenerating every table and figure of the paper.

Each module owns one artefact; :mod:`repro.experiments.registry` maps
experiment ids (``T1``, ``F1``, ``F3``-``F7``, ablations ``A1``-``A2``) to
runners.  The ``benchmarks/`` directory wraps these runners in
pytest-benchmark entries; they can also be run directly::

    python -m repro.experiments F6 --scale 0.5
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
