"""CLI: ``python -m repro.experiments F6 --scale 0.5 --seed 42``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate a paper table/figure from the reproduction.",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment id(s): {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="stand-in size multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="restrict to these Table-1 graph names")
    parser.add_argument("--plot", action="store_true",
                        help="render figure values as ASCII bar charts")
    args = parser.parse_args(argv)

    ids = list(EXPERIMENTS) if args.experiment == ["all"] else args.experiment
    for exp_id in ids:
        result = run_experiment(
            exp_id, scale=args.scale, seed=args.seed, datasets=args.datasets
        )
        print(result)
        if args.plot:
            _plot(result)
        print()
    return 0


def _plot(result) -> None:
    """Bar-chart any flat numeric dicts in the experiment's values."""
    from repro.perf.plotting import bar_chart

    for key, values in result.values.items():
        if isinstance(values, dict) and values and all(
            isinstance(v, (int, float)) for v in values.values()
        ):
            print()
            print(bar_chart(
                {str(k): float(v) for k, v in values.items()},
                title=f"{result.experiment_id} {key}:",
            ))


if __name__ == "__main__":
    sys.exit(main())
