"""A1/A2 — ablations beyond the paper's figures.

DESIGN.md calls out two design choices the paper fixes without a figure of
their own; these ablations quantify them:

* **A1 — vertex pruning**: the unprocessed-frontier optimisation (Section
  4, feature 4).  Off, every iteration rescans all vertices.
* **A2 — tolerance τ**: the paper picks τ = 0.05 and remarks (in its
  NetworKit discussion) that loose tolerances trade negligible modularity
  for much faster convergence; the sweep makes that trade-off visible.
"""

from __future__ import annotations

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.graph.datasets import get_dataset
from repro.metrics import modularity
from repro.perf.model import estimate_lpa_result_seconds, extrapolation_ratios
from repro.perf.report import RelativeSeries, format_series, format_table

__all__ = ["run_pruning", "run_tolerance", "run_shared_memory", "TOLERANCES"]

TOLERANCES = [1e-5, 1e-3, 1e-2, 0.05, 0.1]


def run_pruning(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """A1: pruning on vs off.

    ``values``: ``{"runtime": {"pruning"|"no-pruning": mean_rel},
    "modularity_gap": float}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    series: list[RelativeSeries] = []
    quality: dict[str, dict[str, float]] = {}
    for label, enabled in (("pruning", True), ("no-pruning", False)):
        config = LPAConfig(pruning=enabled)
        times: dict[str, float] = {}
        quals: dict[str, float] = {}
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
            quals[name] = modularity(graph, result.labels)
        series.append(RelativeSeries(label, times))
        quality[label] = quals

    ref = series[0]
    rel = {s.label: s.mean_relative(ref) for s in series}
    gap = max(
        abs(quality["pruning"][n] - quality["no-pruning"][n])
        for n in quality["pruning"]
    )
    table = format_series(
        series, "pruning", value_name="runtime",
        title="A1: vertex pruning ablation (reference = pruning on)",
    )
    return ExperimentResult(
        experiment_id="A1",
        title="Vertex pruning ablation",
        table=table,
        values={"runtime": rel, "modularity_gap": gap},
        notes=[f"disabling pruning costs {rel['no-pruning']:.2f}x runtime"],
    )


def run_shared_memory(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """A3: shared-memory hashtables for low-degree vertices.

    The paper "experimented with shared memory-based hashtables for
    low-degree vertices, but saw little to no performance gain" — only
    vertices whose 2·D-slot table fits the per-thread shared-memory slice
    (degree ≲ 5 on an A100) qualify, and such vertices generate little
    table traffic to begin with.

    ``values``: ``{"runtime": {"global"|"shared": mean_rel}}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    series: list[RelativeSeries] = []
    for label, enabled in (("global", False), ("shared", True)):
        config = LPAConfig(shared_memory_tables=enabled)
        times: dict[str, float] = {}
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
        series.append(RelativeSeries(label, times))

    ref = series[0]
    rel = {s.label: s.mean_relative(ref) for s in series}
    table = format_series(
        series, "global", value_name="runtime",
        title="A3: shared-memory hashtables for low-degree vertices "
              "(reference = all-global, the paper's final design)",
    )
    return ExperimentResult(
        experiment_id="A3",
        title="Shared-memory hashtable ablation",
        table=table,
        values={"runtime": rel},
        notes=[
            f"shared-memory variant is {rel['shared']:.3f}x the global "
            "runtime (paper: little to no gain)"
        ],
    )


def run_tolerance(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """A2: tolerance sweep.

    ``values``: ``{tau: {"runtime_rel", "modularity", "iterations"}}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    results: dict[float, dict[str, float]] = {}
    base_time: float | None = None
    rows = []
    for tau in TOLERANCES:
        config = LPAConfig(tolerance=tau)
        total_time = 0.0
        total_q = 0.0
        total_iters = 0
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            total_time += estimate_lpa_result_seconds(result, ratios)
            total_q += modularity(graph, result.labels)
            total_iters += result.num_iterations
        mean_q = total_q / len(graphs)
        if base_time is None:
            base_time = total_time
        results[tau] = {
            "runtime_rel": total_time / base_time,
            "modularity": mean_q,
            "iterations": total_iters / len(graphs),
        }
        rows.append(
            [
                f"{tau:g}",
                f"{total_time / base_time:.3f}",
                f"{mean_q:.4f}",
                f"{total_iters / len(graphs):.1f}",
            ]
        )

    table = format_table(
        ["tau", "rel. runtime (vs 1e-5)", "mean modularity", "mean iterations"],
        rows,
        title="A2: per-iteration tolerance sweep",
    )
    return ExperimentResult(
        experiment_id="A2",
        title="Tolerance sweep",
        table=table,
        values=results,
        notes=[
            "paper setting tau=0.05; loose tolerances trade little "
            "modularity for fewer iterations"
        ],
    )
