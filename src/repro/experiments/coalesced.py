"""F7 — coalesced-chaining hashtable comparison (paper Figure 7, appendix).

The paper tried replacing open addressing with coalesced chaining (an extra
``nexts`` array linking collided entries) and found "it did not improve
performance".  We regenerate the comparison on the heaviest accumulate
workload — the first LPA iteration, where every neighbour still carries a
unique label, so every table runs at its maximum load factor:

* **Default** — one real ν-LPA iteration on the instrumented hashtable
  engine (quadratic-double), priced by the standard cost model;
* **Coalesced** — the identical workload through
  :class:`~repro.hashing.coalesced.CoalescedHashtables`; its slot
  inspections plus chain-link dereferences (the extra ``nexts`` traffic
  open addressing avoids) are priced with the same coefficients, inheriting
  the default run's warp-divergence ratio.
"""

from __future__ import annotations

import numpy as np

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.gpu.metrics import KernelCounters
from repro.graph.datasets import get_dataset
from repro.hashing.coalesced import CoalescedHashtables
from repro.perf.model import (
    estimate_gpu_seconds,
    extrapolation_ratios,
    scale_counters,
)
from repro.perf.report import RelativeSeries, format_series
from repro.types import VERTEX_DTYPE

__all__ = ["run"]


def _coalesced_iteration_counters(
    graph, base: KernelCounters
) -> KernelCounters:
    """Counters for one coalesced-chaining iteration of the same workload."""
    tables = CoalescedHashtables(graph)
    labels = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    for v in range(graph.num_vertices):
        tables.accumulate_neighborhood(v, labels)

    counters = KernelCounters(**base.as_dict())
    # Replace the probe traffic with the coalesced numbers: slot reads plus
    # chain-link dereferences (each link is an extra scattered read), and a
    # third cleared array (nexts).
    probe_sectors_default = base.probes  # non-linear strategies: 1 sector/probe
    counters.probes = tables.total_probes + tables.total_link_steps
    counters.sectors_read = (
        base.sectors_read - probe_sectors_default
        + tables.total_probes + 2 * tables.total_link_steps
    )
    counters.sectors_written = base.sectors_written + base.slots_cleared // 2
    if base.probes:
        ratio = base.warp_serial_probes / base.probes
        counters.warp_serial_probes = int(counters.probes * ratio)
    return counters


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the coalesced-chaining comparison.

    ``values``: ``{"runtime": {"default"|"coalesced": mean_rel}}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    default_times: dict[str, float] = {}
    coalesced_times: dict[str, float] = {}
    for name, graph in graphs.items():
        spec = get_dataset(name)
        ratios = extrapolation_ratios(
            graph, spec.paper_num_vertices, spec.paper_num_edges
        )
        one_iter = nu_lpa(
            graph, LPAConfig(max_iterations=1), engine="hashtable"
        )
        base = one_iter.total_counters
        default_times[name] = estimate_gpu_seconds(scale_counters(base, ratios))
        co = _coalesced_iteration_counters(graph, base)
        coalesced_times[name] = estimate_gpu_seconds(scale_counters(co, ratios))

    series = [
        RelativeSeries("default", default_times),
        RelativeSeries("coalesced", coalesced_times),
    ]
    rel = series[1].mean_relative(series[0])
    table = format_series(
        series, "default", value_name="runtime",
        title="F7: open addressing vs coalesced chaining (first-iteration "
              "workload, reference = default)",
    )
    return ExperimentResult(
        experiment_id="F7",
        title="Coalesced-chaining hashtable (appendix)",
        table=table,
        values={"runtime": {"default": 1.0, "coalesced": rel}},
        notes=[
            f"coalesced chaining is {rel:.3f}x the default runtime "
            "(paper: no improvement)"
        ],
    )
