"""F3 — collision-resolution study (paper Figure 3).

Runs ν-LPA (PL4 defaults) with linear probing, quadratic probing, double
hashing, and the paper's hybrid quadratic-double, reporting mean relative
runtime across the large-graph stand-ins.

Paper result: quadratic-double fastest — 2.8× / 3.7× / 3.2× faster than
linear / quadratic / double.  The mechanisms our simulator reproduces:
quadratic probing degenerates on the Mersenne capacities (its doubling
step sequence is periodic mod 2^k - 1, massively inflating probe counts),
and linear probing's clustering serialises warps at high table load.
"""

from __future__ import annotations

import numpy as np

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.graph.datasets import get_dataset
from repro.hashing.parallel_hashtable import parallel_accumulate
from repro.hashing.probing import ProbeStrategy
from repro.perf.model import estimate_lpa_result_seconds, extrapolation_ratios
from repro.perf.report import RelativeSeries, format_series, format_table
from repro.types import EMPTY_KEY

__all__ = ["run", "hub_table_stress"]

_ORDER = [
    ProbeStrategy.LINEAR,
    ProbeStrategy.QUADRATIC,
    ProbeStrategy.DOUBLE,
    ProbeStrategy.QUADRATIC_DOUBLE,
]


def hub_table_stress(
    *,
    table_bits: int = 13,
    load: float = 0.98,
    seed: int = 42,
) -> dict[str, dict[str, int]]:
    """Probe statistics of one hub-sized table at paper-scale load.

    The paper's web graphs carry hubs of degree 1e4-1e5 whose first-
    iteration tables (every neighbour a distinct label) run at up to 100 %
    load — a regime the scaled-down stand-ins cannot reach.  This stress
    populates one ``p1 = 2**table_bits - 1`` table to ``load`` and records
    each strategy's probe count and critical-path rounds — the mechanism
    behind Figure 3's large factors.
    """
    rng = np.random.default_rng(seed)
    p1 = (1 << table_bits) - 1
    p2 = (1 << (table_bits + 1)) - 1
    n_keys = int(p1 * load)
    keys = rng.choice(10 * p1, size=n_keys, replace=False).astype(np.int64)

    out: dict[str, dict[str, int]] = {}
    for strategy in _ORDER:
        keys_buf = np.full(2 * (p1 + 1), EMPTY_KEY, dtype=np.int64)
        values_buf = np.zeros(2 * (p1 + 1), dtype=np.float32)
        res = parallel_accumulate(
            keys_buf,
            values_buf,
            np.asarray([0]),
            np.asarray([p1]),
            np.asarray([p2]),
            np.zeros(n_keys, dtype=np.int64),
            keys,
            np.ones(n_keys, dtype=np.float32),
            strategy,
            shared=True,
        )
        out[strategy.value] = {"probes": res.total_probes, "rounds": res.rounds}
    return out


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the probing study.

    ``values``: ``{"runtime": {strategy: mean_rel}, "probes": {strategy:
    total}, "warp_serial": {strategy: total}}`` with ratios relative to
    quadratic-double.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    series: list[RelativeSeries] = []
    probes: dict[str, int] = {}
    warp_serial: dict[str, int] = {}
    for strategy in _ORDER:
        config = LPAConfig(probing=strategy)
        times: dict[str, float] = {}
        total_probes = 0
        total_serial = 0
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
            counters = result.total_counters
            total_probes += counters.probes
            total_serial += counters.warp_serial_probes
        series.append(RelativeSeries(strategy.value, times))
        probes[strategy.value] = total_probes
        warp_serial[strategy.value] = total_serial

    reference = ProbeStrategy.QUADRATIC_DOUBLE.value
    ref = next(s for s in series if s.label == reference)
    runtime_rel = {s.label: s.mean_relative(ref) for s in series}
    fastest = min(runtime_rel, key=runtime_rel.get)

    stress = hub_table_stress(seed=seed)
    qd_probes = stress[reference]["probes"]
    stress_rows = [
        [
            label,
            f"{stats['probes']:,}",
            f"{stats['rounds']:,}",
            f"{stats['probes'] / qd_probes:.2f}",
        ]
        for label, stats in stress.items()
    ]

    table = format_series(
        series, reference, value_name="runtime",
        title="F3: relative runtime by probing strategy (reference = quadratic-double)",
    ) + "\n\n" + format_table(
        ["strategy", "probes", "critical-path rounds", "probes vs QD"],
        stress_rows,
        title="F3 supplement: one hub-sized table (p1=8191) at 98% load — the "
              "regime of the paper's 1e5-degree hubs",
    )
    return ExperimentResult(
        experiment_id="F3",
        title="Hashtable collision resolution",
        table=table,
        values={
            "runtime": runtime_rel,
            "probes": probes,
            "warp_serial": warp_serial,
            "hub_stress": stress,
        },
        notes=[
            f"fastest full-run strategy: {fastest} (paper: quadratic-double)",
            "hub-load stress reproduces the paper's large factors: "
            + ", ".join(
                f"{k}={v['probes'] / qd_probes:.1f}x" for k, v in stress.items()
            ),
        ],
    )
