"""Shared plumbing for the experiment runners.

The paper's optimisation figures (1, 3-5, 7) run on "large graphs from
Table 1"; at stand-in scale we default to one representative per family
(web / social / road / k-mer) to keep a full experiment pass in tens of
seconds, overridable per run.  All runners return an
:class:`ExperimentResult` whose ``table`` is the printable regeneration of
the paper artefact and whose ``series``/``values`` carry the raw numbers
for tests and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.csr import CSRGraph
from repro.graph.datasets import generate_standin

__all__ = [
    "DEFAULT_FIGURE_DATASETS",
    "ExperimentResult",
    "load_graphs",
]

#: One stand-in per dataset family, used by the optimisation figures.
DEFAULT_FIGURE_DATASETS = [
    "indochina-2004",  # web
    "com-Orkut",       # social
    "europe_osm",      # road
    "kmer_V1r",        # k-mer
]


@dataclass
class ExperimentResult:
    """Uniform output of every experiment runner."""

    experiment_id: str
    title: str
    #: Printable table regenerating the paper artefact.
    table: str
    #: Structured values for assertions and EXPERIMENTS.md (shape depends
    #: on the experiment; documented per runner).
    values: dict = field(default_factory=dict)
    #: Free-text notes (e.g. winner, deviation from the paper).
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"[{self.experiment_id}] {self.title}", self.table]
        if self.notes:
            parts.append("notes: " + "; ".join(self.notes))
        return "\n".join(parts)

    def to_json(self) -> str:
        """Serialise to JSON for archiving (CI artifacts, regression diffs).

        NumPy scalars and non-string keys are converted to plain Python so
        the payload round-trips with the standard library.
        """
        import json

        def convert(obj):
            if isinstance(obj, dict):
                return {str(k): convert(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [convert(v) for v in obj]
            if hasattr(obj, "item"):  # numpy scalar
                return obj.item()
            if hasattr(obj, "tolist"):  # numpy array
                return obj.tolist()
            return obj

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "values": convert(self.values),
                "notes": list(self.notes),
                "table": self.table,
            },
            indent=2,
        )

    def save(self, path) -> None:
        """Write :meth:`to_json` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json())


def load_graphs(
    datasets: list[str] | None = None,
    *,
    scale: float = 1.0,
    seed: int = 42,
) -> dict[str, CSRGraph]:
    """Generate the stand-in graphs for ``datasets`` (figure defaults)."""
    names = datasets if datasets is not None else DEFAULT_FIGURE_DATASETS
    return {name: generate_standin(name, scale=scale, seed=seed) for name in names}
