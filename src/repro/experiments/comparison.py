"""F6 — system comparison (paper Figures 6a-6c).

Runs ν-LPA, FLPA, NetworKit PLP, Gunrock LPA, and cuGraph-Louvain on every
Table-1 stand-in and reports (a) modelled paper-scale runtime, (b) ν-LPA's
speedup over each system, and (c) modularity of the obtained communities.

Paper anchors: mean speedups 364× (FLPA), 62× (NetworKit), 2.6× (Gunrock),
37× (cuGraph Louvain); modularity +4.7 % vs FLPA, −6.1 % vs NetworKit,
−9.6 % vs Louvain, with Gunrock "very low".  The paper omits Gunrock and
cuGraph on the five largest web graphs (GPU OOM) and ν-LPA on sk-2005; we
run everything (the stand-ins fit) but keep the paper's missing cells
marked in the output.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.graph.datasets import dataset_names, generate_standin
from repro.perf.harness import run_measurement
from repro.perf.report import format_table, geometric_mean

__all__ = ["SYSTEMS", "PAPER_OOM", "run"]

#: Figure-6 system order; ν-LPA last as in the paper's bar groups.
SYSTEMS = ["flpa", "networkit-lpa", "gunrock-lpa", "cugraph-louvain", "nu-lpa"]

#: Cells the paper reports as failing (GPU out-of-memory on the A100).
PAPER_OOM = {
    "gunrock-lpa": {"arabic-2005", "uk-2005", "webbase-2001", "it-2004", "sk-2005"},
    "cugraph-louvain": {"arabic-2005", "uk-2005", "webbase-2001", "it-2004", "sk-2005"},
    "nu-lpa": {"sk-2005"},
}


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
    systems: list[str] | None = None,
) -> ExperimentResult:
    """Run the full comparison.

    ``values``: ``{"runtime": {system: {dataset: seconds}}, "speedup":
    {system: mean ratio vs nu-lpa}, "modularity": {system: {dataset: Q}},
    "mean_modularity": {system: geomean}}``.
    """
    names = datasets if datasets is not None else dataset_names()
    chosen = systems if systems is not None else SYSTEMS

    runtime: dict[str, dict[str, float]] = {s: {} for s in chosen}
    quality: dict[str, dict[str, float]] = {s: {} for s in chosen}
    for name in names:
        graph = generate_standin(name, scale=scale, seed=seed)
        for system in chosen:
            m = run_measurement(system, graph, dataset=name, seed=seed)
            runtime[system][name] = m.modeled_seconds
            quality[system][name] = m.modularity

    # Figure 6b: speedups of nu-LPA over each system, geometric mean over
    # the datasets where the paper has both numbers.
    speedup: dict[str, float] = {}
    if "nu-lpa" in chosen:
        for system in chosen:
            if system == "nu-lpa":
                continue
            ratios = []
            for name in names:
                if name in PAPER_OOM.get(system, set()):
                    continue
                if name in PAPER_OOM.get("nu-lpa", set()):
                    continue
                ratios.append(runtime[system][name] / runtime["nu-lpa"][name])
            speedup[system] = geometric_mean(ratios)

    mean_quality = {
        system: geometric_mean([q for q in quality[system].values() if q > 0])
        for system in chosen
    }

    def _cell(system: str, name: str, value: float, fmt: str) -> str:
        mark = "*" if name in PAPER_OOM.get(system, set()) else ""
        return f"{value:{fmt}}{mark}"

    rows_rt = [
        [name] + [_cell(s, name, runtime[s][name], ".3g") for s in chosen]
        for name in names
    ]
    rows_q = [
        [name] + [_cell(s, name, quality[s][name], ".4f") for s in chosen]
        for name in names
    ]
    table = (
        format_table(
            ["graph"] + chosen, rows_rt,
            title="F6a: modelled runtime at paper scale, seconds "
                  "(* = paper reports OOM for this cell)",
        )
        + "\n\n"
        + format_table(
            ["system", "mean speedup of nu-lpa"],
            [[s, f"{v:.1f}x"] for s, v in speedup.items()],
            title="F6b: speedup of nu-LPA (paper: flpa 364x, networkit 62x, "
                  "gunrock 2.6x, louvain 37x)",
        )
        + "\n\n"
        + format_table(
            ["graph"] + chosen, rows_q,
            title="F6c: modularity of obtained communities",
        )
    )

    return ExperimentResult(
        experiment_id="F6",
        title="System comparison (runtime / speedup / modularity)",
        table=table,
        values={
            "runtime": runtime,
            "speedup": speedup,
            "modularity": quality,
            "mean_modularity": mean_quality,
        },
        notes=[
            "speedups: " + ", ".join(f"{s}={v:.1f}x" for s, v in speedup.items()),
            "mean modularity: "
            + ", ".join(f"{s}={v:.3f}" for s, v in mean_quality.items()),
        ],
    )
