"""T1 — dataset table (paper Table 1).

Regenerates the table's structure for every stand-in: |V|, |E| (after
adding reverse edges), average degree, and |Γ| — the number of communities
ν-LPA finds — side by side with the paper's published values.
"""

from __future__ import annotations

from repro.core import nu_lpa
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import dataset_names, generate_standin, get_dataset
from repro.perf.report import format_table

__all__ = ["run"]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Regenerate Table 1.

    ``values``: ``{dataset: {"num_vertices", "num_edges", "avg_degree",
    "num_communities", "paper_num_communities", "communities_per_vertex",
    "paper_communities_per_vertex"}}``.
    """
    names = datasets if datasets is not None else dataset_names()

    rows = []
    values: dict[str, dict] = {}
    for name in names:
        spec = get_dataset(name)
        graph = generate_standin(name, scale=scale, seed=seed)
        result = nu_lpa(graph, engine="hashtable")
        gamma = result.num_communities()
        v, e = graph.num_vertices, graph.num_edges
        paper_density = (
            spec.paper_num_communities / spec.paper_num_vertices
            if spec.paper_num_communities
            else None
        )
        values[name] = {
            "num_vertices": v,
            "num_edges": e,
            "avg_degree": e / max(v, 1),
            "num_communities": gamma,
            "paper_num_communities": spec.paper_num_communities,
            "communities_per_vertex": gamma / max(v, 1),
            "paper_communities_per_vertex": paper_density,
        }
        rows.append(
            [
                name,
                spec.family,
                f"{v:,}",
                f"{e:,}",
                f"{e / max(v, 1):.1f}",
                f"{spec.paper_avg_degree:.1f}",
                f"{gamma:,}",
                f"{gamma / max(v, 1):.4f}",
                f"{paper_density:.4f}" if paper_density else "?",
            ]
        )

    table = format_table(
        [
            "graph", "family", "|V|", "|E|", "D_avg", "paper D_avg",
            "|Gamma|", "|Gamma|/|V|", "paper |Gamma|/|V|",
        ],
        rows,
        title="T1: datasets (stand-ins) and communities found by nu-LPA",
    )
    return ExperimentResult(
        experiment_id="T1",
        title="Dataset table with nu-LPA community counts",
        table=table,
        values=values,
    )
