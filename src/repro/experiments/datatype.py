"""F5 — hashtable value datatype study (paper Figure 5).

Compares 32-bit against 64-bit floating-point hashtable values: fp32 moves
half the value traffic (clears, accumulate read-modify-writes, max-reduce
re-reads) for identical community quality.

Paper result: fp32 gives a moderate speedup with no quality loss — the
configuration ν-LPA adopts.
"""

from __future__ import annotations

import numpy as np

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.graph.datasets import get_dataset
from repro.metrics import modularity
from repro.perf.model import estimate_lpa_result_seconds, extrapolation_ratios
from repro.perf.report import RelativeSeries, format_series

__all__ = ["run"]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the fp32-vs-fp64 study.

    ``values``: ``{"runtime": {"float"|"double": mean_rel}, "modularity":
    {...: absolute geomean}, "max_modularity_gap": float}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    series: list[RelativeSeries] = []
    quality: dict[str, dict[str, float]] = {}
    for label, dtype in (("float", np.float32), ("double", np.float64)):
        config = LPAConfig(value_dtype=dtype)
        times: dict[str, float] = {}
        quals: dict[str, float] = {}
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
            quals[name] = modularity(graph, result.labels)
        series.append(RelativeSeries(label, times))
        quality[label] = quals

    ref = next(s for s in series if s.label == "float")
    runtime_rel = {s.label: s.mean_relative(ref) for s in series}
    gap = max(
        abs(quality["float"][name] - quality["double"][name])
        for name in quality["float"]
    )

    table = format_series(
        series, "float", value_name="runtime",
        title="F5: relative runtime, fp32 vs fp64 hashtable values (reference = float)",
    )
    return ExperimentResult(
        experiment_id="F5",
        title="Hashtable value datatype (fp32 vs fp64)",
        table=table,
        values={
            "runtime": runtime_rel,
            "modularity": quality,
            "max_modularity_gap": gap,
        },
        notes=[
            f"double is {runtime_rel['double']:.3f}x the float runtime",
            f"max |Q(f32) - Q(f64)| across datasets: {gap:.4f} (paper: no quality loss)",
        ],
    )
