"""E3 — hashtable memory footprint: per-thread (GVE-LPA) vs per-vertex (ν-LPA).

Regenerates the paper's §4.2 argument quantitatively: per-thread
collision-free tables cost O(T·N), which is fine for a 64-thread CPU but
"impractical" for a GPU's ~2.2×10⁵ resident threads, while ν-LPA's
per-vertex layout stays at O(M) — two buffers of 2|E|.  The table below is
computed at *paper scale* for every Table-1 graph, against the A100's 80 GB.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.gpu.device import A100, XEON_GOLD_6226R_DUAL
from repro.graph.datasets import dataset_names, get_dataset
from repro.hashing.collision_free import memory_footprint
from repro.perf.report import format_table

__all__ = ["run"]

_GIB = 1024.0**3


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the memory-footprint study (analytic; scale/seed unused).

    ``values``: ``{dataset: {"cpu_per_thread_gib", "gpu_per_thread_gib",
    "per_vertex_gib", "gpu_fits"}}``.
    """
    names = datasets if datasets is not None else dataset_names()
    cpu_threads = 2 * XEON_GOLD_6226R_DUAL.total_cores  # SMT, as GVE-LPA uses
    gpu_threads = A100.max_resident_threads
    budget = A100.global_memory_bytes

    rows = []
    values: dict[str, dict] = {}
    for name in names:
        spec = get_dataset(name)
        cpu = memory_footprint(
            spec.paper_num_vertices, spec.paper_num_edges, cpu_threads
        )
        gpu = memory_footprint(
            spec.paper_num_vertices, spec.paper_num_edges, gpu_threads
        )
        # Whole-run footprint: CSR (8-byte offsets + 4-byte ids/weights),
        # labels + previous labels + flags, plus the hashtable buffers.
        csr_bytes = 8 * (spec.paper_num_vertices + 1) + 8 * spec.paper_num_edges
        state_bytes = 9 * spec.paper_num_vertices
        total_gpu = csr_bytes + state_bytes + gpu["per_vertex"]
        fits = total_gpu < budget
        values[name] = {
            "cpu_per_thread_gib": cpu["per_thread"] / _GIB,
            "gpu_per_thread_gib": gpu["per_thread"] / _GIB,
            "per_vertex_gib": gpu["per_vertex"] / _GIB,
            "total_run_gib": total_gpu / _GIB,
            "gpu_fits": fits,
        }
        rows.append(
            [
                name,
                f"{cpu['per_thread'] / _GIB:.1f}",
                f"{gpu['per_thread'] / _GIB:,.0f}",
                f"{gpu['per_vertex'] / _GIB:.1f}",
                f"{total_gpu / _GIB:.1f}",
                "yes" if fits else "NO (paper: OOM)",
            ]
        )

    table = format_table(
        [
            "graph",
            "GVE per-thread, 64 CPU threads (GiB)",
            "GVE per-thread, 221k GPU threads (GiB)",
            "nu-LPA per-vertex (GiB)",
            "nu-LPA total run (GiB)",
            "fits A100 80 GB",
        ],
        rows,
        title="E3: hashtable memory at paper scale — why per-thread tables "
              "cannot transfer to the GPU",
    )
    worst = max(values, key=lambda n: values[n]["gpu_per_thread_gib"])
    return ExperimentResult(
        experiment_id="E3",
        title="Hashtable memory footprint (per-thread vs per-vertex)",
        table=table,
        values=values,
        notes=[
            f"per-thread tables on the GPU would need up to "
            f"{values[worst]['gpu_per_thread_gib']:,.0f} GiB ({worst}); "
            "per-vertex stays O(M)",
            "nu-LPA's own sk-2005 OOM reproduces: CSR + state + the 2|E| "
            "hashtable buffers exceed the A100's 80 GB"
            if not values.get("sk-2005", {}).get("gpu_fits", True)
            else "",
        ],
    )
