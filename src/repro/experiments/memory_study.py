"""E3 — hashtable memory footprint: per-thread (GVE-LPA) vs per-vertex (ν-LPA).

Regenerates the paper's §4.2 argument quantitatively: per-thread
collision-free tables cost O(T·N), which is fine for a 64-thread CPU but
"impractical" for a GPU's ~2.2×10⁵ resident threads, while ν-LPA's
per-vertex layout stays at O(M) — two buffers of 2|E|.

Footprints come from the memory governor's analytic estimator
(:func:`repro.gpu.governor.estimate_run_footprint`) — the same model the
service's admission control and the per-run allocation ledger enforce —
so the study and the runtime agree on what "fits" means.  Each Table-1
graph is priced at *paper scale* in both the compact (32-bit) and wide
(64-bit) layouts against the A100's 80 GB, which surfaces the
compact-vs-wide fit threshold: graphs that only fit the device because
the compact layout halves the index traffic.  A small stand-in graph
cross-checks the estimator's CSR component against the *actual*
:meth:`~repro.graph.csr.CSRGraph.memory_bytes` of a materialised graph.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.gpu.device import A100, XEON_GOLD_6226R_DUAL
from repro.gpu.governor import estimate_run_footprint
from repro.graph.datasets import dataset_names, generate_standin, get_dataset
from repro.hashing.collision_free import memory_footprint
from repro.perf.report import format_table

__all__ = ["run"]

_GIB = 1024.0**3
#: Largest index value a compact (int32) layout can address.
_INT32_MAX = 2**31 - 1


def _compact_fits_indices(num_vertices: int, num_edges: int) -> bool:
    """Whether int32 offsets/targets can address this graph at all."""
    return num_vertices <= _INT32_MAX and num_edges <= _INT32_MAX


def _wave_edges(num_vertices: int, num_edges: int) -> int:
    """Analytic residency-wave edge bound at paper scale.

    Workspace arenas are sized by the largest *wave's* edge range, not the
    whole graph: the device schedules at most ``max_resident_threads``
    vertices per thread-kernel wave, so with only (n, m) known we price
    the edges of one wave as an even split across waves.  At working
    scale, where a real graph exists, admission control uses the exact
    per-wave bound (:func:`repro.gpu.governor.wave_edge_bound`) instead.
    """
    waves = max(1, -(-num_vertices // A100.max_resident_threads))
    return min(num_edges, -(-num_edges // waves))


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the memory-footprint study (analytic; paper-scale totals).

    ``values``: ``{dataset: {"cpu_per_thread_gib", "gpu_per_thread_gib",
    "per_vertex_gib", "wide_total_gib", "compact_total_gib",
    "fits_wide", "fits_compact", "compact_required"}}`` plus a
    ``"_crosscheck"`` entry comparing the estimator's CSR component with
    an actual materialised graph's ``memory_bytes()``.
    """
    names = datasets if datasets is not None else dataset_names()
    cpu_threads = 2 * XEON_GOLD_6226R_DUAL.total_cores  # SMT, as GVE-LPA uses
    gpu_threads = A100.max_resident_threads
    budget = A100.global_memory_bytes

    rows = []
    values: dict[str, dict] = {}
    compact_saves = []
    for name in names:
        spec = get_dataset(name)
        n, m = spec.paper_num_vertices, spec.paper_num_edges
        cpu = memory_footprint(n, m, cpu_threads)
        gpu = memory_footprint(n, m, gpu_threads)
        wave = _wave_edges(n, m)
        wide = estimate_run_footprint(
            n, m, compact=False, engine="hashtable", wave_edges=wave,
        )
        compact_ok = _compact_fits_indices(n, m)
        compact = (
            estimate_run_footprint(
                n, m, compact=True, engine="hashtable", wave_edges=wave,
            )
            if compact_ok else None
        )
        fits_wide = wide["total"] < budget
        fits_compact = compact is not None and compact["total"] < budget
        compact_required = fits_compact and not fits_wide
        if compact_required:
            compact_saves.append(name)
        values[name] = {
            "cpu_per_thread_gib": cpu["per_thread"] / _GIB,
            "gpu_per_thread_gib": gpu["per_thread"] / _GIB,
            "per_vertex_gib": gpu["per_vertex"] / _GIB,
            "wide_total_gib": wide["total"] / _GIB,
            "compact_total_gib": (
                compact["total"] / _GIB if compact is not None else None
            ),
            "fits_wide": fits_wide,
            "fits_compact": fits_compact,
            "compact_required": compact_required,
        }
        if not fits_compact and not fits_wide:
            verdict = "NO (paper: OOM)"
        elif compact_required:
            verdict = "compact only"
        else:
            verdict = "yes"
        rows.append(
            [
                name,
                f"{cpu['per_thread'] / _GIB:.1f}",
                f"{gpu['per_thread'] / _GIB:,.0f}",
                f"{gpu['per_vertex'] / _GIB:.1f}",
                f"{wide['total'] / _GIB:.1f}",
                f"{compact['total'] / _GIB:.1f}" if compact is not None
                else "overflow",
                verdict,
            ]
        )

    # Cross-check the estimator's CSR component against a real graph: the
    # analytic model must price exactly what the allocation ledger would
    # be charged for the same bytes.
    check = generate_standin("asia_osm", scale=0.02, seed=seed)
    est = estimate_run_footprint(
        check.num_vertices, check.num_edges,
        compact=check.is_compact, engine="hashtable",
    )
    actual_csr = check.memory_bytes()
    csr_deviation = abs(est["csr"] - actual_csr) / max(1, actual_csr)
    values["_crosscheck"] = {
        "graph": "asia_osm@0.02",
        "estimated_csr_bytes": int(est["csr"]),
        "actual_csr_bytes": int(actual_csr),
        "deviation": csr_deviation,
    }

    table = format_table(
        [
            "graph",
            "GVE per-thread, 64 CPU threads (GiB)",
            "GVE per-thread, 221k GPU threads (GiB)",
            "nu-LPA per-vertex (GiB)",
            "wide run total (GiB)",
            "compact run total (GiB)",
            "fits A100 80 GB",
        ],
        rows,
        title="E3: hashtable memory at paper scale — why per-thread tables "
              "cannot transfer to the GPU",
    )
    worst = max(
        (n for n in values if not n.startswith("_")),
        key=lambda n: values[n]["gpu_per_thread_gib"],
    )
    notes = [
        f"per-thread tables on the GPU would need up to "
        f"{values[worst]['gpu_per_thread_gib']:,.0f} GiB ({worst}); "
        "per-vertex stays O(M)",
        f"estimator cross-check: CSR component within "
        f"{csr_deviation:.1%} of a materialised graph's memory_bytes()",
    ]
    if compact_saves:
        notes.append(
            "compact-vs-wide fit threshold: "
            + ", ".join(compact_saves)
            + " fit the A100 only in the compact 32-bit layout"
        )
    oom = [
        n for n in values
        if not n.startswith("_")
        and not values[n]["fits_wide"] and not values[n]["fits_compact"]
    ]
    if oom:
        notes.append(
            "nu-LPA's own OOM reproduces: " + ", ".join(oom)
            + " exceed the A100's 80 GB in either layout "
            "(CSR + labels + the 2|E| hashtable buffers + workspace)"
        )
    return ExperimentResult(
        experiment_id="E3",
        title="Hashtable memory footprint (per-thread vs per-vertex)",
        table=table,
        values=values,
        notes=notes,
    )
