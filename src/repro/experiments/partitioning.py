"""E2 — LPA-based graph partitioning (the paper's stated future work).

The conclusion earmarks "partitioning of large graphs" as ν-LPA's next
application.  This extension partitions every figure stand-in into k = 8
parts with size-constrained label propagation and reports edge-cut
fraction and imbalance against a random-assignment baseline.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, load_graphs
from repro.partition import edge_cut_fraction, size_constrained_lpa
from repro.perf.report import format_table

__all__ = ["run"]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
    k: int = 8,
    epsilon: float = 0.05,
) -> ExperimentResult:
    """Run the partitioning study.

    ``values``: ``{dataset: {"cut", "random_cut", "imbalance", "sweeps"}}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)
    rng = np.random.default_rng(seed)

    rows = []
    values: dict[str, dict[str, float]] = {}
    for name, graph in graphs.items():
        result = size_constrained_lpa(graph, k, epsilon=epsilon, seed=seed)
        random_parts = rng.integers(0, k, size=graph.num_vertices)
        random_cut = edge_cut_fraction(graph, random_parts)
        values[name] = {
            "cut": result.edge_cut_fraction,
            "random_cut": random_cut,
            "imbalance": result.imbalance,
            "sweeps": result.iterations,
        }
        rows.append(
            [
                name,
                f"{result.edge_cut_fraction:.4f}",
                f"{random_cut:.4f}",
                f"{result.edge_cut_fraction / max(random_cut, 1e-12):.2f}",
                f"{result.imbalance:.3f}",
                str(result.iterations),
            ]
        )

    table = format_table(
        ["graph", "cut fraction", "random cut", "vs random", "imbalance",
         "sweeps"],
        rows,
        title=f"E2: size-constrained LPA partitioning (k={k}, "
              f"epsilon={epsilon})",
    )
    return ExperimentResult(
        experiment_id="E2",
        title="LPA-based graph partitioning (future work)",
        table=table,
        values=values,
        notes=[
            "cut improves on random by "
            + ", ".join(
                f"{name}: {v['random_cut'] / max(v['cut'], 1e-12):.1f}x"
                for name, v in values.items()
            )
        ],
    )
