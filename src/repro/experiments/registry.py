"""Registry mapping experiment ids to runners (see DESIGN.md §4)."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    coalesced,
    collision_resolution,
    comparison,
    dataset_table,
    datatype,
    memory_study,
    partitioning,
    scaling,
    swap_prevention,
    switch_degree,
    variants_study,
)
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

#: Experiment id → (title, runner). Runners share the keyword interface
#: ``run(scale=..., seed=..., datasets=...) -> ExperimentResult``.
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "T1": ("Dataset table + nu-LPA community counts", dataset_table.run),
    "F1": ("Community-swap prevention (CC/PL/H)", swap_prevention.run),
    "F3": ("Hashtable collision resolution", collision_resolution.run),
    "F4": ("Kernel switch degree", switch_degree.run),
    "F5": ("Hashtable value datatype", datatype.run),
    "F6": ("System comparison", comparison.run),
    "F7": ("Coalesced chaining (appendix)", coalesced.run),
    "A1": ("Vertex pruning ablation", ablations.run_pruning),
    "A2": ("Tolerance sweep ablation", ablations.run_tolerance),
    "A3": ("Shared-memory hashtable ablation", ablations.run_shared_memory),
    "E1": ("Label-propagation variant study", variants_study.run),
    "E2": ("LPA-based graph partitioning", partitioning.run),
    "E3": ("Hashtable memory footprint", memory_study.run),
    "E4": ("Throughput scaling", scaling.run),
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (``T1``, ``F1``, ``F3``-``F7``, ``A1``-``A2``)."""
    try:
        _, runner = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
