"""E4 — throughput scaling study (extension).

The paper's headline throughput — 3.0 B edges/s on a 2.2 B-edge graph — is
a *large-graph* number: small grids leave most of the A100's 221 k resident
threads idle and pay fixed wave/launch overheads.  This study sweeps
stand-in sizes and reports modelled paper-device throughput (edges scanned
per modelled second) per dataset family, showing the saturation curve a
real GPU exhibits: throughput climbs with graph size until the device is
full, then flattens near the bandwidth-bound rate.
"""

from __future__ import annotations

from repro.core import nu_lpa
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import generate_standin
from repro.perf.model import Ratios, estimate_gpu_seconds, scale_counters
from repro.perf.report import format_table

__all__ = ["SCALES", "run"]

#: Relative stand-in sizes swept (multiplied by each dataset's base size).
SCALES = [0.1, 0.25, 0.5, 1.0]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the scaling sweep.

    The ``scale`` argument multiplies every sweep point (so tests can pass
    a small value).  ``values``: ``{dataset: {sweep_scale: {"edges",
    "seconds", "edges_per_s"}}}``.
    """
    names = datasets if datasets is not None else ["indochina-2004", "europe_osm"]

    rows = []
    values: dict[str, dict[float, dict[str, float]]] = {}
    for name in names:
        values[name] = {}
        for s in SCALES:
            graph = generate_standin(name, scale=s * scale, seed=seed)
            result = nu_lpa(graph, engine="hashtable")
            # Price the run at its own size (no paper-scale extrapolation):
            # this is the device's modelled behaviour on a graph this big.
            secs = estimate_gpu_seconds(
                scale_counters(result.total_counters, Ratios(1.0, 1.0))
            )
            edges = result.total_counters.edges_scanned
            eps = edges / secs if secs > 0 else 0.0
            values[name][s] = {
                "edges": float(edges),
                "seconds": secs,
                "edges_per_s": eps,
            }
            rows.append(
                [
                    name,
                    f"{s:g}",
                    f"{graph.num_edges:,}",
                    f"{edges:,}",
                    f"{secs * 1e3:.3f}",
                    f"{eps / 1e9:.3f}",
                ]
            )

    table = format_table(
        ["graph", "sweep scale", "|E|", "edges scanned", "modelled ms",
         "modelled B edges/s"],
        rows,
        title="E4: modelled device throughput vs graph size "
              "(paper anchor: 3.0 B edges/s at |E| = 2.2e9)",
    )
    # Saturation check: throughput must grow monotonically-ish with size.
    notes = []
    for name in names:
        series = [values[name][s]["edges_per_s"] for s in SCALES]
        notes.append(
            f"{name}: throughput grows {series[0] / 1e9:.2f} -> "
            f"{series[-1] / 1e9:.2f} B edges/s across the sweep"
        )
    return ExperimentResult(
        experiment_id="E4",
        title="Throughput scaling (device saturation)",
        table=table,
        values=values,
        notes=notes,
    )
