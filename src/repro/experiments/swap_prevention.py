"""F1 — community-swap prevention study (paper Figure 1).

Compares Cross-Check every 1-4 iterations (CC1-CC4), Pick-Less every 1-4
iterations (PL1-PL4), and all 16 Hybrid combinations H(CCi, PLj), reporting
mean relative runtime and mean relative modularity across the large-graph
stand-ins.  Per the paper's note, this experiment runs the *double-hashing*
hashtable (the probing study comes later).

Paper result: **PL4** yields the highest-modularity communities while being
only ~8 % slower than the fastest variant (CC2).
"""

from __future__ import annotations

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.hashing.probing import ProbeStrategy
from repro.metrics import modularity
from repro.perf.model import (
    estimate_lpa_result_seconds,
    extrapolation_ratios,
)
from repro.graph.datasets import get_dataset
from repro.perf.report import RelativeSeries, format_series

__all__ = ["variant_configs", "run"]


def variant_configs() -> dict[str, LPAConfig]:
    """All 24 variants of the paper's study, keyed by figure label."""
    base = LPAConfig(probing=ProbeStrategy.DOUBLE, pl_period=None, cc_period=None)
    variants: dict[str, LPAConfig] = {}
    for i in range(1, 5):
        variants[f"CC{i}"] = base.with_(cc_period=i)
    for j in range(1, 5):
        variants[f"PL{j}"] = base.with_(pl_period=j)
    for i in range(1, 5):
        for j in range(1, 5):
            variants[f"H(CC{i},PL{j})"] = base.with_(cc_period=i, pl_period=j)
    return variants


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
    include_hybrid: bool = True,
) -> ExperimentResult:
    """Run the swap-prevention study.

    ``values`` layout: ``{"runtime": {label: mean_rel}, "modularity":
    {label: mean_rel}, "winner_modularity": label}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)
    variants = variant_configs()
    if not include_hybrid:
        variants = {k: v for k, v in variants.items() if not k.startswith("H")}

    runtime_series: list[RelativeSeries] = []
    quality_series: list[RelativeSeries] = []
    for label, config in variants.items():
        times: dict[str, float] = {}
        quals: dict[str, float] = {}
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
            quals[name] = modularity(graph, result.labels)
        runtime_series.append(RelativeSeries(label, times))
        quality_series.append(RelativeSeries(label, quals))

    reference = "PL4"
    runtime_rel = {
        s.label: s.mean_relative(next(r for r in runtime_series if r.label == reference))
        for s in runtime_series
    }
    ref_q = next(s for s in quality_series if s.label == reference)
    quality_rel = {s.label: s.mean_relative(ref_q) for s in quality_series}

    winner = max(quality_rel, key=quality_rel.get)
    fastest = min(runtime_rel, key=runtime_rel.get)

    table = format_series(
        runtime_series, reference, value_name="runtime",
        title="F1a: relative runtime (reference = PL4)",
    ) + "\n\n" + format_series(
        quality_series, reference, value_name="modularity",
        title="F1b: relative modularity (reference = PL4)",
    )

    notes = [
        f"highest mean modularity: {winner} (paper: PL4)",
        f"fastest variant: {fastest} (paper: CC2, with PL4 ~8% slower)",
    ]
    return ExperimentResult(
        experiment_id="F1",
        title="Community-swap prevention (CC / PL / Hybrid)",
        table=table,
        values={
            "runtime": runtime_rel,
            "modularity": quality_rel,
            "winner_modularity": winner,
            "fastest": fastest,
        },
        notes=notes,
    )
