"""F4 — switch-degree study (paper Figure 4).

Sweeps the thread-/block-per-vertex partition threshold over powers of two
from 2 to 256 and reports mean relative runtime.  The trade-off the
simulator reproduces: a low switch degree sends small vertices to the
block kernel, wasting a 256-thread block (and its wave slots) per tiny
vertex; a high switch degree makes single lanes crawl through long
adjacency lists, serialising their whole warp (warp-max probes and
scattered adjacency traffic grow).

Paper result: 32 — the warp size — is the sweet spot.
"""

from __future__ import annotations

from repro.core import LPAConfig, nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.graph.datasets import get_dataset
from repro.perf.model import estimate_lpa_result_seconds, extrapolation_ratios
from repro.perf.report import RelativeSeries, format_series

__all__ = ["SWITCH_DEGREES", "run"]

SWITCH_DEGREES = [2, 4, 8, 16, 32, 64, 128, 256]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the switch-degree sweep.

    ``values``: ``{"runtime": {degree: mean_rel}, "best": degree}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    series: list[RelativeSeries] = []
    for degree in SWITCH_DEGREES:
        config = LPAConfig(switch_degree=degree)
        times: dict[str, float] = {}
        for name, graph in graphs.items():
            spec = get_dataset(name)
            ratios = extrapolation_ratios(
                graph, spec.paper_num_vertices, spec.paper_num_edges
            )
            result = nu_lpa(graph, config, engine="hashtable")
            times[name] = estimate_lpa_result_seconds(result, ratios)
        series.append(RelativeSeries(str(degree), times))

    reference = "32"
    ref = next(s for s in series if s.label == reference)
    runtime_rel = {s.label: s.mean_relative(ref) for s in series}
    best = min(runtime_rel, key=runtime_rel.get)

    table = format_series(
        series, reference, value_name="runtime",
        title="F4: relative runtime by switch degree (reference = 32)",
    )
    return ExperimentResult(
        experiment_id="F4",
        title="Thread- vs block-per-vertex switch degree",
        table=table,
        values={"runtime": runtime_rel, "best": int(best)},
        notes=[f"best switch degree: {best} (paper: 32)"],
    )
