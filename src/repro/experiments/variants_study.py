"""E1 — label-propagation variant study (extension).

Backs the paper's Section-1 claim that among COPRA, SLPA, and LabelRank,
"LPA emerged as the most efficient, delivering communities of comparable
quality": all four methods run on the figure stand-ins, reporting measured
modularity and the work measure (label-pairs processed per edge — plain
LPA touches one pair per scanned edge, the variants touch several).
"""

from __future__ import annotations

import numpy as np

from repro.core import nu_lpa
from repro.experiments.common import ExperimentResult, load_graphs
from repro.metrics import modularity
from repro.perf.report import format_table, geometric_mean
from repro.variants import copra, labelrank, slpa

__all__ = ["run"]


def run(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> ExperimentResult:
    """Run the variant study.

    ``values``: ``{"modularity": {method: geomean}, "pairs_per_edge":
    {method: mean}, "most_efficient": method}``.
    """
    graphs = load_graphs(datasets, scale=scale, seed=seed)

    methods = {
        "lpa": lambda g: _lpa_as_variant(g),
        "copra": lambda g: copra(g, v=2, seed=seed),
        "slpa": lambda g: slpa(g, rounds=20, seed=seed),
        "labelrank": lambda g: labelrank(g, seed=seed),
    }

    quality: dict[str, dict[str, float]] = {m: {} for m in methods}
    work: dict[str, dict[str, float]] = {m: {} for m in methods}
    for name, graph in graphs.items():
        for method, fn in methods.items():
            result = fn(graph)
            quality[method][name] = modularity(graph, result.labels)
            work[method][name] = result.pairs_processed / max(
                graph.num_edges, 1
            )

    mean_q = {m: geometric_mean([v for v in quality[m].values() if v > 0])
              for m in methods}
    mean_w = {m: float(np.mean(list(work[m].values()))) for m in methods}
    most_efficient = min(mean_w, key=mean_w.get)

    rows = [
        [
            m,
            f"{mean_q[m]:.4f}",
            f"{mean_w[m]:.1f}",
        ]
        + [f"{quality[m][d]:.3f}" for d in graphs]
        for m in methods
    ]
    table = format_table(
        ["method", "geomean Q", "pairs/edge"] + list(graphs),
        rows,
        title="E1: LPA vs COPRA / SLPA / LabelRank "
              "(paper: LPA most efficient, comparable quality)",
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Label-propagation variant study",
        table=table,
        values={
            "modularity": mean_q,
            "pairs_per_edge": mean_w,
            "most_efficient": most_efficient,
        },
        notes=[
            f"most efficient: {most_efficient} (paper: LPA)",
            "quality spread: "
            + ", ".join(f"{m}={q:.3f}" for m, q in mean_q.items()),
        ],
    )


class _LpaVariantShim:
    """Adapter giving nu-LPA the VariantResult work interface."""

    def __init__(self, labels: np.ndarray, edges_scanned: int) -> None:
        self.labels = labels
        self.pairs_processed = edges_scanned


def _lpa_as_variant(graph) -> _LpaVariantShim:
    result = nu_lpa(graph, engine="hashtable")
    return _LpaVariantShim(
        result.labels, result.total_counters.edges_scanned
    )
