"""SIMT execution-model simulator: the library's "GPU".

The paper's phenomena — lockstep community swaps, probe-sequence divergence,
coalesced vs. scattered memory traffic, atomic contention — are scheduling
and memory effects, not arithmetic ones.  This package models exactly those
effects deterministically:

* :mod:`repro.gpu.device` — device descriptions (A100 default) and derived
  residency limits;
* :mod:`repro.gpu.metrics` — event counters every kernel accumulates;
* :mod:`repro.gpu.memory` — transaction counting with a sector-based
  coalescing model;
* :mod:`repro.gpu.atomics` — deterministic winner resolution and contention
  accounting for simulated ``atomicCAS``/``atomicAdd``;
* :mod:`repro.gpu.scheduler` — wave partitioning of a grid onto SMs and
  warp assignment of work items;
* :mod:`repro.gpu.kernel` — kernel-launch records tying the above together;
* :mod:`repro.gpu.governor` — per-device allocation ledger enforcing
  ``global_memory_bytes`` (typed OOM faults, footprint estimation).
"""

from repro.gpu.device import DeviceSpec, A100, XEON_GOLD_6226R_DUAL
from repro.gpu.governor import (
    MemoryGovernor,
    REGION_KINDS,
    ESTIMATE_TOLERANCE,
    estimate_run_footprint,
    footprint_for,
    wave_edge_bound,
)
from repro.gpu.metrics import KernelCounters
from repro.gpu.memory import MemoryModel, AccessPattern
from repro.gpu.atomics import first_winner_per_address, contention_cost
from repro.gpu.scheduler import WavePlan, plan_waves, warp_assignment
from repro.gpu.kernel import KernelLaunch, KernelKind, LaunchStatus
from repro.gpu.occupancy import Occupancy, occupancy_for

__all__ = [
    "Occupancy",
    "occupancy_for",
    "DeviceSpec",
    "A100",
    "XEON_GOLD_6226R_DUAL",
    "MemoryGovernor",
    "REGION_KINDS",
    "ESTIMATE_TOLERANCE",
    "estimate_run_footprint",
    "footprint_for",
    "wave_edge_bound",
    "KernelCounters",
    "MemoryModel",
    "AccessPattern",
    "first_winner_per_address",
    "contention_cost",
    "WavePlan",
    "plan_waves",
    "warp_assignment",
    "KernelLaunch",
    "KernelKind",
    "LaunchStatus",
]
