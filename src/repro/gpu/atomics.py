"""Deterministic simulation of concurrent atomic operations.

Real ``atomicCAS``/``atomicAdd`` pick an arbitrary serialisation order; the
simulator uses *lane order* (first contender in array order wins) so runs
are reproducible.  Contention is accounted as the extra serialisation a
memory controller imposes: atomics on the same address execute one at a
time, so an address hit by ``c`` lanes costs ``c - 1`` conflict units.
"""

from __future__ import annotations

import numpy as np

__all__ = ["first_winner_per_address", "contention_cost", "simulate_atomic_add"]


def first_winner_per_address(addresses: np.ndarray) -> np.ndarray:
    """Indices of the first contender for each distinct address.

    Mirrors a CAS race: among entries targeting the same address, the entry
    with the lowest array index wins.  Returns winner indices in ascending
    address order.
    """
    if addresses.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    _, first = np.unique(addresses, return_index=True)
    return first.astype(np.int64)


def contention_cost(addresses: np.ndarray) -> int:
    """Serialisation overhead: sum over addresses of (multiplicity - 1)."""
    if addresses.shape[0] == 0:
        return 0
    _, counts = np.unique(addresses, return_counts=True)
    return int((counts - 1).sum())


def simulate_atomic_add(
    target: np.ndarray, addresses: np.ndarray, values: np.ndarray
) -> int:
    """Apply concurrent ``atomicAdd``s; returns the contention cost.

    ``np.add.at`` is an unbuffered scatter-add, which is exactly the
    arithmetic outcome of serialised atomic adds (addition commutes, so the
    winner order does not matter for the result — only for the cost).
    """
    if addresses.shape[0] == 0:
        return 0
    np.add.at(target, addresses, values)
    return contention_cost(addresses)
