"""Device descriptions for the SIMT simulator and the cost model.

:data:`A100` mirrors the paper's evaluation GPU (Section 5.1.1: 108 SMs,
64 CUDA cores each, 80 GB global memory at 1935 GB/s, 164 KB shared memory
per SM); :data:`XEON_GOLD_6226R_DUAL` mirrors the CPU host used for the
sequential/multicore baselines.  The simulator only consumes the *residency*
numbers (how many threads/blocks run concurrently — that defines a wave);
the bandwidth/latency numbers feed :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelLaunchError

__all__ = ["DeviceSpec", "A100", "XEON_GOLD_6226R_DUAL", "CpuSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """A SIMT device, in the quantities the simulator and cost model use."""

    name: str
    num_sms: int
    cuda_cores_per_sm: int
    warp_size: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_memory_per_sm_bytes: int
    global_memory_bytes: int
    #: Peak global-memory bandwidth, bytes/second.
    global_bandwidth: float
    #: Transaction sector size for the coalescing model, bytes.
    sector_bytes: int = 32
    #: Default thread-block size used by the block-per-vertex kernel.
    default_block_size: int = 256
    #: Whether DRAM is ECC-protected (SEC-DED per :attr:`ecc_word_bytes`
    #: word).  Data-center GPUs like the A100 ship with ECC on; consumer
    #: parts model ``False`` — every upset is then potentially silent.
    ecc_enabled: bool = True
    #: ECC codeword payload width, bytes.  SEC-DED corrects 1 flipped bit
    #: per word, detects 2, and misses ≥3 (silent corruption).
    ecc_word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise KernelLaunchError(f"degenerate device spec: {self}")
        if self.default_block_size % self.warp_size:
            raise KernelLaunchError(
                f"block size {self.default_block_size} must be a multiple of "
                f"the warp size {self.warp_size}"
            )
        if self.ecc_word_bytes <= 0:
            raise KernelLaunchError(
                f"ecc_word_bytes must be positive, got {self.ecc_word_bytes}"
            )

    @property
    def max_resident_threads(self) -> int:
        """Threads executing concurrently device-wide — the thread-kernel
        wave size."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def max_resident_blocks(self) -> int:
        """Blocks resident concurrently device-wide (bounded by both the
        block-residency limit and the thread budget) — the block-kernel
        wave size."""
        by_blocks = self.num_sms * self.max_blocks_per_sm
        by_threads = self.max_resident_threads // self.default_block_size
        return max(1, min(by_blocks, by_threads))

    @property
    def warps_per_block(self) -> int:
        """Warps in a default-sized thread block."""
        return self.default_block_size // self.warp_size

    def scaled(self, factor: float, name: str | None = None) -> "DeviceSpec":
        """A device with ``factor``× the SM count — for what-if ablations."""
        return DeviceSpec(
            name=name or f"{self.name}-x{factor:g}",
            num_sms=max(1, int(self.num_sms * factor)),
            cuda_cores_per_sm=self.cuda_cores_per_sm,
            warp_size=self.warp_size,
            max_threads_per_sm=self.max_threads_per_sm,
            max_blocks_per_sm=self.max_blocks_per_sm,
            shared_memory_per_sm_bytes=self.shared_memory_per_sm_bytes,
            global_memory_bytes=self.global_memory_bytes,
            global_bandwidth=self.global_bandwidth * factor,
            sector_bytes=self.sector_bytes,
            default_block_size=self.default_block_size,
            ecc_enabled=self.ecc_enabled,
            ecc_word_bytes=self.ecc_word_bytes,
        )


@dataclass(frozen=True)
class CpuSpec:
    """A CPU host, for the baseline cost models."""

    name: str
    sockets: int
    cores_per_socket: int
    clock_ghz: float
    #: Sustained memory bandwidth per socket, bytes/second.
    bandwidth_per_socket: float

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.sockets * self.cores_per_socket


#: The paper's evaluation GPU (NVIDIA A100 80GB SXM).
A100 = DeviceSpec(
    name="NVIDIA A100",
    num_sms=108,
    cuda_cores_per_sm=64,
    warp_size=32,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_memory_per_sm_bytes=164 * 1024,
    global_memory_bytes=80 * 1024**3,
    global_bandwidth=1935e9,
)

#: The paper's CPU host for FLPA / NetworKit (dual Xeon Gold 6226R).
XEON_GOLD_6226R_DUAL = CpuSpec(
    name="2x Intel Xeon Gold 6226R",
    sockets=2,
    cores_per_socket=16,
    clock_ghz=2.9,
    bandwidth_per_socket=70e9,
)
