"""Device-memory governor: an allocation ledger over the modeled GPU.

The paper's headline result is bounded by device memory, not FLOPs — its
largest graphs barely fit an 80 GB A100, and the data-type study exists
because label/value widths decide what fits.  Real CUDA allocations fail
with ``cudaErrorMemoryAllocation``; until this module existed the
simulator's :attr:`~repro.gpu.device.DeviceSpec.global_memory_bytes` was
decoration and every subsystem "allocated" unbounded modeled memory.

:class:`MemoryGovernor` owns a per-device ledger with one row per region
kind (:data:`REGION_KINDS`): CSR arrays, label state, per-vertex
hashtable buffers (including regrowth), workspace-arena slots, integrity
golden/shadow copies, and checkpoint staging.  Call sites that used to
allocate silently now ``reserve`` before materialising and ``release``
when the region dies; a reservation that would exceed the effective
budget — ``global_memory_bytes`` minus a configurable reserved fraction,
minus any injected shrink — raises a typed, retryable
:class:`~repro.errors.DeviceOomError` *before* charging, so a failed
reservation never corrupts the ledger.

Two invariants the rest of the stack depends on:

* **Accounting never changes computation.**  The governor observes
  allocations; it does not size them.  A run under a generous budget is
  bit-identical to a run with no governor at all.
* **Release-before-reserve on regrow/shrink.**  Hashtable regrowth frees
  the old region before claiming the new one, so a regrow rung can never
  double-count ``old + new`` against the budget (see
  :meth:`~repro.core.engine_hashtable.HashtableEngine.grow_tables`).

:func:`estimate_run_footprint` is the analytic twin of the ledger: the
same component formulas the charge sites use, computed from graph shape
alone.  The service's admission control uses it to reject oversized jobs
up front (typed :class:`~repro.errors.MemoryPressure`), and the memory
soak asserts the ledger's high-water marks reconcile with it within
:data:`ESTIMATE_TOLERANCE`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DeviceOomError
from repro.gpu.device import A100, DeviceSpec

__all__ = [
    "REGION_KINDS",
    "ESTIMATE_TOLERANCE",
    "MemoryGovernor",
    "estimate_run_footprint",
    "footprint_for",
    "wave_edge_bound",
]

#: Ledger rows, one per modeled allocation class.
REGION_KINDS = (
    "csr",         # offsets/targets/weights of the (possibly compact) graph
    "labels",      # label vector + the driver's previous-labels copy
    "hashtable",   # the per-vertex key/value buffers (2|E|·capacity_scale)
    "arena",       # workspace-arena slots, charged at high-water on grow
    "integrity",   # ABFT golden CSR copies + the lazily built shadow twin
    "checkpoint",  # staging buffer while a checkpoint generation serialises
)

#: Stated reconciliation tolerance between the ledger's high-water mark
#: and the graph-aware estimate (:func:`footprint_for`).  The estimate is
#: an admission *upper bound* (the arena term is deliberately
#: conservative), so the memory soak checks a one-sided band: the
#: high-water mark must cover the exact-size regions
#: (csr + labels + hashtable) and exceed the estimated total by at most
#: ``tol * estimate``.  Usage below the total is safe headroom.
ESTIMATE_TOLERANCE = 0.35

#: Workspace-arena high-water estimate, bytes per *wave* arc.  The
#: arena's dominant slots are gather/sort/reduce scratch sized by the
#: largest residency wave's edge range (every edge-shaped role is one
#: int64 slot; the hashtable engine runs roughly twice as many roles).
#: Calibrated against a slot census of the measured ledger high-water of
#: both engines across degree regimes; ``tests/gpu/test_governor.py``
#: pins the reconciliation within :data:`ESTIMATE_TOLERANCE`.
_ARENA_BYTES_PER_WAVE_EDGE = {
    "vectorized": 230.0,
    "hashtable": 480.0,
}
#: Arena per-vertex term (frontier flags/order/degree scratch).
_ARENA_BYTES_PER_VERTEX = {
    "vectorized": 200.0,
    "hashtable": 300.0,
}


class MemoryGovernor:
    """Per-device allocation ledger with budget enforcement.

    Parameters
    ----------
    device:
        The :class:`~repro.gpu.device.DeviceSpec` whose
        ``global_memory_bytes`` caps the ledger (A100 by default).
    budget_bytes:
        Overrides the device capacity (for tests and the CLI's
        ``--memory-budget``); ``None`` uses the device's.
    reserved_fraction:
        Fraction of the budget held back for the driver/runtime (CUDA
        context, kernel images, fragmentation slack).  The effective
        budget is ``budget * (1 - reserved_fraction)``.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`; every ledger
        transaction emits a :class:`~repro.observe.trace.MemoryEvent`
        and every failure an :class:`~repro.observe.trace.OomEvent`.
    """

    __slots__ = (
        "device", "tracer", "reserved_fraction",
        "_base_budget", "_shrink_bytes",
        "_in_use", "_region_high_water",
        "high_water_bytes", "seq",
        "reserves", "releases", "ooms", "shrinks", "underflows",
    )

    def __init__(
        self,
        device: DeviceSpec = A100,
        *,
        budget_bytes: int | None = None,
        reserved_fraction: float = 0.0,
        tracer=None,
    ) -> None:
        if not 0.0 <= reserved_fraction < 1.0:
            raise ConfigurationError(
                f"reserved_fraction must lie in [0, 1); got {reserved_fraction}"
            )
        base = device.global_memory_bytes if budget_bytes is None else budget_bytes
        if base <= 0:
            raise ConfigurationError(
                f"memory budget must be positive; got {base}"
            )
        self.device = device
        self.tracer = tracer
        self.reserved_fraction = float(reserved_fraction)
        self._base_budget = int(base)
        #: Budget bytes removed by injected ``"oom"`` faults.
        self._shrink_bytes = 0
        self._in_use = dict.fromkeys(REGION_KINDS, 0)
        self._region_high_water = dict.fromkeys(REGION_KINDS, 0)
        #: Highest ledger total ever observed (the reconciliation mark).
        self.high_water_bytes = 0
        #: Transaction sequence number (the trace events' ``iteration``).
        self.seq = 0
        self.reserves = 0
        self.releases = 0
        self.ooms = 0
        self.shrinks = 0
        #: Releases that exceeded the region's charge (clamped to zero);
        #: any non-zero value is an accounting bug upstream.
        self.underflows = 0

    # ------------------------------------------------------------------ #
    # Budget arithmetic
    # ------------------------------------------------------------------ #

    @property
    def budget_bytes(self) -> int:
        """Effective budget: capacity minus reserve minus injected shrink."""
        usable = int(self._base_budget * (1.0 - self.reserved_fraction))
        return max(0, usable - self._shrink_bytes)

    @property
    def in_use_bytes(self) -> int:
        """Current ledger total across all regions."""
        return sum(self._in_use.values())

    def region_bytes(self, region: str) -> int:
        """Current charge of one region."""
        return self._in_use[region]

    def region_high_water(self, region: str) -> int:
        """Highest charge one region ever carried."""
        return self._region_high_water[region]

    def would_fit(self, nbytes: int) -> bool:
        """Whether reserving ``nbytes`` more would stay within budget."""
        return self.in_use_bytes + int(nbytes) <= self.budget_bytes

    def over_budget(self) -> bool:
        """Whether the standing ledger already exceeds the budget
        (possible after an injected mid-run shrink)."""
        return self.in_use_bytes > self.budget_bytes

    # ------------------------------------------------------------------ #
    # Ledger transactions
    # ------------------------------------------------------------------ #

    def _emit(self, region: str, action: str, nbytes: int) -> None:
        if self.tracer is not None and self.tracer.enabled:
            from repro.observe.trace import MemoryEvent

            self.tracer.emit(MemoryEvent(
                iteration=self.seq, region=region, action=action,
                nbytes=int(nbytes), in_use_bytes=self.in_use_bytes,
                budget_bytes=self.budget_bytes,
            ))

    def oom(self, region: str, requested_bytes: int) -> DeviceOomError:
        """Build (and trace) the typed error for a failed reservation."""
        self.ooms += 1
        if self.tracer is not None and self.tracer.enabled:
            from repro.observe.trace import OomEvent

            self.tracer.emit(OomEvent(
                iteration=self.seq, region=region,
                requested_bytes=int(requested_bytes),
                in_use_bytes=self.in_use_bytes,
                budget_bytes=self.budget_bytes,
            ))
        return DeviceOomError(
            f"device OOM: reserving {int(requested_bytes):,} bytes for "
            f"'{region}' with {self.in_use_bytes:,} in use would exceed "
            f"the {self.budget_bytes:,}-byte effective budget "
            f"({self.device.name})",
            region=region,
            requested_bytes=int(requested_bytes),
            in_use_bytes=self.in_use_bytes,
            budget_bytes=self.budget_bytes,
        )

    def reserve(self, region: str, nbytes: int) -> int:
        """Charge ``nbytes`` to ``region``; raise before charging on OOM.

        Returns the bytes charged so call sites can stash the figure for
        the matching :meth:`release`.
        """
        if region not in self._in_use:
            raise ConfigurationError(
                f"unknown ledger region {region!r}; expected one of "
                f"{REGION_KINDS}"
            )
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigurationError(
                f"cannot reserve a negative size ({nbytes})"
            )
        self.seq += 1
        if self.in_use_bytes + nbytes > self.budget_bytes:
            raise self.oom(region, nbytes)
        self._in_use[region] += nbytes
        self.reserves += 1
        self._region_high_water[region] = max(
            self._region_high_water[region], self._in_use[region]
        )
        self.high_water_bytes = max(self.high_water_bytes, self.in_use_bytes)
        self._emit(region, "reserve", nbytes)
        return nbytes

    def release(self, region: str, nbytes: int) -> None:
        """Return ``nbytes`` of ``region`` to the budget.

        Releasing more than the region's standing charge clamps to zero
        and counts an :attr:`underflows` — the ledger never goes
        negative, and the regression tests pin the counter at zero.
        """
        if region not in self._in_use:
            raise ConfigurationError(
                f"unknown ledger region {region!r}; expected one of "
                f"{REGION_KINDS}"
            )
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigurationError(
                f"cannot release a negative size ({nbytes})"
            )
        self.seq += 1
        if nbytes > self._in_use[region]:
            self.underflows += 1
            nbytes = self._in_use[region]
        self._in_use[region] -= nbytes
        self.releases += 1
        self._emit(region, "release", nbytes)

    def shrink_budget(
        self, nbytes: int | None = None, *, to_fraction_of_use: float = 0.5
    ) -> int:
        """Remove modeled capacity mid-run (the ``"oom"`` fault's lever).

        With an explicit ``nbytes`` that many bytes vanish from the
        effective budget.  Without one, the budget drops to
        ``to_fraction_of_use`` of the *current ledger total* — the
        deterministic "a co-tenant just grabbed half your memory" shape,
        guaranteed to leave the ledger over budget whenever anything is
        charged.  Returns the new effective budget.
        """
        self.seq += 1
        if nbytes is None:
            target = int(self.in_use_bytes * to_fraction_of_use)
            nbytes = max(0, self.budget_bytes - target)
        self._shrink_bytes += max(0, int(nbytes))
        self.shrinks += 1
        self._emit("", "shrink-budget", int(nbytes))
        return self.budget_bytes

    def restore_budget(self) -> int:
        """Undo every injected shrink (a fresh attempt on a clean device)."""
        self._shrink_bytes = 0
        return self.budget_bytes

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """JSON-ready ledger snapshot (feeds ``stats()["memory"]``)."""
        return {
            "device": self.device.name,
            "budget_bytes": self.budget_bytes,
            "reserved_fraction": self.reserved_fraction,
            "in_use_bytes": self.in_use_bytes,
            "high_water_bytes": self.high_water_bytes,
            "regions": dict(self._in_use),
            "region_high_water": dict(self._region_high_water),
            "reserves": self.reserves,
            "releases": self.releases,
            "ooms": self.ooms,
            "shrinks": self.shrinks,
            "underflows": self.underflows,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryGovernor(in_use={self.in_use_bytes:,}, "
            f"budget={self.budget_bytes:,}, ooms={self.ooms})"
        )


# ---------------------------------------------------------------------- #
# Analytic footprint estimation
# ---------------------------------------------------------------------- #


def estimate_run_footprint(
    num_vertices: int,
    num_edges: int,
    *,
    compact: bool = True,
    value_itemsize: int = 4,
    capacity_scale: float = 1.0,
    engine: str = "vectorized",
    integrity: bool = False,
    checkpointing: bool = False,
    wave_edges: int | None = None,
) -> dict:
    """Analytic peak footprint of one run, per ledger region, in bytes.

    The formulas mirror the charge sites exactly — CSR and labels are
    itemsize-accurate, the hashtable term is the two ``2·M·scale`` flat
    buffers (4-byte device keys + ``value_itemsize`` values), integrity
    doubles the CSR (golden copies) and the engine state (shadow twin),
    and the arena term is the calibrated per-wave-edge/per-vertex scratch
    high-water.  ``wave_edges`` bounds the largest residency wave's edge
    range; without it the estimate assumes the whole graph fits one wave
    (``wave_edges = M``, the conservative single-wave worst case —
    :func:`footprint_for` computes the real bound from the degree
    distribution).  ``total`` sums the components.
    """
    n, m = int(num_vertices), int(num_edges)
    index_itemsize = 4 if compact else 8
    csr = index_itemsize * (n + 1) + (index_itemsize + 4) * m
    labels = 2 * (4 if compact else 8) * n  # labels + previous-labels copy
    hashtable = 0
    if engine == "hashtable":
        slots = max(1, int(2 * m * capacity_scale))
        hashtable = slots * (4 + int(value_itemsize))
    w = m if wave_edges is None else min(int(wave_edges), m)
    arena = int(
        _ARENA_BYTES_PER_WAVE_EDGE[engine] * w
        + _ARENA_BYTES_PER_VERTEX[engine] * n
    )
    integ = 0
    if integrity:
        # Golden CSR copies plus the lazily built shadow twin (its own
        # tables and arena, grown in lockstep with the primary).
        integ = csr + hashtable + arena
    checkpoint = 0
    if checkpointing:
        # Labels + changed-flags staging while a generation serialises.
        checkpoint = (4 if compact else 8) * n + n
    components = {
        "csr": csr,
        "labels": labels,
        "hashtable": hashtable,
        "arena": arena,
        "integrity": integ,
        "checkpoint": checkpoint,
    }
    components["total"] = sum(components.values())
    return components


def wave_edge_bound(graph, config) -> int:
    """Edge range of the largest residency wave, from the degree mix.

    Vertices at or below ``switch_degree`` run on the thread-per-vertex
    kernel (waves of ``max_resident_threads`` vertices); the rest run
    block-per-vertex (waves of ``max_resident_blocks``).  The arena's
    edge-shaped scratch is sized by the largest wave it ever serves, so
    this bound — thread-wave edges plus the heaviest possible block
    wave — is what the arena estimate scales with.
    """
    degrees = np.asarray(graph.degrees)
    if degrees.shape[0] == 0:
        return 0
    device = getattr(config, "device", A100)
    switch = int(getattr(config, "switch_degree", 32))
    low = degrees <= switch
    e_low = int(degrees[low].sum())
    n_low = int(np.count_nonzero(low))
    thread_wave = device.max_resident_threads
    if n_low > thread_wave > 0:
        # Multiple thread waves: scale by the average per-wave share.
        e_thread = -(-e_low * thread_wave // n_low)
    else:
        e_thread = e_low
    high = np.sort(degrees[~low])[::-1]
    e_block = int(high[: device.max_resident_blocks].sum()) if high.shape[0] else 0
    return min(int(graph.num_edges), int(e_thread) + e_block)


def footprint_for(
    graph,
    config,
    *,
    engine: str = "vectorized",
    integrity: bool = False,
    checkpointing: bool = False,
) -> dict:
    """:func:`estimate_run_footprint` bound to a graph and an ``LPAConfig``.

    Resolves the compact-layout decision the way the driver does (the
    config wants it *and* the shape fits 32-bit indices), pulls the value
    itemsize from the config's dtype, and bounds the arena term with the
    graph's real :func:`wave_edge_bound`.  Duck-typed on purpose:
    importing :mod:`repro.core.config` here would cycle the package
    graph.
    """
    compact = bool(getattr(config, "compact_layout", True)) and (
        graph.num_edges <= np.iinfo(np.int32).max
        and graph.num_vertices <= np.iinfo(np.int32).max
    )
    value_itemsize = np.dtype(getattr(config, "value_dtype", np.float32)).itemsize
    return estimate_run_footprint(
        graph.num_vertices,
        graph.num_edges,
        compact=compact,
        value_itemsize=value_itemsize,
        engine=engine,
        integrity=integrity,
        checkpointing=checkpointing,
        wave_edges=wave_edge_bound(graph, config),
    )
