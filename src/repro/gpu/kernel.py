"""Kernel-launch records for the SIMT simulator.

A :class:`KernelLaunch` bundles what a real launch specifies — which kernel
(thread- or block-per-vertex), the grid, the device — and carries the
:class:`~repro.gpu.metrics.KernelCounters` the simulated execution
accumulates.  The driver keeps the launch list per run so experiments can
inspect e.g. how much of the work each kernel kind handled at a given
switch degree (Figure 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import KernelLaunchError
from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelCounters

__all__ = ["KernelKind", "KernelLaunch", "LaunchStatus"]


class LaunchStatus(enum.Enum):
    """Terminal state of a simulated kernel launch.

    ``COMPLETED`` is the normal case.  The other states classify how a
    supervised launch failed — the resilience layer stamps them onto its
    :class:`~repro.resilience.report.FaultEvent` records so a
    :class:`~repro.resilience.report.FaultReport` can be aggregated by
    failure class.
    """

    COMPLETED = "completed"
    #: Killed by the (simulated) driver watchdog.
    TIMEOUT = "timeout"
    #: Aborted by a device fault (overflow, CAS storm, ...).
    FAULTED = "faulted"
    #: Output discarded by the supervisor after an invariant check failed.
    CORRUPTED = "corrupted"


class KernelKind(enum.Enum):
    """The paper's two LPA kernels (Section 4.3)."""

    #: One thread per vertex — degree below SWITCH_DEGREE; no atomics
    #: needed on the private hashtable.
    THREAD_PER_VERTEX = "thread-per-vertex"
    #: One thread block per vertex — high degree; shared hashtable with
    #: atomic accumulation.
    BLOCK_PER_VERTEX = "block-per-vertex"

    @property
    def uses_atomics(self) -> bool:
        """Whether the kernel's hashtable is shared across lanes."""
        return self is KernelKind.BLOCK_PER_VERTEX


@dataclass
class KernelLaunch:
    """One simulated kernel launch and its accumulated events."""

    kind: KernelKind
    device: DeviceSpec
    num_items: int
    #: LPA iteration this launch belonged to.
    iteration: int = 0
    counters: KernelCounters = field(default_factory=KernelCounters)
    #: How the launch ended; only the resilience layer ever sets a
    #: non-``COMPLETED`` value.
    status: LaunchStatus = LaunchStatus.COMPLETED

    def __post_init__(self) -> None:
        if self.num_items < 0:
            raise KernelLaunchError(
                f"kernel launched with negative grid size {self.num_items}"
            )
        self.counters.launches = 1

    @property
    def threads_launched(self) -> int:
        """Total threads across the grid."""
        if self.kind is KernelKind.THREAD_PER_VERTEX:
            return self.num_items
        return self.num_items * self.device.default_block_size
