"""Global-memory transaction accounting with a sector coalescing model.

NVIDIA GPUs service global loads in 32-byte sectors; a warp's 32 lane
accesses cost as many sectors as distinct 32-byte regions they touch.  Two
patterns dominate the paper's kernels:

* **COALESCED** — a warp reads a contiguous range (block-per-vertex kernel
  scanning one adjacency list): sectors ≈ ceil(bytes / 32);
* **SCATTERED** — each lane reads an unrelated address (thread-per-vertex
  kernel, hashtable probes, label gathers ``C[j]``): one sector per access.

:class:`MemoryModel` turns element counts into sector counts under these
rules; exact per-address accounting (:meth:`sectors_for_addresses`) is
available where the simulator has concrete addresses, e.g. hashtable probe
traffic within a warp.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.perf.workspace import WorkspaceArena, take

__all__ = ["AccessPattern", "MemoryModel"]


class AccessPattern(enum.Enum):
    """How a warp's lanes map to addresses."""

    COALESCED = "coalesced"
    SCATTERED = "scattered"


class MemoryModel:
    """Sector-level traffic accounting for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.sector_bytes = device.sector_bytes

    def sectors_for_contiguous(self, num_elements: int, element_bytes: int) -> int:
        """Sectors for a warp-contiguous sweep over ``num_elements``."""
        if num_elements <= 0:
            return 0
        total = num_elements * element_bytes
        return -(-total // self.sector_bytes)  # ceil div

    def sectors_for_scattered(self, num_accesses: int) -> int:
        """Sectors when every access lands in its own sector (worst case)."""
        return max(0, num_accesses)

    def slots_per_sector(self, element_bytes: int) -> int:
        """How many ``element_bytes``-wide slots share one memory sector.

        DRAM faults hit whole sectors, not single elements — the fault
        injector uses this to corrupt a sector-aligned run of hashtable
        slots, the granularity at which a real bit flip would surface.
        """
        if element_bytes <= 0:
            return 1
        return max(1, self.sector_bytes // element_bytes)

    def ecc_words(self, num_bytes: int) -> int:
        """ECC codewords covering ``num_bytes`` of DRAM."""
        if num_bytes <= 0:
            return 0
        return -(-num_bytes // self.device.ecc_word_bytes)

    def secded_classify(self, bits_in_word: int) -> str:
        """What SEC-DED does with ``bits_in_word`` upset bits in one word.

        Returns ``"clean"`` (0 bits), ``"corrected"`` (1 bit, ECC on),
        ``"detected"`` (2 bits — uncorrectable, the device raises), or
        ``"silent"`` (≥3 bits alias to a valid codeword, or ECC is off
        entirely — the corruption propagates undetected).
        """
        if bits_in_word <= 0:
            return "clean"
        if not self.device.ecc_enabled:
            return "silent"
        if bits_in_word == 1:
            return "corrected"
        if bits_in_word == 2:
            return "detected"
        return "silent"

    def sectors_for_segments(
        self, segment_lengths: np.ndarray, element_bytes: int,
        pattern: AccessPattern, *, arena: WorkspaceArena | None = None,
    ) -> int:
        """Traffic for reading many variable-length segments.

        COALESCED: each segment is swept contiguously by a warp (ceil per
        segment — short segments still pay one sector).  SCATTERED: every
        element is its own sector.  ``arena`` serves the per-segment
        scratch of the COALESCED branch (``mem.`` slot).
        """
        if segment_lengths.shape[0] == 0:
            return 0
        if pattern is AccessPattern.COALESCED:
            sectors = take(arena, "mem.sectors", segment_lengths.shape[0], np.int64)
            np.multiply(segment_lengths, np.int64(element_bytes), out=sectors)
            # ceil division, in place: -(-x // sector_bytes).
            np.negative(sectors, out=sectors)
            np.floor_divide(sectors, self.sector_bytes, out=sectors)
            np.negative(sectors, out=sectors)
            return int(sectors.sum())
        return int(segment_lengths.sum())

    def sectors_for_addresses(
        self, addresses: np.ndarray, element_bytes: int, warp_ids: np.ndarray
    ) -> int:
        """Exact sector count: distinct sectors touched per warp, summed.

        Used for hashtable probe traffic where the simulator has the real
        slot addresses — this is what makes linear probing measurably
        cheaper per probe than double hashing (neighbouring probes share
        sectors).
        """
        if addresses.shape[0] == 0:
            return 0
        sectors = (addresses * np.int64(element_bytes)) // self.sector_bytes
        # Distinct (warp, sector) pairs.
        combo = warp_ids.astype(np.int64) * np.int64(2**40) + sectors
        return int(np.unique(combo).shape[0])
