"""Event counters accumulated by simulated kernels.

Every kernel launch produces a :class:`KernelCounters`; the driver sums them
per run and hands the totals to :mod:`repro.perf.model`, which converts
events into modelled seconds.  Keeping the counters as a plain additive
dataclass (``a + b`` merges) makes the accounting composable across waves,
kernels, and iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Additive event counts for one simulated kernel launch (or a sum)."""

    #: Kernel launches (each costs fixed launch latency).
    launches: int = 0
    #: Waves of resident threads/blocks the grid was executed in.
    waves: int = 0
    #: Global-memory sectors read (see MemoryModel for the coalescing rules).
    sectors_read: int = 0
    #: Global-memory sectors written.
    sectors_written: int = 0
    #: Edges scanned (CSR adjacency entries touched).
    edges_scanned: int = 0
    #: Vertices processed.
    vertices_processed: int = 0
    #: Hashtable slot inspections.
    probes: int = 0
    #: Sum over warps of the slowest lane's work (edge scans + probes) —
    #: the lockstep critical-path cost of divergence.
    warp_serial_probes: int = 0
    #: atomicCAS attempts.
    atomic_cas: int = 0
    #: atomicAdd operations.
    atomic_add: int = 0
    #: Extra serialisation from atomics contending on one address
    #: (sum over addresses of multiplicity - 1).
    atomic_conflicts: int = 0
    #: Hashtable slots cleared.
    slots_cleared: int = 0

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        return KernelCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "KernelCounters") -> "KernelCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def bytes_moved(self, sector_bytes: int) -> int:
        """Total global-memory traffic in bytes.

        ``sector_bytes`` is the transaction sector size of the device that
        produced the counters (``DeviceSpec.sector_bytes``); counters only
        record sector *counts*, so the byte conversion must come from the
        caller's device rather than a baked-in A100 constant.
        """
        if sector_bytes <= 0:
            raise ValueError(f"sector_bytes must be positive; got {sector_bytes}")
        return sector_bytes * (self.sectors_read + self.sectors_written)

    def as_dict(self) -> dict[str, int]:
        """Plain dict of all counters (report/serialisation helper)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
