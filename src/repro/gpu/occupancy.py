"""Occupancy calculator: how many blocks/threads an SM can actually host.

CUDA occupancy is the min over three per-SM constraints — the architectural
block limit, the thread budget, and shared memory.  The scheduler's wave
sizes use the default (no dynamic shared memory) numbers; this module
exposes the full calculation so ablations that *do* allocate shared memory
(A3's per-thread tables) or alternative block sizes can reason about the
residency they would really get.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelLaunchError
from repro.gpu.device import DeviceSpec

__all__ = ["Occupancy", "occupancy_for"]


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel configuration on one device."""

    blocks_per_sm: int
    threads_per_sm: int
    #: Which constraint bound the result: "blocks" | "threads" | "shared".
    limited_by: str
    #: Architectural thread budget of the SM this was computed for.
    max_threads_per_sm: int

    @property
    def occupancy_fraction(self) -> float:
        """Resident threads as a fraction of the SM's architectural max."""
        if not self.threads_per_sm:
            return 0.0
        return self.threads_per_sm / self.max_threads_per_sm

    def device_blocks(self, device: DeviceSpec) -> int:
        """Resident blocks device-wide (the block-kernel wave size)."""
        return self.blocks_per_sm * device.num_sms

    def device_threads(self, device: DeviceSpec) -> int:
        """Resident threads device-wide (the thread-kernel wave size)."""
        return self.threads_per_sm * device.num_sms


def occupancy_for(
    device: DeviceSpec,
    *,
    block_size: int | None = None,
    shared_bytes_per_block: int = 0,
) -> Occupancy:
    """Compute occupancy for a kernel configuration.

    Parameters
    ----------
    device:
        Target device.
    block_size:
        Threads per block (default: the device's default block size).
    shared_bytes_per_block:
        Dynamic shared memory each block allocates; 0 means the kernel
        only uses registers/global memory.
    """
    block_size = block_size or device.default_block_size
    if block_size < 1 or block_size % device.warp_size:
        raise KernelLaunchError(
            f"block size {block_size} must be a positive multiple of the "
            f"warp size {device.warp_size}"
        )
    if shared_bytes_per_block < 0:
        raise KernelLaunchError("shared memory per block cannot be negative")

    by_blocks = device.max_blocks_per_sm
    by_threads = device.max_threads_per_sm // block_size
    if shared_bytes_per_block > 0:
        by_shared = device.shared_memory_per_sm_bytes // shared_bytes_per_block
    else:
        by_shared = by_blocks  # unconstrained

    blocks = min(by_blocks, by_threads, by_shared)
    if blocks <= 0:
        raise KernelLaunchError(
            f"configuration does not fit: block_size={block_size}, "
            f"shared={shared_bytes_per_block}B on {device.name}"
        )

    # Attribution order on ties: a real shared-memory allocation that
    # reaches the minimum is the binding constraint even when another limit
    # ties it (adding shared memory can only ever shrink residency, so the
    # tie means shared memory is already at its wall).
    if shared_bytes_per_block > 0 and by_shared == blocks:
        limited = "shared"
    elif blocks == by_threads and by_threads <= by_blocks:
        limited = "threads"
    else:
        limited = "blocks"
    return Occupancy(
        blocks_per_sm=blocks,
        threads_per_sm=blocks * block_size,
        limited_by=limited,
        max_threads_per_sm=device.max_threads_per_sm,
    )
