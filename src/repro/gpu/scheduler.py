"""Wave scheduling: mapping a grid of work onto resident hardware.

A CUDA grid larger than the device's residency limit executes in *waves*:
the first ``max_resident`` blocks/threads run (in lockstep within warps),
then the next batch, and so on, roughly in issue order.  The simulator
makes that deterministic: work items are dispatched in index order, wave
``k`` covers items ``[k*W, (k+1)*W)``, reads within a wave observe memory as
of the wave start, and writes commit at the wave boundary.

This wave structure is what reproduces the paper's central pathology — two
symmetric adjacent vertices scheduled into the same wave adopt each other's
labels simultaneously and swap forever — while keeping runs reproducible
(real hardware would interleave nondeterministically; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelLaunchError
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelKind

__all__ = ["WavePlan", "plan_waves", "warp_assignment"]


@dataclass(frozen=True)
class WavePlan:
    """Partition of a grid of ``num_items`` work items into waves."""

    kind: KernelKind
    num_items: int
    wave_size: int

    @property
    def num_waves(self) -> int:
        """Number of waves needed."""
        if self.num_items == 0:
            return 0
        return -(-self.num_items // self.wave_size)

    def wave_bounds(self, wave: int) -> tuple[int, int]:
        """Half-open item range of wave ``wave``."""
        if not 0 <= wave < max(self.num_waves, 1):
            raise KernelLaunchError(
                f"wave {wave} out of range for {self.num_waves} waves"
            )
        lo = wave * self.wave_size
        return lo, min(lo + self.wave_size, self.num_items)

    def __iter__(self):
        for w in range(self.num_waves):
            yield self.wave_bounds(w)


def plan_waves(device: DeviceSpec, kind: KernelKind, num_items: int) -> WavePlan:
    """Build the :class:`WavePlan` for a kernel of ``num_items`` items.

    Thread-per-vertex: one item per thread, wave size =
    ``device.max_resident_threads``.  Block-per-vertex: one item per block,
    wave size = ``device.max_resident_blocks``.
    """
    if num_items < 0:
        raise KernelLaunchError(f"negative grid size {num_items}")
    if kind is KernelKind.THREAD_PER_VERTEX:
        wave = device.max_resident_threads
    elif kind is KernelKind.BLOCK_PER_VERTEX:
        wave = device.max_resident_blocks
    else:  # pragma: no cover - exhaustive enum
        raise KernelLaunchError(f"unknown kernel kind {kind}")
    return WavePlan(kind=kind, num_items=num_items, wave_size=wave)


def warp_assignment(
    device: DeviceSpec,
    kind: KernelKind,
    item_index_in_wave: np.ndarray,
    edge_rank: np.ndarray | None = None,
) -> np.ndarray:
    """Warp id of each scanned edge within a wave.

    Thread-per-vertex: vertex (= thread) ``t`` sits in warp ``t // 32``;
    every edge it scans belongs to that warp, so divergence couples the 32
    *different vertices* of the warp — the reason high-degree vertices
    starve their warp-mates.

    Block-per-vertex: vertex = block; its edges are strided across the
    block's lanes, so edge ``e`` of the vertex lands in warp
    ``block * warps_per_block + (e % block_size) // 32``.

    Parameters
    ----------
    item_index_in_wave:
        Per-edge index of the owning work item *within its wave*.
    edge_rank:
        Per-edge rank within the owning vertex's adjacency list; required
        for the block kernel, ignored for the thread kernel.
    """
    if kind is KernelKind.THREAD_PER_VERTEX:
        return item_index_in_wave // device.warp_size
    if edge_rank is None:
        raise KernelLaunchError("block-per-vertex warp mapping needs edge ranks")
    lane = edge_rank % device.default_block_size
    return item_index_in_wave * device.warps_per_block + lane // device.warp_size
