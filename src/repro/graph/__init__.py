"""Graph substrate: CSR storage, builders, IO, generators, dataset registry.

The paper operates on undirected weighted graphs in Compressed Sparse Row
(CSR) form; the same CSR offsets double as the address map for the
per-vertex hashtables (Figure 2), so :class:`CSRGraph` is the common
currency of the whole library.
"""

from repro.graph.csr import CSRGraph
from repro.graph.build import (
    from_edges,
    from_networkx,
    from_scipy_sparse,
    symmetrize_edges,
    deduplicate_edges,
)
from repro.graph.io import (
    read_edgelist,
    write_edgelist,
    read_matrix_market,
    write_matrix_market,
    read_metis,
    write_metis,
    load_graph,
)
from repro.graph.properties import (
    degree_histogram,
    degree_statistics,
    connected_components,
    is_symmetric,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_networkx",
    "from_scipy_sparse",
    "symmetrize_edges",
    "deduplicate_edges",
    "read_edgelist",
    "write_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "read_metis",
    "write_metis",
    "load_graph",
    "degree_histogram",
    "degree_statistics",
    "connected_components",
    "is_symmetric",
]
