"""Builders that turn raw edge data into :class:`~repro.graph.csr.CSRGraph`.

The paper's pipeline ensures "the edges are undirected and weighted, with a
default weight of 1" (Section 5.1.3): directed inputs get reverse edges
added, parallel edges are merged by summing weights, and vertex ids are
taken as dense ``[0, N)``.  These builders implement exactly that pipeline
with vectorised NumPy (sort-based grouping, no Python-level edge loops).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "from_edges",
    "from_networkx",
    "from_scipy_sparse",
    "symmetrize_edges",
    "deduplicate_edges",
    "coo_to_csr",
]


def _as_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(dst, dtype=VERTEX_DTYPE).ravel()
    if src.shape != dst.shape:
        raise GraphConstructionError(
            f"src and dst must have the same length; got {src.shape[0]} != {dst.shape[0]}"
        )
    if weights is None:
        w = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
    else:
        w = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if w.shape != src.shape:
            raise GraphConstructionError("weights must align with src/dst")
        if w.shape[0] and not np.all(np.isfinite(w)):
            raise GraphConstructionError(
                "edge weights must be finite (NaN/inf would silently corrupt "
                "modularity and label-weight accumulation)"
            )
    if src.shape[0] and (min(src.min(), dst.min()) < 0):
        raise GraphConstructionError("vertex ids must be non-negative")
    return src, dst, w


def symmetrize_edges(
    src: np.ndarray, dst: np.ndarray, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Add the reverse of every non-loop arc.

    Self-loops are kept single (their reverse is themselves).  Parallel
    duplicates created by symmetrising an already-undirected input are
    merged later by :func:`deduplicate_edges`.
    """
    src, dst, w = _as_edge_arrays(src, dst, weights)
    non_loop = src != dst
    return (
        np.concatenate([src, dst[non_loop]]),
        np.concatenate([dst, src[non_loop]]),
        np.concatenate([w, w[non_loop]]),
    )


def deduplicate_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    num_vertices: int | None = None,
    combine: str = "max",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge parallel arcs.

    ``combine`` chooses how duplicate weights merge: ``"max"`` (default —
    symmetrising an undirected input must not double weights), ``"sum"``
    (multigraph semantics), or ``"first"``.
    """
    src, dst, w = _as_edge_arrays(src, dst, weights)
    if src.shape[0] == 0:
        return src, dst, w
    n = num_vertices if num_vertices is not None else int(max(src.max(), dst.max())) + 1
    keys = src * np.int64(n) + dst
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    first = np.ones(keys_sorted.shape[0], dtype=bool)
    first[1:] = keys_sorted[1:] != keys_sorted[:-1]
    starts = np.flatnonzero(first)

    w_sorted = w[order]
    if combine == "sum":
        merged = np.add.reduceat(w_sorted.astype(np.float64), starts).astype(
            WEIGHT_DTYPE
        )
    elif combine == "max":
        merged = np.maximum.reduceat(w_sorted, starts)
    elif combine == "first":
        merged = w_sorted[starts]
    else:
        raise GraphConstructionError(f"unknown combine mode {combine!r}")

    uniq = keys_sorted[starts]
    return (uniq // n).astype(VERTEX_DTYPE), (uniq % n).astype(VERTEX_DTYPE), merged


def coo_to_csr(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    num_vertices: int,
) -> CSRGraph:
    """Pack already-clean COO triples into CSR with a counting sort."""
    counts = np.bincount(src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    order = np.argsort(src, kind="stable")
    return CSRGraph(offsets, dst[order], weights[order], validate=False)


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    num_vertices: int | None = None,
    symmetrize: bool = True,
    dedupe: bool = True,
    combine: str = "max",
) -> CSRGraph:
    """Build a CSR graph from edge arrays through the paper's pipeline.

    Parameters
    ----------
    src, dst:
        Endpoint arrays of equal length. Ids must be dense non-negative
        integers (no relabelling is performed).
    weights:
        Optional weights; defaults to 1.0 per edge.
    num_vertices:
        Explicit vertex count (``>= max id + 1``); inferred when omitted.
    symmetrize:
        Add reverse arcs (default), matching the paper's preprocessing of
        the directed LAW web graphs.
    dedupe:
        Merge parallel arcs with ``combine`` (default ``"max"`` so that
        symmetrising an undirected edge list is idempotent).
    """
    src, dst, w = _as_edge_arrays(src, dst, weights)
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1 if src.shape[0] else 0
    else:
        if src.shape[0] and num_vertices <= int(max(src.max(), dst.max())):
            raise GraphConstructionError(
                f"num_vertices={num_vertices} too small for max id "
                f"{int(max(src.max(), dst.max()))}"
            )

    if symmetrize:
        src, dst, w = symmetrize_edges(src, dst, w)
    if dedupe:
        src, dst, w = deduplicate_edges(
            src, dst, w, num_vertices=num_vertices, combine=combine
        )
    return coo_to_csr(src, dst, w, num_vertices)


def from_scipy_sparse(matrix, *, symmetrize: bool = True) -> CSRGraph:
    """Build from any ``scipy.sparse`` matrix (adjacency convention)."""
    import scipy.sparse as sp

    coo = sp.coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise GraphConstructionError(
            f"adjacency matrix must be square; got {coo.shape}"
        )
    return from_edges(
        coo.row.astype(VERTEX_DTYPE),
        coo.col.astype(VERTEX_DTYPE),
        coo.data.astype(WEIGHT_DTYPE),
        num_vertices=coo.shape[0],
        symmetrize=symmetrize,
    )


def from_networkx(graph) -> CSRGraph:
    """Build from a ``networkx`` graph; nodes must be integers ``0..N-1``.

    Edge attribute ``"weight"`` is honoured when present.
    """
    n = graph.number_of_nodes()
    nodes = set(graph.nodes())
    if nodes != set(range(n)):
        raise GraphConstructionError(
            "networkx graph must be labelled with consecutive integers 0..N-1; "
            "use networkx.convert_node_labels_to_integers first"
        )
    m = graph.number_of_edges()
    src = np.empty(m, dtype=VERTEX_DTYPE)
    dst = np.empty(m, dtype=VERTEX_DTYPE)
    w = np.empty(m, dtype=WEIGHT_DTYPE)
    for idx, (u, v, data) in enumerate(graph.edges(data=True)):
        src[idx] = u
        dst[idx] = v
        w[idx] = data.get("weight", 1.0)
    return from_edges(src, dst, w, num_vertices=n, symmetrize=True)
