"""Weight-constrained LPA graph coarsening (Valejo et al. 2020, cited §2).

One of the LPA applications the paper's related-work section surveys:
collapse a graph into a hierarchy of smaller ones by matching vertices
into super-vertices with label propagation, under a *super-vertex weight
constraint* so no super-vertex swallows the graph.  Multilevel partitioners
(SCLaP, PuLP, Mt-KaHIP — all cited) use exactly this as their coarsening
phase.

Each level: every vertex may adopt the group of its dominant neighbour if
the merged group weight stays within ``max_weight``; groups are then
contracted with the same weight-preserving aggregation Louvain uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import decorrelated_order
from repro.baselines.louvain import aggregate_graph
from repro.core._gather import gather_edges
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["CoarseningResult", "coarsen"]


@dataclass
class CoarseningResult:
    """A coarsening hierarchy."""

    #: Graphs per level; ``levels[0]`` is the input graph.
    levels: list[CSRGraph]
    #: For every original vertex, its super-vertex id at the coarsest level.
    mapping: np.ndarray
    #: Vertex weights (original-vertex counts) at the coarsest level.
    vertex_weights: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def coarsest(self) -> CSRGraph:
        """The smallest graph of the hierarchy."""
        return self.levels[-1]

    @property
    def reduction(self) -> float:
        """Vertex-count shrink factor from finest to coarsest."""
        fine = self.levels[0].num_vertices
        return fine / max(self.coarsest.num_vertices, 1)


def _one_level(
    graph: CSRGraph,
    weights: np.ndarray,
    max_weight: int,
    chunk: int,
) -> np.ndarray:
    """One weight-constrained LPA matching sweep; returns group labels."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    group_weight = weights.astype(np.int64).copy()

    order = decorrelated_order(np.arange(n, dtype=np.int64))
    for lo in range(0, n, chunk):
        batch = order[lo : lo + chunk]
        gather = gather_edges(graph, batch)
        targets = graph.targets[gather.edge_index]
        non_loop = targets != batch[gather.table_id]
        table_id = gather.table_id[non_loop]
        nbr_group = labels[targets[non_loop]]
        w = graph.weights[gather.edge_index][non_loop].astype(np.float64)
        if nbr_group.shape[0] == 0:
            continue

        # Group by (vertex, group), score by weight, feasibility by the
        # merged super-vertex weight.
        current = labels[batch]
        order2 = np.lexsort((nbr_group, table_id))
        t_s, g_s, w_s = table_id[order2], nbr_group[order2], w[order2]
        first = np.ones(t_s.shape[0], dtype=bool)
        first[1:] = (t_s[1:] != t_s[:-1]) | (g_s[1:] != g_s[:-1])
        starts = np.flatnonzero(first)
        sums = np.add.reduceat(w_s, starts)
        gt, gg = t_s[starts], g_s[starts]

        own_w = weights[batch]
        feasible = (gg != current[gt]) & (
            group_weight[gg] + own_w[gt] <= max_weight
        )
        score = np.where(feasible, sums, -np.inf)

        tf = np.ones(starts.shape[0], dtype=bool)
        tf[1:] = gt[1:] != gt[:-1]
        t_starts = np.flatnonzero(tf)
        t_of_g = np.cumsum(tf) - 1
        best = np.maximum.reduceat(score, t_starts)
        is_max = np.isfinite(score) & (score == best[t_of_g])
        pos = np.arange(starts.shape[0], dtype=np.int64)
        big = np.int64(np.iinfo(np.int64).max)
        first_max = np.minimum.reduceat(np.where(is_max, pos, big), t_starts)

        present = gt[t_starts]
        valid = first_max != big
        movers = present[valid]
        targets_grp = gg[first_max[valid]]

        # Commit sequentially in terms of weight bookkeeping: the chunk
        # re-checks the cap per arrival (rank trick as in the partitioner).
        order3 = np.argsort(targets_grp, kind="stable")
        tg = targets_grp[order3]
        gfirst = np.ones(tg.shape[0], dtype=bool)
        gfirst[1:] = tg[1:] != tg[:-1]
        gstart = np.flatnonzero(gfirst)
        mv = batch[movers[order3]]
        # Admit arrivals while the per-group cumulative weight stays under
        # the cap (cumulative *including* the current arrival).
        wmv = weights[mv].astype(np.int64)
        cw = np.cumsum(wmv)
        group_base = (cw - wmv)[gstart]
        cum_in_group = cw - group_base[np.cumsum(gfirst) - 1]
        admitted = group_weight[tg] + cum_in_group <= max_weight
        sel = np.flatnonzero(admitted)
        if sel.shape[0]:
            vs = mv[sel]
            np.subtract.at(group_weight, labels[vs], weights[vs])
            np.add.at(group_weight, tg[sel], weights[vs])
            labels[vs] = tg[sel]
    return labels


def coarsen(
    graph: CSRGraph,
    *,
    max_weight: int | None = None,
    target_vertices: int | None = None,
    max_levels: int = 10,
    chunk: int = 2048,
) -> CoarseningResult:
    """Build a coarsening hierarchy of ``graph``.

    Parameters
    ----------
    graph:
        Input graph (level 0).
    max_weight:
        Maximum original-vertex count per super-vertex (Valejo et al.'s
        user control); defaults to ``max(2, N // 100)``.
    target_vertices:
        Stop once the coarsest level is at most this size (default:
        ``max_weight`` granularity decides; i.e. run until no shrink).
    max_levels:
        Hierarchy depth cap.
    """
    if graph.num_vertices == 0:
        return CoarseningResult(levels=[graph], mapping=np.empty(0, dtype=VERTEX_DTYPE))
    if max_weight is None:
        max_weight = max(2, graph.num_vertices // 100)
    if max_weight < 1:
        raise ConfigurationError(f"max_weight must be >= 1; got {max_weight}")

    levels = [graph]
    mapping = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    weights = np.ones(graph.num_vertices, dtype=np.int64)

    current = graph
    for _ in range(max_levels):
        labels = _one_level(current, weights, max_weight, chunk)
        _, compact = np.unique(labels, return_inverse=True)
        new_n = int(compact.max()) + 1
        if new_n >= current.num_vertices:
            break  # no shrink; matching saturated
        coarse = aggregate_graph(current, labels)
        new_weights = np.zeros(new_n, dtype=np.int64)
        np.add.at(new_weights, compact, weights)

        mapping = compact[mapping].astype(VERTEX_DTYPE)
        weights = new_weights
        levels.append(coarse)
        current = coarse
        if target_vertices is not None and new_n <= target_vertices:
            break

    return CoarseningResult(levels=levels, mapping=mapping, vertex_weights=weights)
