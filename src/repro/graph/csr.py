"""Compressed Sparse Row graph container.

An undirected weighted graph :math:`G(V, E, w)` stored exactly the way the
paper's kernels consume it:

* ``offsets`` — ``int64[N+1]``, edge range of vertex *i* is
  ``[offsets[i], offsets[i+1])``;
* ``targets`` — ``int64[M]`` neighbour ids, where ``M`` counts each
  undirected edge in both directions (the paper's :math:`|E|` "after adding
  reverse edges");
* ``weights`` — ``float32[M]`` matching edge weights (``1.0`` when the input
  is unweighted).

The container is immutable after construction: every algorithm in the
library treats a :class:`CSRGraph` as read-only shared state, which is what
lets the GPU simulator hand the same arrays to thousands of simulated
threads without copies (see the HPC guides: views, not copies).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphConstructionError
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["CSRGraph", "structural_issues"]


def structural_issues(
    offsets: np.ndarray, targets: np.ndarray, weights: np.ndarray
) -> list[tuple[str, int, str]]:
    """Enumerate structural defects of raw CSR arrays.

    Returns ``(code, count, detail)`` triples, one per defect class found
    (empty list = structurally valid).  Shared by the constructor's
    ``validate=True`` path and :mod:`repro.resilience.validate`, so the two
    can never disagree about what "structurally valid" means.
    """
    issues: list[tuple[str, int, str]] = []
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        issues.append(
            ("bad-offsets-shape", 1, "offsets must be a 1-D array of length >= 1")
        )
        return issues  # every later check indexes offsets
    if offsets[0] != 0:
        issues.append(("bad-offsets-origin", 1, f"offsets[0] must be 0; got {int(offsets[0])}"))
    decreasing = int(np.count_nonzero(np.diff(offsets) < 0))
    if decreasing:
        issues.append(
            ("nonmonotone-offsets", decreasing,
             f"offsets must be non-decreasing; {decreasing} row(s) decrease")
        )
    if targets.ndim != 1:
        issues.append(("bad-targets-shape", 1, "targets must be a 1-D array"))
        return issues
    if offsets[-1] != targets.shape[0]:
        issues.append(
            ("offsets-targets-mismatch", 1,
             f"offsets[-1] ({int(offsets[-1])}) must equal "
             f"len(targets) ({targets.shape[0]})")
        )
    if weights.shape != targets.shape:
        issues.append(
            ("weights-targets-mismatch", 1,
             f"weights length {weights.shape[0] if weights.ndim == 1 else weights.shape} "
             f"must align with targets ({targets.shape[0]})")
        )
    n = offsets.shape[0] - 1
    if targets.shape[0]:
        out = int(np.count_nonzero((targets < 0) | (targets >= n)))
        if out:
            issues.append(
                ("out-of-range-target", out,
                 f"target ids must lie in [0, {n}); "
                 f"got range [{int(targets.min())}, {int(targets.max())}]")
            )
    return issues


class CSRGraph:
    """Immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64[N+1]`` monotonically non-decreasing, ``offsets[0] == 0``.
    targets:
        ``int64[M]`` neighbour ids with ``M == offsets[-1]``.
    weights:
        Optional ``float32[M]``; defaults to all ones (unweighted input).
    validate:
        When true (default) the arrays are checked for structural
        consistency.  Generators that construct provably valid CSR directly
        pass ``validate=False`` to skip the O(M) checks.
    """

    __slots__ = ("_offsets", "_targets", "_weights", "_degrees", "_has_self_loops")

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        validate: bool = True,
    ) -> None:
        # Arrays arriving already in the compact (int32) layout keep it —
        # see :meth:`with_compact_layout`; anything else is normalised to
        # the wide canonical dtypes.
        offsets = np.ascontiguousarray(offsets)
        if offsets.dtype != np.int32:
            offsets = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        targets = np.ascontiguousarray(targets)
        if targets.dtype != np.int32:
            targets = np.ascontiguousarray(targets, dtype=VERTEX_DTYPE)
        if weights is None:
            weights = np.ones(targets.shape[0], dtype=WEIGHT_DTYPE)
        else:
            weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)

        if validate:
            self._validate(offsets, targets, weights)

        self._offsets = offsets
        self._targets = targets
        self._weights = weights
        degrees = np.diff(offsets)
        self._degrees = degrees
        self._has_self_loops: bool | None = None

        # Freeze the buffers: algorithms share views of these arrays.
        for arr in (self._offsets, self._targets, self._weights, self._degrees):
            arr.setflags(write=False)

    @staticmethod
    def _validate(
        offsets: np.ndarray, targets: np.ndarray, weights: np.ndarray
    ) -> None:
        issues = structural_issues(offsets, targets, weights)
        if issues:
            raise GraphConstructionError(issues[0][2])

    # ------------------------------------------------------------------ #
    # Basic shape
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices :math:`N = |V|`."""
        return self._offsets.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of directed arcs :math:`M` (undirected edges count twice)."""
        return self._targets.shape[0]

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges, counting self-loops once."""
        loops = int(np.count_nonzero(self._targets == self._vertex_ids_of_targets()))
        return (self.num_edges - loops) // 2 + loops

    def _vertex_ids_of_targets(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self._degrees
        )

    @property
    def has_self_loops(self) -> bool:
        """Whether any arc points back at its source (computed once, O(M)).

        Both engines branch on this: a loop-free graph — the common case —
        skips the per-wave self-loop filter (an owner gather, a comparison,
        and three compress passes over every gathered edge).
        """
        if self._has_self_loops is None:
            self._has_self_loops = bool(
                np.any(self._targets == self._vertex_ids_of_targets())
            )
        return self._has_self_loops

    @property
    def offsets(self) -> np.ndarray:
        """CSR offsets array (read-only view)."""
        return self._offsets

    @property
    def targets(self) -> np.ndarray:
        """CSR neighbour array (read-only view)."""
        return self._targets

    @property
    def weights(self) -> np.ndarray:
        """CSR edge-weight array (read-only view)."""
        return self._weights

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (read-only view)."""
        return self._degrees

    # ------------------------------------------------------------------ #
    # Weighted quantities used by modularity / LPA
    # ------------------------------------------------------------------ #

    def weighted_degrees(self) -> np.ndarray:
        """:math:`K_i = \\sum_{j \\in J_i} w_{ij}` for every vertex.

        Computed as a segmented sum over the CSR rows; float64 accumulator
        to keep modularity arithmetic stable on large graphs.
        """
        return np.bincount(
            self.source_ids(),
            weights=self._weights.astype(np.float64),
            minlength=self.num_vertices,
        )

    def total_weight(self) -> float:
        """:math:`m = \\sum_{ij} w_{ij} / 2`, total undirected edge weight."""
        return float(self._weights.sum(dtype=np.float64) / 2.0)

    def source_ids(self) -> np.ndarray:
        """Source vertex id of every CSR arc (``int64[M]``).

        The expansion of ``offsets`` used everywhere an edge-parallel
        computation needs to know which row an arc belongs to.
        """
        return self._vertex_ids_of_targets()

    # ------------------------------------------------------------------ #
    # Access helpers
    # ------------------------------------------------------------------ #

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbour ids of vertex ``i`` (read-only view into ``targets``)."""
        return self._targets[self._offsets[i] : self._offsets[i + 1]]

    def neighbor_weights(self, i: int) -> np.ndarray:
        """Edge weights of vertex ``i``'s incident arcs (read-only view)."""
        return self._weights[self._offsets[i] : self._offsets[i + 1]]

    def degree(self, i: int) -> int:
        """Out-degree of vertex ``i``."""
        return int(self._degrees[i])

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every arc as ``(src, dst, weight)``; O(M), test/IO use only."""
        for i in range(self.num_vertices):
            lo, hi = self._offsets[i], self._offsets[i + 1]
            for e in range(lo, hi):
                yield i, int(self._targets[e]), float(self._weights[e])

    # ------------------------------------------------------------------ #
    # Dunder & misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, "
            f"avg_degree={self.num_edges / max(1, self.num_vertices):.2f})"
        )

    def __eq__(self, other: object) -> bool:
        """Full structural equality over offsets, targets, and weights.

        Dtype-insensitive on purpose: a graph and its
        :meth:`with_compact_layout` copy hold the same values and compare
        equal (``np.array_equal`` compares values, not dtypes).
        """
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._targets, other._targets)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        """Cheap structural hash: shapes plus sampled targets *and* offsets.

        Consistent with :meth:`__eq__` (equal graphs hash equal — the
        samples are value-based, so dtype doesn't matter) but deliberately
        lossy: weights are never sampled and targets/offsets only at the
        ends and midpoint, so unequal graphs can collide.  That is fine
        for hashing (collisions only cost an ``__eq__`` call) — the
        offsets samples exist so that two graphs with identical target
        streams but different row boundaries (a common corruption shape)
        land in different buckets.
        """
        n = self.num_vertices
        return hash(
            (
                n,
                self.num_edges,
                int(self._targets[0]) if self.num_edges else -1,
                int(self._targets[-1]) if self.num_edges else -1,
                int(self._offsets[n // 2]),
                int(self._offsets[-1]),
            )
        )

    def memory_bytes(self) -> int:
        """Device-accounted footprint, derived from the actual itemsizes.

        Wide layout: 8-byte offsets/targets + 4-byte weights.  Compact
        layout (:meth:`with_compact_layout`): 4-byte offsets/targets.
        """
        return self._offsets.itemsize * self._offsets.shape[0] + (
            self._targets.itemsize + self._weights.itemsize
        ) * self._targets.shape[0]

    # ------------------------------------------------------------------ #
    # Layout transforms
    # ------------------------------------------------------------------ #

    @property
    def is_compact(self) -> bool:
        """Whether offsets/targets are stored 32-bit wide."""
        return self._targets.dtype == np.int32

    def with_compact_layout(self) -> "CSRGraph":
        """This graph with 32-bit offsets and targets, when sizes allow.

        Returns ``self`` unchanged when the layout is already compact or
        when ``num_edges``/``num_vertices`` overflow int32 (offsets hold
        edge indices up to ``num_edges``, targets hold vertex ids).  The
        values are identical — only the storage width shrinks, halving
        the memory traffic of every offsets/targets gather.
        """
        if self.is_compact:
            return self
        if self.num_edges > np.iinfo(np.int32).max or (
            self.num_vertices > np.iinfo(np.int32).max
        ):
            return self
        return CSRGraph(
            self._offsets.astype(np.int32),
            self._targets.astype(np.int32),
            self._weights,
            validate=False,
        )

    def sorted_by_degree(self) -> tuple["CSRGraph", np.ndarray]:
        """Return a copy whose vertices are renumbered by ascending degree.

        Returns the permuted graph and the permutation ``perm`` such that new
        vertex ``k`` is old vertex ``perm[k]``.  Used by the two-kernel
        partitioner, which wants low-degree vertices contiguous, and by the
        driver's ``degree_renumber`` mode.

        Vectorised: every arc's destination position is its row's new start
        plus its within-row rank, both computable with gathers off the old
        CSR — no per-vertex Python loop.  (The loop implementation survives
        as :meth:`_sorted_by_degree_reference`, the differential oracle.)
        """
        n = self.num_vertices
        perm = np.argsort(self._degrees, kind="stable").astype(VERTEX_DTYPE)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(n, dtype=VERTEX_DTYPE)

        new_offsets = np.zeros(n + 1, dtype=self._offsets.dtype)
        np.cumsum(self._degrees[perm], out=new_offsets[1:])

        m = self.num_edges
        new_targets = np.empty_like(self._targets)
        new_weights = np.empty_like(self._weights)
        if m:
            src = self.source_ids()
            # dest = new_row_start[new id of src] + within-row rank
            dest = new_offsets[inverse[src]].astype(np.int64)
            dest += np.arange(m, dtype=np.int64)
            dest -= self._offsets[src]
            new_targets[dest] = inverse[self._targets]
            new_weights[dest] = self._weights
        return (
            CSRGraph(new_offsets, new_targets, new_weights, validate=False),
            perm,
        )

    def _sorted_by_degree_reference(self) -> tuple["CSRGraph", np.ndarray]:
        """Loop-based :meth:`sorted_by_degree`; differential-test oracle."""
        perm = np.argsort(self._degrees, kind="stable").astype(VERTEX_DTYPE)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(self.num_vertices, dtype=VERTEX_DTYPE)

        new_degrees = self._degrees[perm]
        new_offsets = np.zeros(self.num_vertices + 1, dtype=self._offsets.dtype)
        np.cumsum(new_degrees, out=new_offsets[1:])

        new_targets = np.empty_like(self._targets)
        new_weights = np.empty_like(self._weights)
        for new_id in range(self.num_vertices):
            old_id = perm[new_id]
            lo, hi = self._offsets[old_id], self._offsets[old_id + 1]
            nlo = new_offsets[new_id]
            new_targets[nlo : nlo + (hi - lo)] = inverse[self._targets[lo:hi]]
            new_weights[nlo : nlo + (hi - lo)] = self._weights[lo:hi]
        return (
            CSRGraph(new_offsets, new_targets, new_weights, validate=False),
            perm,
        )
