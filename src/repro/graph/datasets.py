"""Registry of the paper's 13 graphs and their synthetic stand-ins.

Each :class:`DatasetSpec` records the paper's published numbers (Table 1:
|V|, |E| after adding reverse edges, average degree, and the community count
ν-LPA found) together with a generator recipe producing a laptop-scale
stand-in of the same structural class.  Experiments run on the stand-in;
reports show both the measured stand-in values and the paper-scale values
extrapolated through the cost model.

``scale`` multiplies the default stand-in vertex counts; tests use
``scale=0.1`` to stay fast, benchmarks use ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    kmer_graph,
    lfr_like,
    road_network,
    web_graph,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "large_dataset_names",
    "get_dataset",
    "generate_standin",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table 1 plus its stand-in recipe."""

    name: str
    family: str  # "web" | "social" | "road" | "kmer"
    directed: bool
    paper_num_vertices: int
    paper_num_edges: int  # after adding reverse edges
    paper_avg_degree: float
    #: Communities ν-LPA found in the paper (None where the paper prints "?").
    paper_num_communities: int | None
    #: Builds the stand-in graph; signature (scale, seed) -> CSRGraph.
    generator: Callable[[float, int], CSRGraph] = field(repr=False)
    #: Whether the paper's Figure experiments used it as a "large graph".
    large: bool = True


def _web_standin(base_n: int, avg_degree: float):
    def build(scale: float, seed: int) -> CSRGraph:
        n = max(64, int(base_n * scale))
        return web_graph(n, avg_degree=avg_degree * 0.72, seed=seed)

    return build


def _social_standin(base_n: int, avg_degree: float, *, min_community: int, mixing: float):
    def build(scale: float, seed: int) -> CSRGraph:
        n = max(256, int(base_n * scale))
        graph, _ = lfr_like(
            n,
            avg_degree=avg_degree * 1.05,
            mixing=mixing,
            min_community=min(min_community, max(4, n // 8)),
            seed=seed,
        )
        return graph

    return build


def _road_standin(base_rows: int, base_cols: int):
    def build(scale: float, seed: int) -> CSRGraph:
        factor = max(0.05, np.sqrt(scale))
        rows = max(3, int(base_rows * factor))
        cols = max(3, int(base_cols * factor))
        return road_network(rows, cols, chain_length=6, seed=seed)

    return build


def _kmer_standin(base_n: int):
    def build(scale: float, seed: int) -> CSRGraph:
        n = max(64, int(base_n * scale))
        return kmer_graph(n, seed=seed)

    return build


#: Paper Table 1, in order. Stand-in sizes are tuned so the full benchmark
#: suite completes in minutes on one core while preserving each family's
#: degree profile.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "indochina-2004", "web", True, 7_414_866, 341_000_000, 41.0, 215_000,
            _web_standin(20_000, 41.0),
        ),
        DatasetSpec(
            "uk-2002", "web", True, 18_520_486, 567_000_000, 16.1, 541_000,
            _web_standin(30_000, 16.1),
        ),
        DatasetSpec(
            "arabic-2005", "web", True, 22_744_080, 1_210_000_000, 28.2, 364_000,
            _web_standin(30_000, 28.2),
        ),
        DatasetSpec(
            "uk-2005", "web", True, 39_459_925, 1_730_000_000, 23.7, 1_140_000,
            _web_standin(40_000, 23.7),
        ),
        DatasetSpec(
            "webbase-2001", "web", True, 118_142_155, 1_890_000_000, 8.6, 8_510_000,
            _web_standin(60_000, 8.6),
        ),
        DatasetSpec(
            "it-2004", "web", True, 41_291_594, 2_190_000_000, 27.9, 901_000,
            _web_standin(40_000, 27.9),
        ),
        DatasetSpec(
            "sk-2005", "web", True, 50_636_154, 3_800_000_000, 38.5, None,
            _web_standin(50_000, 38.5),
        ),
        DatasetSpec(
            "com-LiveJournal", "social", False, 3_997_962, 69_400_000, 17.4, 145_000,
            _social_standin(16_000, 17.4, min_community=16, mixing=0.25),
        ),
        DatasetSpec(
            "com-Orkut", "social", False, 3_072_441, 234_000_000, 76.2, 2_210,
            _social_standin(10_000, 76.2, min_community=256, mixing=0.20),
        ),
        DatasetSpec(
            "asia_osm", "road", False, 11_950_757, 25_400_000, 2.1, 2_010_000,
            _road_standin(25, 25),
        ),
        DatasetSpec(
            "europe_osm", "road", False, 50_912_018, 108_000_000, 2.1, 7_510_000,
            _road_standin(50, 50),
        ),
        DatasetSpec(
            "kmer_A2a", "kmer", False, 170_728_175, 361_000_000, 2.1, 28_800_000,
            _kmer_standin(40_000),
        ),
        DatasetSpec(
            "kmer_V1r", "kmer", False, 214_005_017, 465_000_000, 2.2, 34_700_000,
            _kmer_standin(50_000),
        ),
    ]
}


def dataset_names() -> list[str]:
    """All 13 paper graph names in Table-1 order."""
    return list(DATASETS)


def large_dataset_names() -> list[str]:
    """Names used in the paper's 'large graphs' optimisation figures."""
    return [name for name, spec in DATASETS.items() if spec.large]


def get_dataset(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by paper graph name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        ) from None


def generate_standin(name: str, *, scale: float = 1.0, seed: int = 42) -> CSRGraph:
    """Generate the stand-in graph for paper dataset ``name``.

    ``scale`` shrinks/grows the stand-in (tests pass 0.1); ``seed`` makes
    the graph reproducible across the whole experiment suite.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive; got {scale}")
    spec = get_dataset(name)
    return spec.generator(scale, seed)
