"""Synthetic graph generators standing in for the paper's dataset classes.

Table 1 of the paper spans four graph families; each has a generator here
whose outputs match the family's structural signature at laptop scale:

* **Web graphs (LAW)** — :func:`web_graph` (copying model with hierarchical
  host-block structure, heavy-tailed degrees, D_avg 8-41);
* **Social networks (SNAP)** — :func:`rmat_graph` / :func:`barabasi_albert`
  (power-law, D_avg 17-76);
* **Road networks (DIMACS10)** — :func:`road_network` (2-D lattice with
  perturbed connectivity, D_avg ~ 2.1);
* **Protein k-mer graphs (GenBank)** — :func:`kmer_graph` (unions of long
  paths with sparse branching, D_avg ~ 2.1).

All generators take an integer ``seed`` and are deterministic given it.
"""

from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.ba import barabasi_albert
from repro.graph.generators.ws import watts_strogatz
from repro.graph.generators.grid import road_network
from repro.graph.generators.kmer import kmer_graph
from repro.graph.generators.lfr import planted_partition, lfr_like
from repro.graph.generators.webgraph import web_graph

__all__ = [
    "rmat_graph",
    "barabasi_albert",
    "watts_strogatz",
    "road_network",
    "kmer_graph",
    "planted_partition",
    "lfr_like",
    "web_graph",
]
