"""Barabási–Albert preferential-attachment generator.

Classic scale-free model: each new vertex attaches to ``m`` existing
vertices with probability proportional to degree.  Used as the second
social-network stand-in (power-law exponent ~3, denser core than R-MAT).

The repeated-nodes trick (Batagelj & Brandes 2005) keeps generation O(M):
sampling uniformly from the flat list of all edge endpoints *is*
preferential attachment, no per-step probability recomputation needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["barabasi_albert"]


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> CSRGraph:
    """Generate a BA graph with ``n`` vertices and ``m`` edges per new vertex.

    The first ``m + 1`` vertices form a clique seed so every attachment
    target pool is non-empty and the graph is connected.
    """
    if m < 1 or n < m + 1:
        raise GraphConstructionError(f"need n >= m+1 >= 2; got n={n}, m={m}")
    rng = np.random.default_rng(seed)

    seed_n = m + 1
    su, sv = np.triu_indices(seed_n, k=1)
    src_parts = [su.astype(VERTEX_DTYPE)]
    dst_parts = [sv.astype(VERTEX_DTYPE)]

    # Flat endpoint pool: every endpoint appearance = one unit of degree.
    pool = np.concatenate([su, sv]).astype(VERTEX_DTYPE)
    pool_list = [pool]
    pool_size = pool.shape[0]

    # Attach in batches for vectorisation; within a batch targets are drawn
    # from the pool as of the batch start, a standard and accurate
    # approximation for batch << current size.
    new_vertices = np.arange(seed_n, n, dtype=VERTEX_DTYPE)
    batch = max(1, min(4096, n // 16))
    for lo in range(0, new_vertices.shape[0], batch):
        vs = new_vertices[lo : lo + batch]
        flat_pool = (
            np.concatenate(pool_list) if len(pool_list) > 1 else pool_list[0]
        )
        pool_list = [flat_pool]
        picks = flat_pool[rng.integers(0, pool_size, size=(vs.shape[0], m))]
        # Dedupe within each row by re-drawing collided slots once; residual
        # duplicates are merged by the CSR builder.
        srcs = np.repeat(vs, m)
        dsts = picks.ravel()
        src_parts.append(srcs)
        dst_parts.append(dsts)
        pool_list.append(srcs)
        pool_list.append(dsts)
        pool_size += 2 * srcs.shape[0]

    return from_edges(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        num_vertices=n,
        symmetrize=True,
        dedupe=True,
    )
