"""Road-network stand-in generator.

DIMACS10 OSM road graphs (asia_osm, europe_osm) are planar-ish with average
degree ~= 2.1: long chains of degree-2 vertices punctuated by sparse
intersections.  We model this as a 2-D lattice of intersections whose links
are subdivided into multi-vertex chains, then randomly thinned — matching
the degree profile (median 2, max ~ 4-6) and the very large community
counts LPA finds on these graphs (Table 1: ~1 community per 6 vertices).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["road_network"]


def road_network(
    rows: int,
    cols: int,
    *,
    chain_length: int = 8,
    thin_probability: float = 0.1,
    seed: int = 0,
) -> CSRGraph:
    """Generate a road-like graph from a ``rows x cols`` intersection grid.

    Parameters
    ----------
    rows, cols:
        Intersection grid dimensions (vertex count is roughly
        ``rows*cols*(1 + 2*(chain_length-1))``).
    chain_length:
        Each grid link becomes a path of this many edges (``>= 1``), driving
        the average degree down towards the OSM value of 2.1.
    thin_probability:
        Fraction of grid links deleted to break the perfect lattice.
    seed:
        PRNG seed.
    """
    if rows < 2 or cols < 2:
        raise GraphConstructionError(f"grid must be at least 2x2; got {rows}x{cols}")
    if chain_length < 1:
        raise GraphConstructionError(f"chain_length must be >= 1; got {chain_length}")
    if not 0.0 <= thin_probability < 1.0:
        raise GraphConstructionError(
            f"thin_probability must be in [0,1); got {thin_probability}"
        )
    rng = np.random.default_rng(seed)

    grid_ids = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)

    # Horizontal and vertical lattice links between intersections.
    h_src = grid_ids[:, :-1].ravel()
    h_dst = grid_ids[:, 1:].ravel()
    v_src = grid_ids[:-1, :].ravel()
    v_dst = grid_ids[1:, :].ravel()
    link_src = np.concatenate([h_src, v_src])
    link_dst = np.concatenate([h_dst, v_dst])

    keep = rng.random(link_src.shape[0]) >= thin_probability
    link_src, link_dst = link_src[keep], link_dst[keep]
    n_links = link_src.shape[0]

    if chain_length == 1:
        src, dst = link_src, link_dst
        n = rows * cols
    else:
        # Subdivide every link into a path with (chain_length - 1) interior
        # vertices, all allocated as one contiguous block after the grid.
        interior_per_link = chain_length - 1
        first_interior = rows * cols
        interior = (
            first_interior
            + np.arange(n_links * interior_per_link, dtype=VERTEX_DTYPE).reshape(
                n_links, interior_per_link
            )
        )
        # Path for link l: src -> interior[l,0] -> ... -> interior[l,-1] -> dst
        chain_nodes = np.concatenate(
            [link_src[:, None], interior, link_dst[:, None]], axis=1
        )
        src = chain_nodes[:, :-1].ravel()
        dst = chain_nodes[:, 1:].ravel()
        n = first_interior + n_links * interior_per_link

    return from_edges(src, dst, num_vertices=n, symmetrize=True, dedupe=True)
