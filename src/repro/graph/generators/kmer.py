"""Protein k-mer graph stand-in generator.

GenBank k-mer graphs (kmer_A2a, kmer_V1r) are de-Bruijn-style: overwhelmingly
unbranched paths (degree 2) with occasional branch vertices where sequences
diverge, average degree ~= 2.1, and tens of millions of tiny communities.
We model them as a forest of long paths whose interiors are sparsely
cross-linked at "branch" vertices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["kmer_graph"]


def kmer_graph(
    n: int,
    *,
    mean_path_length: int = 50,
    branch_probability: float = 0.03,
    seed: int = 0,
) -> CSRGraph:
    """Generate a k-mer-like graph on exactly ``n`` vertices.

    Parameters
    ----------
    n:
        Vertex count.
    mean_path_length:
        Expected length of the unbranched segments the vertex range is cut
        into (geometric cuts).
    branch_probability:
        Fraction of vertices that receive one extra edge to a random vertex
        of another segment (models sequence divergence points).
    seed:
        PRNG seed.
    """
    if n < 2:
        raise GraphConstructionError(f"need at least 2 vertices; got n={n}")
    if mean_path_length < 2:
        raise GraphConstructionError(
            f"mean_path_length must be >= 2; got {mean_path_length}"
        )
    if not 0.0 <= branch_probability <= 1.0:
        raise GraphConstructionError(
            f"branch_probability must be in [0,1]; got {branch_probability}"
        )
    rng = np.random.default_rng(seed)

    # Cut [0, n) into segments: a vertex starts a new segment with
    # probability 1/mean_path_length.
    cut = rng.random(n) < (1.0 / mean_path_length)
    cut[0] = True
    segment_id = np.cumsum(cut) - 1

    # Path edges: consecutive vertices within the same segment.
    same_seg = segment_id[:-1] == segment_id[1:]
    src = np.flatnonzero(same_seg).astype(VERTEX_DTYPE)
    dst = src + 1

    # Branch edges: random cross-links between different segments.
    n_branch = int(round(branch_probability * n))
    if n_branch:
        bsrc = rng.integers(0, n, size=n_branch).astype(VERTEX_DTYPE)
        bdst = rng.integers(0, n, size=n_branch).astype(VERTEX_DTYPE)
        ok = (bsrc != bdst) & (segment_id[bsrc] != segment_id[bdst])
        src = np.concatenate([src, bsrc[ok]])
        dst = np.concatenate([dst, bdst[ok]])

    return from_edges(src, dst, num_vertices=n, symmetrize=True, dedupe=True)
