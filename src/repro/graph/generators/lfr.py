"""Planted-partition and LFR-style benchmark generators with ground truth.

These produce graphs with *known* community structure, used by the quality
tests (modularity ordering, NMI against ground truth — the paper cites LPA's
high NMI despite moderate modularity) and by the swap-prevention experiment,
which needs graphs where community quality differences are measurable.

Both return ``(graph, ground_truth_labels)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["planted_partition", "lfr_like"]


def _sample_block_edges(
    rng: np.random.Generator,
    members_a: np.ndarray,
    members_b: np.ndarray,
    n_edges: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n_edges`` endpoint pairs between two vertex sets."""
    if n_edges <= 0 or members_a.shape[0] == 0 or members_b.shape[0] == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty
    src = members_a[rng.integers(0, members_a.shape[0], size=n_edges)]
    dst = members_b[rng.integers(0, members_b.shape[0], size=n_edges)]
    keep = src != dst
    return src[keep], dst[keep]


def planted_partition(
    n: int,
    k: int,
    *,
    p_in: float = 0.1,
    p_out: float = 0.01,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Equal-sized planted partition (a.k.a. symmetric SBM).

    ``k`` communities of ``n // k`` vertices; expected intra-pair edge
    probability ``p_in``, inter ``p_out``.  Edge counts are sampled per
    block from a binomial and endpoints drawn uniformly, which matches the
    SBM in expectation while staying O(M).
    """
    if k < 1 or n < k:
        raise GraphConstructionError(f"need n >= k >= 1; got n={n}, k={k}")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphConstructionError(
            f"need 0 <= p_out <= p_in <= 1; got p_in={p_in}, p_out={p_out}"
        )
    rng = np.random.default_rng(seed)
    labels = np.arange(n, dtype=VERTEX_DTYPE) % k
    members = [np.flatnonzero(labels == c).astype(VERTEX_DTYPE) for c in range(k)]

    srcs, dsts = [], []
    for c in range(k):
        size = members[c].shape[0]
        n_in = rng.binomial(size * (size - 1) // 2, p_in)
        s, d = _sample_block_edges(rng, members[c], members[c], int(n_in))
        srcs.append(s)
        dsts.append(d)
    for c1 in range(k):
        for c2 in range(c1 + 1, k):
            pairs = members[c1].shape[0] * members[c2].shape[0]
            n_out = rng.binomial(pairs, p_out)
            s, d = _sample_block_edges(rng, members[c1], members[c2], int(n_out))
            srcs.append(s)
            dsts.append(d)

    graph = from_edges(
        np.concatenate(srcs),
        np.concatenate(dsts),
        num_vertices=n,
        symmetrize=True,
        dedupe=True,
    )
    return graph, labels


def lfr_like(
    n: int,
    *,
    avg_degree: float = 15.0,
    max_degree: int | None = None,
    mixing: float = 0.2,
    min_community: int = 16,
    max_community: int | None = None,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """LFR-flavoured benchmark: power-law degrees *and* community sizes.

    A faithful LFR implementation rewires half-edges under hard constraints;
    we keep its two defining ingredients — power-law degree sequence with
    exponent ``degree_exponent``, power-law community sizes with exponent
    ``community_exponent``, and per-vertex mixing fraction ``mixing`` of
    inter-community edges — using expected-degree (Chung-Lu style) sampling
    inside and between communities.  That preserves the properties the
    experiments consume (tunable community strength, heavy tails) at O(M).
    """
    if n < 4:
        raise GraphConstructionError(f"need n >= 4; got {n}")
    if not 0.0 <= mixing <= 1.0:
        raise GraphConstructionError(f"mixing must be in [0,1]; got {mixing}")
    rng = np.random.default_rng(seed)
    max_degree = max_degree or max(4, int(np.sqrt(n) * 2))
    max_community = max_community or max(min_community + 1, n // 4)

    # Power-law degree sequence via inverse-CDF sampling on [2, max_degree].
    u = rng.random(n)
    lo, hi, a = 2.0, float(max_degree), degree_exponent
    deg = (lo ** (1 - a) + u * (hi ** (1 - a) - lo ** (1 - a))) ** (1.0 / (1 - a))
    deg *= avg_degree / deg.mean()
    deg = np.clip(deg, 1.0, max_degree)

    # Power-law community sizes covering all n vertices.
    sizes: list[int] = []
    remaining = n
    a_c = community_exponent
    while remaining > 0:
        u1 = rng.random()
        size = int(
            (
                min_community ** (1 - a_c)
                + u1 * (max_community ** (1 - a_c) - min_community ** (1 - a_c))
            )
            ** (1.0 / (1 - a_c))
        )
        size = min(max(size, min_community), remaining)
        if remaining - size < min_community:
            size = remaining
        sizes.append(size)
        remaining -= size

    labels = np.repeat(
        np.arange(len(sizes), dtype=VERTEX_DTYPE), np.asarray(sizes, dtype=np.int64)
    )
    rng.shuffle(labels)

    # Split each vertex's expected degree into intra / inter budgets.
    deg_in = deg * (1.0 - mixing)
    deg_out = deg * mixing

    srcs, dsts = [], []
    # Intra-community Chung-Lu: endpoints drawn proportional to deg_in.
    for c in range(len(sizes)):
        members = np.flatnonzero(labels == c).astype(VERTEX_DTYPE)
        if members.shape[0] < 2:
            continue
        w = deg_in[members]
        total = w.sum()
        n_edges = int(round(total / 2.0))
        if n_edges == 0:
            continue
        probs = w / total
        s = members[rng.choice(members.shape[0], size=n_edges, p=probs)]
        d = members[rng.choice(members.shape[0], size=n_edges, p=probs)]
        keep = s != d
        srcs.append(s[keep])
        dsts.append(d[keep])

    # Inter-community Chung-Lu over all vertices weighted by deg_out.
    total_out = deg_out.sum()
    n_out_edges = int(round(total_out / 2.0))
    if n_out_edges and total_out > 0:
        probs = deg_out / total_out
        s = rng.choice(n, size=n_out_edges, p=probs).astype(VERTEX_DTYPE)
        d = rng.choice(n, size=n_out_edges, p=probs).astype(VERTEX_DTYPE)
        keep = (s != d) & (labels[s] != labels[d])
        srcs.append(s[keep])
        dsts.append(d[keep])

    graph = from_edges(
        np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE),
        np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE),
        num_vertices=n,
        symmetrize=True,
        dedupe=True,
    )
    return graph, labels
