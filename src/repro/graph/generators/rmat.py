"""Recursive-MATrix (R-MAT) graph generator.

R-MAT (Chakrabarti, Zhan & Faloutsos, SDM'04) recursively drops each edge
into a quadrant of the adjacency matrix with probabilities ``(a, b, c, d)``,
producing the heavy-tailed, community-rich structure typical of social
networks such as com-Orkut and com-LiveJournal from the paper's Table 1.

The implementation draws all quadrant decisions for all edges at once
(``scale`` rounds of vectorised Bernoulli draws), so generation is O(M·scale)
NumPy work with no Python-level edge loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: float = 16.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Generate an undirected R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count; Graph500 convention.
    edge_factor:
        Target undirected edges per vertex *before* deduplication; the
        returned graph has somewhat fewer because parallel edges merge.
    a, b, c:
        Quadrant probabilities (``d = 1 - a - b - c``); the defaults are the
        Graph500 constants that give social-network-like skew.
    seed:
        PRNG seed.
    drop_self_loops:
        Remove loops before building (default true; the paper's kernels
        skip ``j == i`` during accumulation anyway).
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or scale < 0:
        raise GraphConstructionError(
            f"invalid R-MAT parameters a={a} b={b} c={c} (d={d}), scale={scale}"
        )
    n = 1 << scale
    m = int(round(edge_factor * n))
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=VERTEX_DTYPE)
    dst = np.zeros(m, dtype=VERTEX_DTYPE)
    # Per-level quadrant selection: row bit set with prob (c+d), and the
    # column-bit probability depends on the row bit (b/(a+b) vs d/(c+d)).
    p_row = c + d
    p_col_given_top = b / (a + b) if (a + b) > 0 else 0.0
    p_col_given_bot = d / (c + d) if (c + d) > 0 else 0.0
    for _ in range(scale):
        row_bit = rng.random(m) < p_row
        p_col = np.where(row_bit, p_col_given_bot, p_col_given_top)
        col_bit = rng.random(m) < p_col
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit

    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]

    return from_edges(src, dst, num_vertices=n, symmetrize=True, dedupe=True)
