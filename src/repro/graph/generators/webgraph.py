"""Web-graph stand-in generator (LAW crawl style).

LAW crawls (indochina-2004, uk-2002, it-2004, ...) have two signatures that
matter for LPA performance: extremely heavy-tailed degrees (hubs with 1e4+
links driving the block-per-vertex kernel) and strong host-locality (pages
on one host link mostly to each other — the reason LPA finds hundreds of
thousands of communities).  We model both directly:

* vertices are grouped into contiguous *hosts* with Pareto-distributed
  sizes (real crawls mix huge portals with a long tail of tiny sites);
* every page carries a Pareto *popularity* weight; link destinations are
  sampled proportional to popularity — within the source's host for most
  links, globally for a small ``cross_host_fraction`` — which yields a
  power-law in-degree tail (Chung-Lu attachment) with genuine hubs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["web_graph"]


def web_graph(
    n: int,
    *,
    avg_degree: float = 20.0,
    mean_host_size: int = 64,
    popularity_exponent: float = 1.2,
    cross_host_fraction: float = 0.08,
    seed: int = 0,
) -> CSRGraph:
    """Generate a web-crawl-like graph on ``n`` vertices.

    Parameters
    ----------
    n:
        Vertex count.
    avg_degree:
        Target average directed degree before symmetrisation (the
        undirected result lands near ``2 * avg_degree`` minus dedup).
    mean_host_size:
        Mean host (community) size; sizes are Pareto-tailed.
    popularity_exponent:
        Pareto shape of per-page popularity; smaller = heavier in-degree
        tail (1.1-1.5 reproduces crawl-like hubs).
    cross_host_fraction:
        Fraction of links leaving the source's host.
    seed:
        PRNG seed.
    """
    if n < 4:
        raise GraphConstructionError(f"need n >= 4; got {n}")
    if avg_degree <= 0:
        raise GraphConstructionError(f"avg_degree must be positive; got {avg_degree}")
    if not 0.0 <= cross_host_fraction <= 1.0:
        raise GraphConstructionError(
            f"cross_host_fraction must be in [0,1]; got {cross_host_fraction}"
        )
    rng = np.random.default_rng(seed)

    # Host assignment: contiguous blocks with Pareto-tailed sizes.
    sizes: list[int] = []
    total = 0
    while total < n:
        size = int(min(rng.pareto(1.5) * mean_host_size / 2 + 2, n - total))
        sizes.append(size)
        total += size
    host_size = np.asarray(sizes, dtype=np.int64)
    host_start = np.zeros(host_size.shape[0], dtype=np.int64)
    np.cumsum(host_size[:-1], out=host_start[1:])
    host = np.repeat(np.arange(host_size.shape[0], dtype=np.int64), host_size)

    # Per-page popularity; destinations are drawn proportional to it.
    popularity = rng.pareto(popularity_exponent, size=n) + 0.1

    m = int(round(avg_degree * n))
    src = rng.integers(0, n, size=m).astype(VERTEX_DTYPE)
    dst = np.empty(m, dtype=VERTEX_DTYPE)
    cross = rng.random(m) < cross_host_fraction

    # Cross-host links: popularity-weighted global sampling (inverse CDF).
    cum_global = np.cumsum(popularity)
    n_cross = int(cross.sum())
    if n_cross:
        u = rng.random(n_cross) * cum_global[-1]
        dst[cross] = np.searchsorted(cum_global, u).astype(VERTEX_DTYPE)

    # Within-host links: popularity-weighted sampling *inside the source's
    # host segment*, via segmented inverse CDF (vertices are already
    # contiguous per host).
    within_idx = np.flatnonzero(~cross)
    if within_idx.shape[0]:
        h = host[src[within_idx]]
        seg_lo = host_start[h]
        seg_hi = seg_lo + host_size[h]
        lo_cum = np.where(seg_lo > 0, cum_global[seg_lo - 1], 0.0)
        hi_cum = cum_global[seg_hi - 1]
        u = lo_cum + rng.random(within_idx.shape[0]) * (hi_cum - lo_cum)
        dst[within_idx] = np.searchsorted(cum_global, u).astype(VERTEX_DTYPE)

    dst = np.minimum(dst, n - 1)  # guard float-edge rounding at the CDF top
    keep = src != dst
    return from_edges(
        src[keep], dst[keep], num_vertices=n, symmetrize=True, dedupe=True
    )
