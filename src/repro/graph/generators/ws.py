"""Watts–Strogatz small-world generator.

Ring lattice of degree ``k`` with each edge rewired with probability ``p``.
Not one of the paper's four dataset families, but a useful stress case for
LPA: at ``p = 0`` the graph is perfectly symmetric, the worst case for
community swaps, which is exactly what the Pick-Less experiments probe.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["watts_strogatz"]


def watts_strogatz(n: int, k: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Generate a WS graph with ``n`` vertices, even ``k``, rewire prob ``p``."""
    if k % 2 or k < 2 or k >= n:
        raise GraphConstructionError(f"k must be even with 2 <= k < n; got k={k}")
    if not 0.0 <= p <= 1.0:
        raise GraphConstructionError(f"rewire probability must be in [0,1]; got {p}")
    rng = np.random.default_rng(seed)

    base = np.arange(n, dtype=VERTEX_DTYPE)
    srcs, dsts = [], []
    for hop in range(1, k // 2 + 1):
        src = base
        dst = (base + hop) % n
        rewire = rng.random(n) < p
        dst = dst.copy()
        dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
        # Avoid creating self-loops from rewiring.
        loops = dst == src
        dst[loops] = (src[loops] + 1 + hop) % n
        srcs.append(src)
        dsts.append(dst)

    return from_edges(
        np.concatenate(srcs),
        np.concatenate(dsts),
        num_vertices=n,
        symmetrize=True,
        dedupe=True,
    )
