"""Graph file IO: edge lists, Matrix Market, and METIS formats.

The paper loads SuiteSparse ``.mtx`` files; we support that format plus the
plain SNAP-style edge lists and METIS adjacency files common in the
community-detection literature, all funnelling into the same
:func:`repro.graph.build.from_edges` pipeline.
"""

from __future__ import annotations

import contextlib
import gzip
import io
import zlib
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "read_metis",
    "write_metis",
    "load_graph",
]


def _open_text(path: str | Path, mode: str = "rt") -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def _compressed_offset(fh: IO[str]) -> int | None:
    """Best-effort compressed byte position of a gzip text stream."""
    try:
        raw = getattr(fh, "buffer", fh)  # TextIOWrapper -> GzipFile
        inner = getattr(raw, "fileobj", None)  # GzipFile -> raw file
        if inner is not None:
            return int(inner.tell())
    except (OSError, ValueError):
        pass
    return None


@contextlib.contextmanager
def _truncation_guard(path: str | Path, fh: IO[str]) -> Iterator[None]:
    """Convert gzip truncation/corruption into :class:`GraphFormatError`.

    A ``.gz`` edge list cut off mid-transfer otherwise surfaces as a bare
    ``EOFError`` (no end-of-stream marker) or ``BadGzipFile``/``zlib.error``
    (corrupt CRC or deflate data) from deep inside the decompressor, with no
    hint of which file or where.
    """
    try:
        yield
    except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
        offset = _compressed_offset(fh)
        where = f" near compressed byte {offset}" if offset is not None else ""
        detail = str(exc) or type(exc).__name__
        raise GraphFormatError(
            f"{path}: truncated or corrupt gzip stream{where}: {detail}"
        ) from exc


# --------------------------------------------------------------------- #
# Parse-time weight hygiene
# --------------------------------------------------------------------- #

_WEIGHT_POLICIES = ("strict", "repair", "quarantine")


def _weight_hygiene(
    w: np.ndarray | None,
    linenos: np.ndarray | None,
    path: str | Path,
    policy: str,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Apply a weight-defect policy to freshly parsed edge weights.

    NaN, infinite, fp32-overflowing, and negative weights are defects no
    reader should let through silently: they poison the label-score
    accumulators downstream.  Returns ``(weights, keep_mask)`` where
    ``keep_mask`` is ``None`` unless ``quarantine`` dropped entries.

    ``strict`` raises :class:`GraphFormatError` naming the first offending
    file line; ``repair`` rewrites in place (NaN → 1.0, overflow/+Inf →
    fp32 max, negative → 0.0, matching
    :func:`repro.resilience.validate.repair_weight_values`); ``quarantine``
    drops the offending entries.
    """
    if policy not in _WEIGHT_POLICIES:
        raise GraphFormatError(
            f"unknown weight policy {policy!r}; choose from {_WEIGHT_POLICIES}"
        )
    if w is None or w.shape[0] == 0:
        return w, None
    # Deferred import: repro.resilience.validate imports the graph builders,
    # which would re-enter this module during package initialisation.
    from repro.resilience.validate import classify_weights, repair_weight_values

    defects = classify_weights(w)
    if not defects.total:
        return w, None
    if policy == "repair":
        fixed, _ = repair_weight_values(w, defects)
        return fixed, None
    if policy == "quarantine":
        return w, ~defects.any_mask
    bad = defects.any_mask
    idx = int(np.flatnonzero(bad)[0])
    kind = (
        "NaN" if defects.nan[idx]
        else "overflowing/infinite" if defects.overflow[idx]
        else "negative"
    )
    where = (
        f" on line {int(linenos[idx])}" if linenos is not None else f" at entry {idx}"
    )
    more = f" (+{defects.total - 1} more defective weight(s))" if defects.total > 1 else ""
    raise GraphFormatError(
        f"{path}: {kind} edge weight {float(w[idx])!r}{where}{more}; "
        f"pass validate='repair' or 'quarantine' to load anyway"
    )


# --------------------------------------------------------------------- #
# Edge lists (SNAP style)
# --------------------------------------------------------------------- #


def read_edgelist(
    path: str | Path,
    *,
    comments: str = "#",
    weighted: bool | None = None,
    symmetrize: bool = True,
    validate: str = "strict",
) -> CSRGraph:
    """Read a whitespace-separated edge list.

    Lines are ``u v`` or ``u v w``; ``weighted=None`` auto-detects from the
    first data line.  Comment lines starting with ``comments`` (SNAP uses
    ``#``) are skipped.  Ids need not be dense — they are compacted.
    ``validate`` is the weight-defect policy (``strict``/``repair``/
    ``quarantine``; see :func:`_weight_hygiene`).
    """
    rows: list[str] = []
    row_linenos: list[int] = []
    with _open_text(path) as fh, _truncation_guard(path, fh):
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            rows.append(line)
            row_linenos.append(lineno)
    if not rows:
        return from_edges(
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=VERTEX_DTYPE),
            num_vertices=0,
        )

    first_cols = rows[0].split()
    if weighted is None:
        weighted = len(first_cols) >= 3
    ncols = 3 if weighted else 2

    try:
        data = np.loadtxt(
            io.StringIO("\n".join(rows)), dtype=np.float64, usecols=range(ncols),
            ndmin=2,
        )
    except ValueError as exc:
        raise GraphFormatError(f"malformed edge list {path}: {exc}") from exc

    src = data[:, 0].astype(VERTEX_DTYPE)
    dst = data[:, 1].astype(VERTEX_DTYPE)
    w = None
    if weighted:
        w, keep = _weight_hygiene(
            data[:, 2], np.asarray(row_linenos, dtype=np.int64), path, validate
        )
        if keep is not None:
            src, dst, w = src[keep], dst[keep], w[keep]
        w = w.astype(WEIGHT_DTYPE)

    # Compact ids: SNAP graphs frequently have gaps.
    ids = np.unique(np.concatenate([src, dst]))
    remap = np.searchsorted(ids, np.concatenate([src, dst]))
    src, dst = remap[: src.shape[0]], remap[src.shape[0] :]
    return from_edges(src, dst, w, num_vertices=ids.shape[0], symmetrize=symmetrize)


def write_edgelist(graph: CSRGraph, path: str | Path, *, weighted: bool = True) -> None:
    """Write each undirected edge once (``u <= v``) as ``u v [w]``."""
    src = graph.source_ids()
    keep = src <= graph.targets
    with _open_text(path, "wt") as fh:
        fh.write(f"# repro edge list: {graph.num_vertices} vertices\n")
        s, d, w = src[keep], graph.targets[keep], graph.weights[keep]
        for i in range(s.shape[0]):
            if weighted:
                fh.write(f"{s[i]} {d[i]} {w[i]:g}\n")
            else:
                fh.write(f"{s[i]} {d[i]}\n")


# --------------------------------------------------------------------- #
# Matrix Market
# --------------------------------------------------------------------- #


def read_matrix_market(
    path: str | Path, *, symmetrize: bool = True, validate: str = "strict"
) -> CSRGraph:
    """Read a SuiteSparse-style ``.mtx`` adjacency matrix.

    Supports ``coordinate`` format with ``pattern``/``real``/``integer``
    fields and ``general``/``symmetric`` symmetry.  A ``symmetric`` header
    stores the lower triangle only; the builder restores reverse arcs.
    ``validate`` is the weight-defect policy (``strict``/``repair``/
    ``quarantine``; see :func:`_weight_hygiene`).
    """
    with _open_text(path) as fh, _truncation_guard(path, fh):
        header = fh.readline()
        # First body line: header (1) + size line (1) + 1 = 3, plus one per
        # comment line skipped below.
        body_start = 3
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphFormatError(
                f"{path}: only 'matrix coordinate' files are supported"
            )
        field, symmetry = tokens[3], tokens[4]
        if field not in ("pattern", "real", "integer"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
            body_start += 1
        try:
            nrows, ncols, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise GraphFormatError(f"{path}: bad size line {line!r}") from exc
        if nrows != ncols:
            raise GraphFormatError(f"{path}: adjacency must be square")

        body = fh.read()

    ncols_data = 2 if field == "pattern" else 3
    data = np.loadtxt(io.StringIO(body), dtype=np.float64, ndmin=2)
    if data.shape[0] != nnz:
        raise GraphFormatError(
            f"{path}: header promises {nnz} entries, file has {data.shape[0]}"
        )
    if data.shape[0] and data.shape[1] < ncols_data:
        raise GraphFormatError(f"{path}: expected {ncols_data} columns")

    src = data[:, 0].astype(VERTEX_DTYPE) - 1  # 1-indexed on disk
    dst = data[:, 1].astype(VERTEX_DTYPE) - 1
    w = None
    if field != "pattern":
        linenos = body_start + np.arange(data.shape[0], dtype=np.int64)
        w, keep = _weight_hygiene(data[:, 2], linenos, path, validate)
        if keep is not None:
            src, dst, w = src[keep], dst[keep], w[keep]
        w = w.astype(WEIGHT_DTYPE)
    return from_edges(src, dst, w, num_vertices=nrows, symmetrize=symmetrize)


def write_matrix_market(graph: CSRGraph, path: str | Path) -> None:
    """Write the lower triangle as a symmetric real coordinate matrix."""
    src = graph.source_ids()
    keep = src >= graph.targets  # lower triangle incl. diagonal
    s, d, w = src[keep], graph.targets[keep], graph.weights[keep]
    with _open_text(path, "wt") as fh:
        fh.write("%%MatrixMarket matrix coordinate real symmetric\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {s.shape[0]}\n")
        for i in range(s.shape[0]):
            fh.write(f"{s[i] + 1} {d[i] + 1} {w[i]:g}\n")


# --------------------------------------------------------------------- #
# METIS
# --------------------------------------------------------------------- #


def read_metis(path: str | Path, *, validate: str = "strict") -> CSRGraph:
    """Read a METIS adjacency file (1-indexed; optional edge weights).

    Blank lines are significant — they are the adjacency rows of isolated
    vertices — so only comment lines are dropped.  ``validate`` is the
    weight-defect policy (``strict``/``repair``/``quarantine``; see
    :func:`_weight_hygiene`), applied with vertex-line context.
    """
    with _open_text(path) as fh, _truncation_guard(path, fh):
        numbered = [
            (no, ln.strip())
            for no, ln in enumerate(fh, 1)
            if not ln.startswith("%")
        ]
    while numbered and not numbered[-1][1]:
        numbered.pop()  # trailing newline padding
    if not numbered or not numbered[0][1]:
        raise GraphFormatError(f"{path}: empty METIS file")
    head = numbered[0][1].split()
    if len(head) < 2:
        raise GraphFormatError(f"{path}: bad METIS header {numbered[0][1]!r}")
    n, m = int(head[0]), int(head[1])
    fmt = head[2] if len(head) > 2 else "0"
    has_edge_weights = len(fmt) >= 1 and fmt[-1] == "1"
    if len(numbered) - 1 != n:
        raise GraphFormatError(
            f"{path}: header promises {n} vertex lines, found {len(numbered) - 1}"
        )

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    ws: list[np.ndarray] = []
    linenos: list[np.ndarray] = []
    for i, (lineno, line) in enumerate(numbered[1:]):
        vals = np.fromstring(line, dtype=np.float64, sep=" ")
        if has_edge_weights:
            if vals.shape[0] % 2:
                raise GraphFormatError(f"{path}: odd token count on line {lineno}")
            nbrs = vals[0::2].astype(VERTEX_DTYPE) - 1
            wts = vals[1::2]
        else:
            nbrs = vals.astype(VERTEX_DTYPE) - 1
            wts = np.ones(nbrs.shape[0], dtype=np.float64)
        srcs.append(np.full(nbrs.shape[0], i, dtype=VERTEX_DTYPE))
        dsts.append(nbrs)
        ws.append(wts)
        linenos.append(np.full(nbrs.shape[0], lineno, dtype=np.int64))

    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE)
    w = np.concatenate(ws) if ws else np.empty(0, dtype=np.float64)
    lines64 = np.concatenate(linenos) if linenos else np.empty(0, dtype=np.int64)
    w, keep = _weight_hygiene(w, lines64, path, validate)
    dropped = keep is not None
    if dropped:
        src, dst, w = src[keep], dst[keep], w[keep]
    graph = from_edges(
        src, dst, w.astype(WEIGHT_DTYPE), num_vertices=n, symmetrize=True
    )
    if not dropped and graph.num_undirected_edges != m:
        # METIS headers count undirected edges; tolerate mismatch but flag
        # it.  Skipped after quarantine — dropping arcs changes the count
        # on purpose.
        raise GraphFormatError(
            f"{path}: header edge count {m} != parsed {graph.num_undirected_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write METIS format with edge weights (fmt code 001)."""
    with _open_text(path, "wt") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_undirected_edges} 001\n")
        for i in range(graph.num_vertices):
            nbrs = graph.neighbors(i)
            wts = graph.neighbor_weights(i)
            parts = [f"{nbrs[k] + 1} {wts[k]:g}" for k in range(nbrs.shape[0])]
            fh.write(" ".join(parts) + "\n")


# --------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------- #

_SUFFIX_READERS = {
    ".mtx": read_matrix_market,
    ".graph": read_metis,
    ".metis": read_metis,
    ".txt": read_edgelist,
    ".edges": read_edgelist,
    ".el": read_edgelist,
}


def load_graph(path: str | Path, *, validate: str = "strict") -> CSRGraph:
    """Load a graph, dispatching on file suffix (``.gz`` transparent).

    ``validate`` is the parse-time weight-defect policy threaded to every
    reader (``strict``/``repair``/``quarantine``); the full structural
    sweep lives in :func:`repro.resilience.validate.validate_graph` and
    runs via ``nu_lpa(..., validate=...)``.
    """
    p = Path(path)
    suffix = p.suffixes[-2] if p.suffix == ".gz" and len(p.suffixes) >= 2 else p.suffix
    reader = _SUFFIX_READERS.get(suffix)
    if reader is None:
        raise GraphFormatError(
            f"cannot infer format of {path!r}; known suffixes: "
            f"{sorted(_SUFFIX_READERS)}"
        )
    return reader(p, validate=validate)
