"""Structural graph properties: degrees, components, symmetry checks.

These are the sanity checks the experiment harness runs on every generated
stand-in graph before benchmarking (e.g. a "road network" stand-in must have
average degree near 2.1 and be dominated by a giant component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "degree_histogram",
    "degree_statistics",
    "DegreeStatistics",
    "connected_components",
    "largest_component_fraction",
    "is_symmetric",
    "has_self_loops",
    "power_law_exponent_estimate",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a degree distribution."""

    min: int
    max: int
    mean: float
    median: float
    std: float
    #: Fraction of vertices with degree below the paper's SWITCH_DEGREE (32).
    frac_low_degree: float
    #: Gini coefficient of the degree distribution (0 = uniform, →1 = skewed).
    gini: float


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    return np.bincount(graph.degrees)


def degree_statistics(graph: CSRGraph, *, switch_degree: int = 32) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    deg = graph.degrees
    if deg.shape[0] == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    sorted_deg = np.sort(deg).astype(np.float64)
    n = sorted_deg.shape[0]
    total = sorted_deg.sum()
    if total > 0:
        # Gini via the sorted-values formula.
        idx = np.arange(1, n + 1, dtype=np.float64)
        gini = float((2.0 * (idx * sorted_deg).sum() / (n * total)) - (n + 1.0) / n)
    else:
        gini = 0.0
    return DegreeStatistics(
        min=int(deg.min()),
        max=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        std=float(deg.std()),
        frac_low_degree=float(np.mean(deg < switch_degree)),
        gini=gini,
    )


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex via iterative label propagation of minima.

    A frontier-based min-label sweep: O((N + M) * diameter-ish) but fully
    vectorised per round, fast enough for test/benchmark-scale graphs and
    with no recursion limits.
    """
    n = graph.num_vertices
    comp = np.arange(n, dtype=VERTEX_DTYPE)
    if graph.num_edges == 0:
        return comp
    src = graph.source_ids()
    dst = graph.targets
    while True:
        # Pull the minimum component id across each edge, both directions.
        pulled = comp.copy()
        np.minimum.at(pulled, src, comp[dst])
        np.minimum.at(pulled, dst, comp[src])
        if np.array_equal(pulled, comp):
            break
        comp = pulled
    # Pointer-jump to canonical representatives, then compact to 0..k-1.
    while True:
        jumped = comp[comp]
        if np.array_equal(jumped, comp):
            break
        comp = jumped
    _, compacted = np.unique(comp, return_inverse=True)
    return compacted.astype(VERTEX_DTYPE)


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest connected component."""
    if graph.num_vertices == 0:
        return 0.0
    comp = connected_components(graph)
    return float(np.bincount(comp).max() / graph.num_vertices)


def is_symmetric(graph: CSRGraph) -> bool:
    """True iff every arc ``(u, v, w)`` has a matching ``(v, u, w)``."""
    src = graph.source_ids()
    dst = graph.targets
    n = graph.num_vertices
    fwd = src * np.int64(n) + dst
    rev = dst * np.int64(n) + src
    order_f = np.argsort(fwd, kind="stable")
    order_r = np.argsort(rev, kind="stable")
    if not np.array_equal(fwd[order_f], rev[order_r]):
        return False
    return bool(
        np.allclose(graph.weights[order_f], graph.weights[order_r], rtol=1e-6)
    )


def has_self_loops(graph: CSRGraph) -> bool:
    """True iff any arc starts and ends at the same vertex."""
    return bool(np.any(graph.source_ids() == graph.targets))


def power_law_exponent_estimate(graph: CSRGraph, *, d_min: int = 2) -> float:
    """Maximum-likelihood (Hill) estimate of the degree tail exponent.

    Used to verify web/social stand-ins are heavy-tailed (alpha typically in
    [1.8, 3.0]) and road/k-mer stand-ins are not.  Returns ``inf`` when no
    vertex has degree >= ``d_min``.
    """
    deg = graph.degrees[graph.degrees >= d_min].astype(np.float64)
    if deg.shape[0] == 0:
        return float("inf")
    return 1.0 + deg.shape[0] / np.log(deg / (d_min - 0.5)).sum()
