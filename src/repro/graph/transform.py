"""Graph transformations: subgraphs, relabeling, component extraction.

Utilities a downstream user needs around the core algorithm: cutting a
detected community out for inspection, restricting to the giant component
before benchmarking, or permuting vertex ids (the degree-sorted order the
two-kernel partition likes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import coo_to_csr
from repro.graph.csr import CSRGraph
from repro.graph.properties import connected_components
from repro.types import VERTEX_DTYPE

__all__ = [
    "induced_subgraph",
    "largest_component",
    "permute_vertices",
    "remove_self_loops",
    "community_subgraph",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, mapping)`` where ``mapping[k]`` is the original id
    of the subgraph's vertex ``k``.  Duplicate ids are rejected.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE).ravel()
    if vertices.shape[0] != np.unique(vertices).shape[0]:
        raise GraphConstructionError("induced_subgraph: duplicate vertex ids")
    if vertices.shape[0] and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise GraphConstructionError("induced_subgraph: vertex id out of range")

    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    new_id = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    new_id[vertices] = np.arange(vertices.shape[0], dtype=VERTEX_DTYPE)

    src = graph.source_ids()
    dst = graph.targets
    mask = keep[src] & keep[dst]
    sub = coo_to_csr(
        new_id[src[mask]], new_id[dst[mask]], graph.weights[mask],
        vertices.shape[0],
    )
    return sub, vertices


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest connected component."""
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=VERTEX_DTYPE)
    comp = connected_components(graph)
    biggest = int(np.argmax(np.bincount(comp)))
    return induced_subgraph(graph, np.flatnonzero(comp == biggest))


def permute_vertices(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Renumber vertices so that new vertex ``k`` is old vertex ``perm[k]``."""
    perm = np.asarray(perm, dtype=VERTEX_DTYPE)
    if not np.array_equal(np.sort(perm), np.arange(graph.num_vertices)):
        raise GraphConstructionError("perm must be a permutation of 0..N-1")
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    src = inverse[graph.source_ids()]
    dst = inverse[graph.targets]
    return coo_to_csr(
        src, dst, graph.weights, graph.num_vertices
    )


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Copy of ``graph`` without self-loop arcs."""
    src = graph.source_ids()
    keep = src != graph.targets
    return coo_to_csr(
        src[keep], graph.targets[keep], graph.weights[keep], graph.num_vertices
    )


def community_subgraph(
    graph: CSRGraph, labels: np.ndarray, community: int
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of one detected community."""
    labels = np.asarray(labels)
    members = np.flatnonzero(labels == community)
    if members.shape[0] == 0:
        raise GraphConstructionError(f"community {community} has no members")
    return induced_subgraph(graph, members)
