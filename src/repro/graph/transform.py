"""Graph transformations: subgraphs, relabeling, component extraction, deltas.

Utilities a downstream user needs around the core algorithm: cutting a
detected community out for inspection, restricting to the giant component
before benchmarking, or permuting vertex ids (the degree-sorted order the
two-kernel partition likes).

The delta helpers (:func:`add_edges`, :func:`remove_edges`,
:func:`update_weights`) are the mutation primitives of the streaming
pipeline (:mod:`repro.stream`): each takes an immutable
:class:`~repro.graph.csr.CSRGraph` plus undirected edge arrays and returns
a *new* graph with the symmetric-arc invariant enforced — every insert adds
both directions, every delete removes both, every weight update rewrites
both.  They are deterministic (same inputs → bit-identical CSR), which is
what lets a replayed delta log reconstruct a crashed stream's graph exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.build import coo_to_csr, deduplicate_edges, symmetrize_edges
from repro.graph.csr import CSRGraph
from repro.graph.properties import connected_components
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "induced_subgraph",
    "largest_component",
    "permute_vertices",
    "remove_self_loops",
    "community_subgraph",
    "add_edges",
    "remove_edges",
    "update_weights",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, mapping)`` where ``mapping[k]`` is the original id
    of the subgraph's vertex ``k``.  Duplicate ids are rejected.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE).ravel()
    if vertices.shape[0] != np.unique(vertices).shape[0]:
        raise GraphConstructionError("induced_subgraph: duplicate vertex ids")
    if vertices.shape[0] and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise GraphConstructionError("induced_subgraph: vertex id out of range")

    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    new_id = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    new_id[vertices] = np.arange(vertices.shape[0], dtype=VERTEX_DTYPE)

    src = graph.source_ids()
    dst = graph.targets
    mask = keep[src] & keep[dst]
    sub = coo_to_csr(
        new_id[src[mask]], new_id[dst[mask]], graph.weights[mask],
        vertices.shape[0],
    )
    return sub, vertices


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest connected component."""
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=VERTEX_DTYPE)
    comp = connected_components(graph)
    biggest = int(np.argmax(np.bincount(comp)))
    return induced_subgraph(graph, np.flatnonzero(comp == biggest))


def permute_vertices(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Renumber vertices so that new vertex ``k`` is old vertex ``perm[k]``."""
    perm = np.asarray(perm, dtype=VERTEX_DTYPE)
    if not np.array_equal(np.sort(perm), np.arange(graph.num_vertices)):
        raise GraphConstructionError("perm must be a permutation of 0..N-1")
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    src = inverse[graph.source_ids()]
    dst = inverse[graph.targets]
    return coo_to_csr(
        src, dst, graph.weights, graph.num_vertices
    )


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Copy of ``graph`` without self-loop arcs."""
    src = graph.source_ids()
    keep = src != graph.targets
    return coo_to_csr(
        src[keep], graph.targets[keep], graph.weights[keep], graph.num_vertices
    )


def _delta_edge_arrays(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
    *,
    num_vertices: int | None,
    what: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Common checks for the delta helpers; returns ``(src, dst, w, n)``.

    ``num_vertices`` may *grow* the vertex set (streams see new users);
    shrinking is rejected because existing arcs would dangle.
    """
    src = np.asarray(src, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(dst, dtype=VERTEX_DTYPE).ravel()
    if src.shape != dst.shape:
        raise GraphConstructionError(
            f"{what}: src and dst must have the same length; "
            f"got {src.shape[0]} != {dst.shape[0]}"
        )
    if weights is None:
        w = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
    else:
        w = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if w.shape != src.shape:
            raise GraphConstructionError(f"{what}: weights must align with src/dst")
        if w.shape[0] and not np.all(np.isfinite(w)):
            raise GraphConstructionError(f"{what}: edge weights must be finite")
    n = graph.num_vertices if num_vertices is None else int(num_vertices)
    if n < graph.num_vertices:
        raise GraphConstructionError(
            f"{what}: num_vertices={n} would shrink the graph "
            f"({graph.num_vertices} vertices); deltas may only grow it"
        )
    if src.shape[0]:
        lo = int(min(src.min(), dst.min()))
        hi = int(max(src.max(), dst.max()))
        if lo < 0 or hi >= n:
            raise GraphConstructionError(
                f"{what}: endpoint ids must lie in [0, {n}); "
                f"got range [{lo}, {hi}]"
            )
    return src, dst, w, n


def _arc_keys(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    return src.astype(np.int64) * np.int64(max(n, 1)) + dst.astype(np.int64)


def add_edges(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    num_vertices: int | None = None,
    combine: str = "max",
) -> CSRGraph:
    """New graph with the undirected edges ``(src[i], dst[i])`` inserted.

    Symmetric-arc enforcement: each inserted edge contributes both
    directions (self-loops stay single).  Inserting an arc that already
    exists — or the same edge twice within one call — coalesces the
    duplicates with ``combine`` (``"max"`` by default, matching the build
    pipeline, so re-inserting an existing edge is idempotent; ``"sum"``
    gives multigraph accumulation).  ``num_vertices`` may grow the vertex
    set; new vertices start isolated until an edge reaches them.
    """
    src, dst, w, n = _delta_edge_arrays(
        graph, src, dst, weights, num_vertices=num_vertices, what="add_edges"
    )
    if src.shape[0] == 0 and n == graph.num_vertices:
        return graph
    add_src, add_dst, add_w = symmetrize_edges(src, dst, w)
    all_src = np.concatenate([graph.source_ids(), add_src])
    all_dst = np.concatenate([graph.targets, add_dst])
    all_w = np.concatenate([graph.weights, add_w])
    m_src, m_dst, m_w = deduplicate_edges(
        all_src, all_dst, all_w, num_vertices=n, combine=combine
    )
    return coo_to_csr(m_src, m_dst, m_w, n)


def remove_edges(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    missing: str = "error",
) -> CSRGraph:
    """New graph with the undirected edges ``(src[i], dst[i])`` removed.

    Both directions of every named edge are dropped, keeping the
    symmetric-arc invariant.  ``missing`` controls what a nonexistent edge
    does: ``"error"`` (default) raises :class:`GraphConstructionError`
    naming the first offender, ``"ignore"`` skips it — the streaming
    pipeline quarantines such deltas upstream and applies with
    ``"ignore"``.
    """
    if missing not in ("error", "ignore"):
        raise GraphConstructionError(
            f"remove_edges: missing must be 'error' or 'ignore'; got {missing!r}"
        )
    src, dst, _, n = _delta_edge_arrays(
        graph, src, dst, None, num_vertices=None, what="remove_edges"
    )
    if src.shape[0] == 0:
        return graph
    g_src = graph.source_ids()
    keys = _arc_keys(g_src, graph.targets, n)
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    # Both directions of every named edge.
    drop_keys = np.unique(np.concatenate([
        _arc_keys(src, dst, n), _arc_keys(dst, src, n)
    ]))
    if missing == "error":
        pos = np.searchsorted(skeys, _arc_keys(src, dst, n))
        pos_c = np.minimum(pos, max(skeys.shape[0] - 1, 0))
        present = (
            skeys[pos_c] == _arc_keys(src, dst, n)
            if skeys.shape[0] else np.zeros(src.shape[0], dtype=bool)
        )
        if not present.all():
            first = int(np.flatnonzero(~present)[0])
            raise GraphConstructionError(
                f"remove_edges: edge {int(src[first])}-{int(dst[first])} "
                f"does not exist (pass missing='ignore' to skip)"
            )
    keep = ~np.isin(keys, drop_keys)
    return coo_to_csr(
        g_src[keep], graph.targets[keep], graph.weights[keep], n
    )


def update_weights(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    *,
    missing: str = "error",
) -> CSRGraph:
    """New graph with the weight of each edge ``(src[i], dst[i])`` replaced.

    Both directions of every named edge take the new weight (symmetric-arc
    enforcement).  Duplicate updates to the same edge within one call
    coalesce to the *last* occurrence, so a batch replays like a sequence.
    ``missing`` follows :func:`remove_edges`: ``"error"`` raises on an
    edge the graph does not have, ``"ignore"`` skips it.
    """
    if missing not in ("error", "ignore"):
        raise GraphConstructionError(
            f"update_weights: missing must be 'error' or 'ignore'; got {missing!r}"
        )
    if weights is None:
        raise GraphConstructionError("update_weights: weights are required")
    src, dst, w, n = _delta_edge_arrays(
        graph, src, dst, weights, num_vertices=None, what="update_weights"
    )
    if src.shape[0] == 0:
        return graph
    # Last-write-wins coalescing of duplicate updates.
    upd_keys = np.concatenate([_arc_keys(src, dst, n), _arc_keys(dst, src, n)])
    upd_w = np.concatenate([w, w])
    order = np.argsort(upd_keys, kind="stable")
    ukeys, uw = upd_keys[order], upd_w[order]
    last = np.ones(ukeys.shape[0], dtype=bool)
    last[:-1] = ukeys[1:] != ukeys[:-1]
    ukeys, uw = ukeys[last], uw[last]

    keys = _arc_keys(graph.source_ids(), graph.targets, n)
    pos = np.searchsorted(ukeys, keys)
    pos_c = np.minimum(pos, ukeys.shape[0] - 1)
    hit = ukeys[pos_c] == keys
    if missing == "error":
        # Every requested (forward) edge must have matched some arc.
        fwd = _arc_keys(src, dst, n)
        matched = np.isin(fwd, keys[hit])
        if not matched.all():
            first = int(np.flatnonzero(~matched)[0])
            raise GraphConstructionError(
                f"update_weights: edge {int(src[first])}-{int(dst[first])} "
                f"does not exist (pass missing='ignore' to skip)"
            )
    new_w = np.array(graph.weights, copy=True)
    new_w[hit] = uw[pos_c[hit]].astype(WEIGHT_DTYPE)
    return CSRGraph(graph.offsets, graph.targets, new_w, validate=False)


def community_subgraph(
    graph: CSRGraph, labels: np.ndarray, community: int
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of one detected community."""
    labels = np.asarray(labels)
    members = np.flatnonzero(labels == community)
    if members.shape[0] == 0:
        raise GraphConstructionError(f"community {community} has no members")
    return induced_subgraph(graph, members)
