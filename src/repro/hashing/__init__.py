"""Hashing substrate: the paper's per-vertex open-addressing hashtables.

The novel data structure of ν-LPA (Section 4.2, Figure 2): every vertex
owns a hashtable carved out of two flat ``2|E|`` buffers, addressed by the
vertex's CSR offset, with capacity ``nextPow2(degree) - 1`` and collision
resolution by linear, quadratic, double, or hybrid quadratic-double probing
(Algorithm 2).

Two implementations share the layout:

* :mod:`repro.hashing.hashtable` — scalar reference, Algorithm 2 verbatim;
* :mod:`repro.hashing.parallel_hashtable` — vectorised warp-parallel
  simulation with ``atomicCAS`` winner resolution and probe statistics,
  used by the GPU-simulator engine.
"""

from repro.hashing.primes import next_pow2, table_capacity, secondary_prime, is_prime
from repro.hashing.probing import ProbeStrategy, probe_start, probe_advance
from repro.hashing.hashtable import (
    PerVertexHashtables,
    MAX_RETRIES,
)
from repro.hashing.parallel_hashtable import (
    WaveAccumulateResult,
    parallel_accumulate,
    segmented_max_key,
)
from repro.hashing.coalesced import CoalescedHashtables

__all__ = [
    "next_pow2",
    "table_capacity",
    "secondary_prime",
    "is_prime",
    "ProbeStrategy",
    "probe_start",
    "probe_advance",
    "PerVertexHashtables",
    "MAX_RETRIES",
    "WaveAccumulateResult",
    "parallel_accumulate",
    "segmented_max_key",
    "CoalescedHashtables",
]
