"""Coalesced-chaining per-vertex hashtables (the paper's rejected variant).

The paper "also tested a coalesced chaining-based hashtable --- a collision
resolution technique that combines aspects of separate chaining and open
addressing --- utilizing another *nexts* array H_n. However, it did not
improve performance."  This module implements that variant so the Figure-7
appendix comparison can be regenerated: same flat ``2|E|`` buffers plus a
third ``nexts`` buffer, insertion at ``k mod p1`` with collisions chained
into a cellar growing down from the top of each vertex's reserved region.

A scalar reference implementation suffices here: the variant appears in a
single appendix experiment, and its extra ``nexts`` traffic (the reason it
loses) is captured by the probe/step counters either way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashtableFullError
from repro.graph.csr import CSRGraph
from repro.hashing.primes import table_capacity
from repro.types import EMPTY_KEY, VALUE_DTYPE_F32

__all__ = ["CoalescedHashtables"]

#: Chain terminator in the nexts array.
_NO_NEXT = np.int64(-1)


class CoalescedHashtables:
    """Per-vertex hashtables with coalesced chaining.

    Vertex *i*'s region spans ``[2 O_i, 2 O_i + 2 D_i)``: the first
    ``p1 = nextPow2(D_i) - 1`` slots form the address region (direct hash
    targets) and the remaining slots form the cellar, allocated top-down
    for chained entries.  Each occupied slot's ``nexts`` entry points at
    the next element of its chain.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        value_dtype: np.dtype | type = VALUE_DTYPE_F32,
    ) -> None:
        self.graph = graph
        size = max(2 * graph.num_edges, 1)
        self.keys = np.full(size, EMPTY_KEY, dtype=np.int64)
        self.values = np.zeros(size, dtype=value_dtype)
        self.nexts = np.full(size, _NO_NEXT, dtype=np.int64)
        self._p1 = np.asarray(table_capacity(graph.degrees), dtype=np.int64)
        self._base = 2 * graph.offsets[:-1]
        self._region = 2 * graph.degrees  # reserved slots per vertex
        # Cellar allocation pointer per vertex (counts down from region top).
        self._cellar = self._region.astype(np.int64).copy()
        #: Probes = slot inspections + chain-link follows (cost-model input).
        self.total_probes = 0
        #: Chain-pointer dereferences; the extra traffic open addressing avoids.
        self.total_link_steps = 0

    def memory_bytes(self) -> int:
        """Accounted footprint: keys + values + the extra nexts array."""
        return (
            self.keys.shape[0] * 4
            + self.values.shape[0] * self.values.itemsize
            + self.nexts.shape[0] * 4
        )

    def clear(self, i: int) -> None:
        """Reset vertex ``i``'s region (keys, values, chains, cellar)."""
        base, region = int(self._base[i]), int(self._region[i])
        self.keys[base : base + region] = EMPTY_KEY
        self.values[base : base + region] = 0
        self.nexts[base : base + region] = _NO_NEXT
        self._cellar[i] = region

    def _allocate_cellar_slot(self, i: int) -> int:
        """Take the next free slot from the top of vertex ``i``'s region."""
        base = int(self._base[i])
        ptr = int(self._cellar[i])
        p1 = int(self._p1[i])
        while ptr > 0:
            ptr -= 1
            if self.keys[base + ptr] == EMPTY_KEY and ptr >= 0:
                self._cellar[i] = ptr
                return ptr
        raise HashtableFullError(
            f"vertex {i}: coalesced cellar exhausted (p1={p1})"
        )

    def accumulate(self, i: int, key: int, value: float) -> int:
        """Insert/accumulate ``(key, value)``; returns the slot used."""
        base = int(self._base[i])
        p1 = int(self._p1[i])
        k = np.int64(key)
        s = int(k % p1)
        self.total_probes += 1
        if self.keys[base + s] == EMPTY_KEY:
            self.keys[base + s] = k
            self.values[base + s] += value
            return s
        # Walk the chain rooted at the home slot.
        while True:
            if self.keys[base + s] == k:
                self.values[base + s] += value
                return s
            nxt = int(self.nexts[base + s])
            if nxt == _NO_NEXT:
                new_slot = self._allocate_cellar_slot(i)
                self.keys[base + new_slot] = k
                self.values[base + new_slot] += value
                self.nexts[base + s] = new_slot
                self.total_link_steps += 1
                return new_slot
            s = nxt
            self.total_probes += 1
            self.total_link_steps += 1

    def max_key(self, i: int) -> int:
        """First key (lowest slot) with the highest accumulated value."""
        base = int(self._base[i])
        region = int(self._region[i])
        keys = self.keys[base : base + region]
        values = self.values[base : base + region]
        occupied = keys != EMPTY_KEY
        if not occupied.any():
            return -1
        masked = np.where(occupied, values, -np.inf)
        return int(keys[int(np.argmax(masked))])

    def accumulate_neighborhood(self, i: int, labels: np.ndarray) -> int:
        """Clear + accumulate all neighbours + max-key for vertex ``i``."""
        self.clear(i)
        nbrs = self.graph.neighbors(i)
        wts = self.graph.neighbor_weights(i)
        inserted = False
        for idx in range(nbrs.shape[0]):
            j = int(nbrs[idx])
            if j == i:
                continue
            self.accumulate(i, int(labels[j]), float(wts[idx]))
            inserted = True
        if not inserted:
            return int(labels[i])
        return self.max_key(i)
