"""GVE-LPA's per-thread collision-free hashtable (Sahu 2023; paper §4.2).

The multicore ancestor of ν-LPA gives every *thread* two structures kept
well-separated in memory:

* a **full-size values array** of length ``|V|`` — label ``c``'s
  accumulated weight lives at index ``c``, so lookups never collide;
* a **keys list** recording which labels were touched, so clearing costs
  O(touched), not O(|V|).

The paper reports this design beat ``std::unordered_map`` by 15.8× on
CPUs, and explains why it cannot transfer to GPUs: with ``T`` threads the
memory is O(T·N + M), and a GPU runs T ≈ 2×10⁵ resident threads — the
motivation for ν-LPA's per-vertex O(M) layout.  :func:`memory_footprint`
quantifies exactly that argument (experiment E3).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.graph.csr import CSRGraph

__all__ = ["CollisionFreeHashtable", "memory_footprint"]


class CollisionFreeHashtable:
    """One thread's collision-free label-weight accumulator.

    Operations mirror the per-vertex hashtable API: ``clear`` /
    ``accumulate`` / ``max_key`` — but accumulation is a direct array
    index (no probing ever), and ``clear`` walks only the keys list.
    """

    def __init__(self, num_vertices: int, *, value_dtype=np.float64) -> None:
        self.num_vertices = num_vertices
        #: Full-size values array — the O(|V|) part.
        self.values = np.zeros(num_vertices, dtype=value_dtype)
        #: Touched labels, in first-touch order.
        self._keys: list[int] = []
        #: Total accumulate calls (work accounting).
        self.total_accumulates = 0

    @property
    def keys(self) -> list[int]:
        """Labels currently holding weight (first-touch order)."""
        return list(self._keys)

    def clear(self) -> None:
        """Reset only the touched slots — O(touched), the design's point."""
        for k in self._keys:
            self.values[k] = 0.0
        self._keys.clear()

    def accumulate(self, key: int, value: float) -> None:
        """Add ``value`` to ``key``'s slot; collision-free by construction."""
        if self.values[key] == 0.0:
            self._keys.append(int(key))
        self.values[key] += value
        self.total_accumulates += 1

    def max_key(self) -> int:
        """First-touched label with the maximum accumulated weight."""
        best_key = -1
        best_val = -np.inf
        for k in self._keys:
            v = self.values[k]
            if v > best_val:
                best_key, best_val = k, float(v)
        return best_key

    def accumulate_neighborhood(
        self, graph: CSRGraph, vertex: int, labels: np.ndarray
    ) -> int:
        """Scalar reference: one vertex's Algorithm-1 inner loop."""
        self.clear()
        nbrs = graph.neighbors(vertex)
        wts = graph.neighbor_weights(vertex)
        for idx in range(nbrs.shape[0]):
            j = int(nbrs[idx])
            if j == vertex:
                continue
            self.accumulate(int(labels[j]), float(wts[idx]))
        if not self._keys:
            return int(labels[vertex])
        return self.max_key()

    def memory_bytes(self) -> int:
        """Footprint of this one thread's table (values array dominated)."""
        return self.values.nbytes + 8 * len(self._keys)


def memory_footprint(
    num_vertices: int,
    num_edges: int,
    num_threads: int,
    *,
    value_bytes: int = 8,
    key_bytes: int = 4,
) -> dict[str, int]:
    """Hashtable memory of GVE-LPA vs ν-LPA for a given machine shape.

    Returns bytes for both designs:

    * ``per_thread`` — GVE-LPA: ``T`` × (values array of |V| + keys list,
      bounded by |V|) → O(T·N);
    * ``per_vertex`` — ν-LPA: two flat ``2|E|`` buffers → O(M).
    """
    per_thread = num_threads * num_vertices * (value_bytes + key_bytes)
    per_vertex = 2 * num_edges * (key_bytes + 4)  # fp32 values in nu-LPA
    return {"per_thread": per_thread, "per_vertex": per_vertex}


def gpu_thread_count(device: DeviceSpec) -> int:
    """Resident threads a GPU would need tables for (the paper's T)."""
    return device.max_resident_threads
