"""Per-vertex hashtables in flat buffers — scalar reference implementation.

Implements Figure 2's memory layout and Algorithm 2's ``hashtableAccumulate``
exactly as written, one operation at a time.  The vectorised engine in
:mod:`repro.hashing.parallel_hashtable` shares this layout; property tests
check the two agree on accumulated totals and max-keys.

Layout
------
Two buffers of length ``2|E|`` (keys and values).  Vertex *i*'s table starts
at ``θ_H = 2 * offsets[i]`` and owns ``2 * degree(i)`` slots, of which the
first ``p1 = nextPow2(degree(i)) - 1`` are the live capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HashtableFullError
from repro.graph.csr import CSRGraph
from repro.hashing.primes import secondary_prime, table_capacity
from repro.hashing.probing import ProbeStrategy, probe_advance, probe_start
from repro.types import EMPTY_KEY, VALUE_DTYPE_F32

__all__ = ["PerVertexHashtables", "MAX_RETRIES"]

#: Probe-retry bound of Algorithm 2. Sized so that a correctly-capacitied
#: table can always place its keys; exceeding it raises
#: :class:`~repro.errors.HashtableFullError` (the paper's ``failed`` status).
MAX_RETRIES = 4096


@dataclass
class _TableView:
    """Slice bookkeeping for one vertex's table."""

    base: int
    p1: int
    p2: int


class PerVertexHashtables:
    """All per-vertex hashtables of a graph, backed by two flat buffers.

    Parameters
    ----------
    graph:
        The CSR graph whose offsets/degrees define the layout.
    value_dtype:
        ``float32`` (paper default) or ``float64`` (Figure-5 ablation).
    strategy:
        Collision-resolution strategy (paper default: quadratic-double).
    capacity_scale:
        Multiplier on each vertex's nominal degree when sizing its table;
        the paper's layout is ``capacity_scale=1``.  The resilience layer's
        *regrow* ladder rung doubles this after a persistent overflow,
        which moves every ``p1`` to the next Mersenne capacity (the next
        power of two, minus one) and rebuilds — and thereby scrubs — the
        flat buffers.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        value_dtype: np.dtype | type = VALUE_DTYPE_F32,
        strategy: ProbeStrategy = ProbeStrategy.QUADRATIC_DOUBLE,
        capacity_scale: int = 1,
    ) -> None:
        if capacity_scale < 1:
            raise ValueError(f"capacity_scale must be >= 1; got {capacity_scale}")
        self.graph = graph
        self.strategy = strategy
        self.capacity_scale = int(capacity_scale)
        size = 2 * graph.num_edges * self.capacity_scale
        # A single allocation for each buffer, exactly as the paper does
        # ("memory allocation ... only requires two calls of size 2|E|").
        self.keys = np.full(max(size, 1), EMPTY_KEY, dtype=np.int64)
        self.values = np.zeros(max(size, 1), dtype=value_dtype)
        degrees = graph.degrees
        self._p1 = table_capacity(degrees * self.capacity_scale).astype(np.int64)
        self._p2 = np.asarray(secondary_prime(self._p1), dtype=np.int64)
        # int64 regardless of the graph's (possibly compact int32) offset
        # width: 2 * offsets * scale can exceed int32, and every consumer
        # indexes the flat buffers with it.
        self._base = 2 * graph.offsets[:-1].astype(np.int64) * self.capacity_scale
        #: Total probes performed since construction (for the cost model).
        self.total_probes = 0

    # ------------------------------------------------------------------ #
    # Layout accessors
    # ------------------------------------------------------------------ #

    def table(self, i: int) -> _TableView:
        """Layout of vertex ``i``'s table: buffer base, ``p1`` and ``p2``."""
        return _TableView(int(self._base[i]), int(self._p1[i]), int(self._p2[i]))

    @property
    def capacities(self) -> np.ndarray:
        """``p1`` per vertex."""
        return self._p1

    @property
    def secondary_primes(self) -> np.ndarray:
        """``p2`` per vertex."""
        return self._p2

    @property
    def bases(self) -> np.ndarray:
        """Buffer base offset (``2 * O_i``) per vertex."""
        return self._base

    def memory_bytes(self) -> int:
        """Accounted device footprint: 4-byte keys + value-width values."""
        return self.keys.shape[0] * 4 + self.values.shape[0] * self.values.itemsize

    # ------------------------------------------------------------------ #
    # Algorithm 2 operations (scalar reference)
    # ------------------------------------------------------------------ #

    def clear(self, i: int) -> None:
        """``hashtableClear(H)`` for vertex ``i``."""
        t = self.table(i)
        self.keys[t.base : t.base + t.p1] = EMPTY_KEY
        self.values[t.base : t.base + t.p1] = 0

    def accumulate(self, i: int, key: int, value: float) -> int:
        """``hashtableAccumulate`` (Algorithm 2) on vertex ``i``'s table.

        Returns the slot index used.  Raises
        :class:`~repro.errors.HashtableFullError` after ``MAX_RETRIES``
        collisions (the paper's ``failed`` return).
        """
        t = self.table(i)
        k = np.int64(key)
        p2 = np.int64(t.p2)
        probe_i, di = probe_start(np.asarray([k]), np.asarray([p2]), self.strategy)
        probe_i, di = probe_i[0], di[0]
        retries = max(MAX_RETRIES, 2 * t.p1 + 64)
        for attempt in range(retries):
            self.total_probes += 1
            s = int(probe_i % t.p1)
            slot = t.base + s
            if self.keys[slot] == k or self.keys[slot] == EMPTY_KEY:
                if self.keys[slot] == EMPTY_KEY:
                    self.keys[slot] = k
                self.values[slot] += value
                return s
            if attempt + 1 >= t.p1:
                # Completeness guard (same as the parallel engine): the
                # doubling step sequences are periodic mod 2^k - 1; degrade
                # to a linear sweep after p1 strategy probes.
                probe_i = probe_i + 1
                continue
            nxt_i, nxt_di = probe_advance(
                np.asarray([probe_i]),
                np.asarray([di]),
                np.asarray([k]),
                np.asarray([p2]),
                self.strategy,
            )
            probe_i, di = nxt_i[0], nxt_di[0]
        raise HashtableFullError(
            f"vertex {i}: key {key} found no slot in {MAX_RETRIES} probes "
            f"(p1={t.p1}, strategy={self.strategy.value})"
        )

    def max_key(self, i: int) -> int:
        """``hashtableMaxKey(H)``: first key with the highest value.

        "First" means lowest slot index — the strict-LPA tie-break the
        paper inherits from scanning the table in order.  Returns -1 for an
        empty table.
        """
        t = self.table(i)
        keys = self.keys[t.base : t.base + t.p1]
        values = self.values[t.base : t.base + t.p1]
        occupied = keys != EMPTY_KEY
        if not occupied.any():
            return -1
        masked = np.where(occupied, values, -np.inf)
        return int(keys[int(np.argmax(masked))])

    def entries(self, i: int) -> dict[int, float]:
        """All (label, weight) pairs of vertex ``i``'s table, for tests."""
        t = self.table(i)
        keys = self.keys[t.base : t.base + t.p1]
        values = self.values[t.base : t.base + t.p1]
        occupied = keys != EMPTY_KEY
        return {
            int(k): float(v) for k, v in zip(keys[occupied], values[occupied])
        }

    def accumulate_neighborhood(self, i: int, labels: np.ndarray) -> int:
        """Full Algorithm 1 inner loop for one vertex (scalar reference).

        Clears the table, accumulates ``(labels[j], w_ij)`` for every
        neighbour ``j != i``, and returns the most-weighted label (or
        ``labels[i]`` when the vertex has no non-loop neighbours).
        """
        self.clear(i)
        nbrs = self.graph.neighbors(i)
        wts = self.graph.neighbor_weights(i)
        inserted = False
        for idx in range(nbrs.shape[0]):
            j = int(nbrs[idx])
            if j == i:  # Algorithm 1 line 23: skip self-loops
                continue
            self.accumulate(i, int(labels[j]), float(wts[idx]))
            inserted = True
        if not inserted:
            return int(labels[i])
        return self.max_key(i)
