"""Warp-parallel per-vertex hashtable operations, vectorised over a wave.

This module simulates what Algorithm 2 does when thousands of GPU lanes run
it concurrently: every pending (key, value) entry probes its slot, empty
slots are claimed by an ``atomicCAS`` whose *winner* is resolved
deterministically (first entry in lane order — real hardware picks an
arbitrary winner; lane order is the reproducible choice), winners and
matching keys accumulate with ``atomicAdd``, and losers advance their probe
sequence and retry in the next round.

Because each round is a handful of NumPy array operations over *all*
pending entries of the wave, the simulation costs O(total probes) vector
work rather than O(total probes) Python iterations — this is the trick
that makes a pure-Python "GPU" tolerable (see the HPC guides: vectorise the
loop over data, keep the loop over *rounds*).

The round structure also yields the exact statistics the cost model needs:
per-entry probe counts (memory traffic), CAS/add counts (atomic
contention), and per-warp round counts (lockstep divergence — a warp is as
slow as its unluckiest lane).

Every function takes an optional :class:`~repro.perf.workspace.
WorkspaceArena`; with one attached the whole wave runs without heap
allocation (slot prefixes: ``pa.`` accumulate, ``seg.`` segment indexing,
``smk.`` max-key).  Results are bit-identical either way — two details are
load-bearing and argued inline: the reversed-scatter CAS winner and the
sorted-run conflict count, each of which replaces an ``np.unique``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HashtableFullError
from repro.hashing.hashtable import MAX_RETRIES
from repro.hashing.probing import ProbeStrategy
from repro.perf.workspace import WorkspaceArena, compact, iota, take
from repro.types import EMPTY_KEY

__all__ = [
    "WaveAccumulateResult",
    "parallel_accumulate",
    "segmented_clear",
    "segmented_max_key",
    "segment_index_arrays",
]

_INT64_MAX = np.int64(np.iinfo(np.int64).max)


@dataclass
class WaveAccumulateResult:
    """Statistics from one wave of parallel hashtable accumulation.

    When the wave ran on an arena, ``entry_probes`` and ``warp_max_probes``
    are scratch views — valid until the next ``parallel_accumulate`` call
    on the same arena; copy them to keep them longer.
    """

    #: Total probes across all entries (each slot inspection counts once).
    total_probes: int = 0
    #: Number of probe rounds the wave needed (== max probes of any entry).
    rounds: int = 0
    #: atomicCAS attempts (shared tables only).
    cas_attempts: int = 0
    #: atomicAdd operations (shared tables only).
    atomic_adds: int = 0
    #: Extra serialisation from atomics landing on one slot in the same
    #: round (sum over slots of multiplicity - 1); shared tables only.
    atomic_conflicts: int = 0
    #: Per-warp maximum probe count — lockstep divergence cost; empty when
    #: no warp mapping was supplied.
    warp_max_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Probe count of every entry, in input order — callers aggregate these
    #: into per-lane critical paths (the engine's divergence accounting).
    entry_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )


def parallel_accumulate(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    table_p2: np.ndarray,
    entry_table: np.ndarray,
    entry_key: np.ndarray,
    entry_value: np.ndarray,
    strategy: ProbeStrategy = ProbeStrategy.QUADRATIC_DOUBLE,
    *,
    shared: bool = True,
    entry_warp: np.ndarray | None = None,
    num_warps: int = 0,
    max_retries: int = MAX_RETRIES,
    arena: WorkspaceArena | None = None,
) -> WaveAccumulateResult:
    """Accumulate all ``(entry_key, entry_value)`` pairs into their tables.

    Parameters
    ----------
    keys_buf, values_buf:
        The flat ``2|E|`` buffers; mutated in place.
    table_base, table_p1, table_p2:
        Layout arrays indexed by *wave-local* table id.
    entry_table:
        Wave-local table id of each entry (one entry per scanned edge).
    entry_key, entry_value:
        Label and edge weight of each entry.
    strategy:
        Probe strategy (paper default quadratic-double).
    shared:
        True for the block-per-vertex kernel (atomics are counted); False
        for the thread-per-vertex kernel, where a single lane owns each
        table so the CAS degenerates to a plain store — the slot outcome is
        identical, only the atomic counters differ.
    entry_warp, num_warps:
        Optional mapping of entries to simulated warps for divergence
        accounting.
    arena:
        Optional scratch arena (``pa.`` slots) for allocation-free rounds.
    """
    n = entry_key.shape[0]
    result = WaveAccumulateResult()
    if entry_warp is not None:
        result.warp_max_probes = np.zeros(num_warps, dtype=np.int64)
    if n == 0:
        return result

    keys = entry_key if entry_key.dtype == np.int64 else entry_key.astype(np.int64)
    # Per-entry layout (saves re-indexing the table arrays every round).
    p1_of = take(arena, "pa.p1of", n, np.int64)
    np.take(table_p1, entry_table, out=p1_of, mode="clip")
    p2_of = take(arena, "pa.p2of", n, np.int64)
    np.take(table_p2, entry_table, out=p2_of, mode="clip")
    base_of = take(arena, "pa.baseof", n, np.int64)
    np.take(table_base, entry_table, out=base_of, mode="clip")

    # Probe state (Algorithm 2 line 2: i <- k; di <- 1, except pure double
    # hashing whose step is the per-key constant 1 + (k mod p2)).
    probe_i = take(arena, "pa.pi", n, np.int64)
    np.copyto(probe_i, keys)
    probe_di = take(arena, "pa.pdi", n, np.int64)
    if strategy is ProbeStrategy.DOUBLE:
        np.remainder(keys, p2_of, out=probe_di)
        np.add(probe_di, 1, out=probe_di)
    else:
        probe_di[:] = 1

    pending = iota(arena, n)  # read-only; retries compress into ping-pong slots
    probes_done = take(arena, "pa.done", n, np.int64)
    probes_done[:] = 0
    if max_retries == MAX_RETRIES:
        # Enough for the completeness fallback to sweep the largest table.
        max_retries = max(MAX_RETRIES, 2 * int(table_p1.max(initial=1)) + 64)

    flip = False
    for round_no in range(1, max_retries + 1):
        num_pending = pending.shape[0]
        k = take(arena, "pa.k", num_pending, np.int64)
        np.take(keys, pending, out=k, mode="clip")
        pip = take(arena, "pa.pip", num_pending, np.int64)
        np.take(probe_i, pending, out=pip, mode="clip")
        p1p = take(arena, "pa.p1p", num_pending, np.int64)
        np.take(p1_of, pending, out=p1p, mode="clip")
        slots = take(arena, "pa.slots", num_pending, np.int64)
        np.remainder(pip, p1p, out=slots)
        bp = take(arena, "pa.bp", num_pending, np.int64)
        np.take(base_of, pending, out=bp, mode="clip")
        np.add(slots, bp, out=slots)

        result.total_probes += num_pending
        pd = take(arena, "pa.pd", num_pending, np.int64)
        np.take(probes_done, pending, out=pd, mode="clip")
        np.add(pd, 1, out=pd)
        probes_done[pending] = pd

        current = take(arena, "pa.cur", num_pending, np.int64)
        np.take(keys_buf, slots, out=current, mode="clip")
        empty = take(arena, "pa.emp", num_pending, bool)
        np.equal(current, EMPTY_KEY, out=empty)
        num_empty = int(np.count_nonzero(empty))

        if num_empty:
            # atomicCAS: among entries probing the same empty slot, the
            # first in lane order wins and writes its key.  Scattering the
            # competitors in *reverse* makes the earliest write land last,
            # so the final buffer equals the unique-first-winner result
            # without computing np.unique.
            se, ke = compact(arena, "pa.se", empty, num_empty, slots, k)
            keys_buf[se[::-1]] = ke[::-1]
            if shared:
                result.cas_attempts += num_empty
            np.take(keys_buf, slots, out=current, mode="clip")  # re-read after CAS commits

        success = take(arena, "pa.suc", num_pending, bool)
        np.equal(current, k, out=success)
        num_success = int(np.count_nonzero(success))
        if num_success:
            ev = take(arena, "pa.ev", num_pending, entry_value.dtype)
            np.take(entry_value, pending, out=ev, mode="clip")
            ss, sv = compact(arena, "pa.ss", success, num_success, slots, ev)
            np.add.at(values_buf, ss, sv)
            if shared:
                result.atomic_adds += num_success
                # conflicts = adds - distinct slots; count runs by sorting
                # the slot scratch in place (ss is dead after the add.at).
                ss.sort()
                distinct = 1
                if num_success > 1:
                    db = take(arena, "pa.db", num_success - 1, bool)
                    np.not_equal(ss[1:], ss[:-1], out=db)
                    distinct += int(np.count_nonzero(db))
                result.atomic_conflicts += num_success - distinct

        result.rounds = round_no
        num_retry = num_pending - num_success
        if num_retry == 0:
            break

        still = np.logical_not(success, out=success)
        # Advance the retrying entries (Algorithm 2 lines 17-18), inlined
        # from probing.probe_advance with in-place arithmetic.  The retry
        # list ping-pongs between two slots because ``pending`` (last
        # round's list) is still being read while this one is written.
        retry, old_i = compact(
            arena, "pa.pendB" if flip else "pa.pendA", still, num_retry,
            pending, pip,
        )
        flip = not flip
        step = take(arena, "pa.dr", num_retry, np.int64)
        np.take(probe_di, retry, out=step, mode="clip")
        new_i = take(arena, "pa.ni", num_retry, np.int64)
        np.add(old_i, step, out=new_i)
        if strategy is ProbeStrategy.QUADRATIC:
            np.multiply(step, 2, out=step)
        elif strategy is ProbeStrategy.QUADRATIC_DOUBLE:
            np.multiply(step, 2, out=step)
            kr = take(arena, "pa.kr", num_retry, np.int64)
            np.take(keys, retry, out=kr, mode="clip")
            p2r = take(arena, "pa.p2r", num_retry, np.int64)
            np.take(p2_of, retry, out=p2r, mode="clip")
            np.remainder(kr, p2r, out=kr)
            np.add(step, kr, out=step)
        # LINEAR and DOUBLE keep their step.

        # Completeness guard: with p1 = 2^k - 1 the doubling-based step
        # sequences are periodic (2 has order k mod 2^k - 1) and can orbit a
        # strict subset of slots at high load.  After p1 strategy probes an
        # entry degrades to a step-1 linear sweep (re-forced every round),
        # which provably visits every slot within another p1 rounds
        # (see DESIGN.md).
        pdr = take(arena, "pa.pdr", num_retry, np.int64)
        np.take(probes_done, retry, out=pdr, mode="clip")
        p1r = take(arena, "pa.p1r", num_retry, np.int64)
        np.take(p1_of, retry, out=p1r, mode="clip")
        fb = take(arena, "pa.fbm", num_retry, bool)
        np.greater_equal(pdr, p1r, out=fb)
        np.add(old_i, 1, out=old_i)
        np.copyto(new_i, old_i, where=fb)

        probe_i[retry] = new_i
        probe_di[retry] = step
        pending = retry
    else:
        raise HashtableFullError(
            f"{pending.shape[0]} entries unplaced after {max_retries} probe "
            f"rounds (strategy={strategy.value})"
        )

    if entry_warp is not None and num_warps > 0:
        np.maximum.at(result.warp_max_probes, entry_warp, probes_done)
    result.entry_probes = probes_done
    return result


def segment_index_arrays(
    table_base: np.ndarray,
    table_p1: np.ndarray,
    arena: WorkspaceArena | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index machinery for per-table segmented operations.

    Returns ``(flat_index, segment_id, segment_starts)`` where
    ``flat_index`` enumerates every live slot of every table
    (``base[t] + [0, p1[t])``), ``segment_id`` labels which table each flat
    slot belongs to, and ``segment_starts`` are reduceat boundaries.  With
    an arena all three are scratch views (``seg.`` slots).
    """
    nt = table_p1.shape[0]
    p1 = table_p1 if table_p1.dtype == np.int64 else table_p1.astype(np.int64)
    total = int(p1.sum())
    starts = take(arena, "seg.starts", nt, np.int64)
    starts[0] = 0
    np.cumsum(p1[:-1], out=starts[1:])

    seg_id = take(arena, "seg.id", total, np.int64)
    seg_id[:] = 0
    if nt > 1:
        if int(p1.min()) > 0:
            seg_id[starts[1:]] = 1
        else:  # empty tables collapse boundaries (direct callers only)
            idx = starts[1:]
            np.add.at(seg_id, idx[idx < total], 1)
    np.cumsum(seg_id, out=seg_id)

    flat = take(arena, "seg.flat", total, np.int64)
    np.take(starts, seg_id, out=flat, mode="clip")
    np.subtract(iota(arena, total), flat, out=flat)  # within-segment rank
    within_base = take(arena, "seg.base", total, np.int64)
    np.take(table_base, seg_id, out=within_base, mode="clip")
    np.add(flat, within_base, out=flat)
    return flat, seg_id, starts


def segmented_clear(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    arena: WorkspaceArena | None = None,
) -> int:
    """``hashtableClear`` for every table of a wave; returns slots cleared."""
    if table_base.shape[0] == 0:
        return 0
    flat, _, _ = segment_index_arrays(table_base, table_p1, arena)
    keys_buf[flat] = EMPTY_KEY
    values_buf[flat] = 0
    return int(flat.shape[0])


def segmented_max_key(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    fallback: np.ndarray,
    *,
    arena: WorkspaceArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``hashtableMaxKey`` for every table of a wave.

    Returns, per table, the key of the *lowest slot* holding the maximum
    value (strict-LPA's "first label with the highest weight"), or
    ``fallback[t]`` for tables with no occupied slot.  The comparison runs
    in float64 regardless of the value dtype, exactly like the division-free
    max reduction the paper's kernel performs in registers.
    """
    if out is None:
        out = np.empty_like(fallback)
    np.copyto(out, fallback)
    nt = table_base.shape[0]
    if nt == 0:
        return out
    flat, seg_id, starts = segment_index_arrays(table_base, table_p1, arena)
    ns = flat.shape[0]
    keys = take(arena, "smk.k", ns, np.int64)
    np.take(keys_buf, flat, out=keys, mode="clip")
    raw = take(arena, "smk.vraw", ns, values_buf.dtype)
    np.take(values_buf, flat, out=raw, mode="clip")
    masked = take(arena, "smk.m", ns, np.float64)
    np.copyto(masked, raw, casting="unsafe")
    occupied = take(arena, "smk.occ", ns, bool)
    np.not_equal(keys, EMPTY_KEY, out=occupied)
    vacant = take(arena, "smk.vac", ns, bool)
    np.logical_not(occupied, out=vacant)
    masked[vacant] = -np.inf

    seg_max = take(arena, "smk.segmax", nt, np.float64)
    np.maximum.reduceat(masked, starts, out=seg_max)

    # First (lowest-slot) occurrence of the segment max.
    spread = take(arena, "smk.spread", ns, np.float64)
    np.take(seg_max, seg_id, out=spread, mode="clip")
    is_max = take(arena, "smk.ismax", ns, bool)
    np.equal(masked, spread, out=is_max)
    np.logical_and(is_max, occupied, out=is_max)

    candidate = take(arena, "smk.cand", ns, np.int64)
    np.take(starts, seg_id, out=candidate, mode="clip")
    np.subtract(iota(arena, ns), candidate, out=candidate)  # within rank
    np.logical_not(is_max, out=is_max)  # now "not a maximal slot"
    candidate[is_max] = _INT64_MAX
    first_pos = take(arena, "smk.first", nt, np.int64)
    np.minimum.reduceat(candidate, starts, out=first_pos)

    has_any = take(arena, "smk.has", nt, bool)
    np.not_equal(first_pos, _INT64_MAX, out=has_any)
    num_found = int(np.count_nonzero(has_any))
    if num_found:
        found_slot, found_pos = compact(
            arena, "smk.found", has_any, num_found, table_base, first_pos
        )
        np.add(found_slot, found_pos, out=found_slot)
        found_key = take(arena, "smk.fkey", num_found, np.int64)
        np.take(keys_buf, found_slot, out=found_key, mode="clip")
        out[has_any] = found_key
    return out
