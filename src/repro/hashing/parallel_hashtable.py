"""Warp-parallel per-vertex hashtable operations, vectorised over a wave.

This module simulates what Algorithm 2 does when thousands of GPU lanes run
it concurrently: every pending (key, value) entry probes its slot, empty
slots are claimed by an ``atomicCAS`` whose *winner* is resolved
deterministically (first entry in lane order — real hardware picks an
arbitrary winner; lane order is the reproducible choice), winners and
matching keys accumulate with ``atomicAdd``, and losers advance their probe
sequence and retry in the next round.

Because each round is a handful of NumPy array operations over *all*
pending entries of the wave, the simulation costs O(total probes) vector
work rather than O(total probes) Python iterations — this is the trick
that makes a pure-Python "GPU" tolerable (see the HPC guides: vectorise the
loop over data, keep the loop over *rounds*).

The round structure also yields the exact statistics the cost model needs:
per-entry probe counts (memory traffic), CAS/add counts (atomic
contention), and per-warp round counts (lockstep divergence — a warp is as
slow as its unluckiest lane).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HashtableFullError
from repro.hashing.hashtable import MAX_RETRIES
from repro.hashing.probing import ProbeStrategy, probe_advance, probe_slot, probe_start
from repro.types import EMPTY_KEY

__all__ = [
    "WaveAccumulateResult",
    "parallel_accumulate",
    "segmented_clear",
    "segmented_max_key",
    "segment_index_arrays",
]


@dataclass
class WaveAccumulateResult:
    """Statistics from one wave of parallel hashtable accumulation."""

    #: Total probes across all entries (each slot inspection counts once).
    total_probes: int = 0
    #: Number of probe rounds the wave needed (== max probes of any entry).
    rounds: int = 0
    #: atomicCAS attempts (shared tables only).
    cas_attempts: int = 0
    #: atomicAdd operations (shared tables only).
    atomic_adds: int = 0
    #: Extra serialisation from atomics landing on one slot in the same
    #: round (sum over slots of multiplicity - 1); shared tables only.
    atomic_conflicts: int = 0
    #: Per-warp maximum probe count — lockstep divergence cost; empty when
    #: no warp mapping was supplied.
    warp_max_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Probe count of every entry, in input order — callers aggregate these
    #: into per-lane critical paths (the engine's divergence accounting).
    entry_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )


def parallel_accumulate(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    table_p2: np.ndarray,
    entry_table: np.ndarray,
    entry_key: np.ndarray,
    entry_value: np.ndarray,
    strategy: ProbeStrategy = ProbeStrategy.QUADRATIC_DOUBLE,
    *,
    shared: bool = True,
    entry_warp: np.ndarray | None = None,
    num_warps: int = 0,
    max_retries: int = MAX_RETRIES,
) -> WaveAccumulateResult:
    """Accumulate all ``(entry_key, entry_value)`` pairs into their tables.

    Parameters
    ----------
    keys_buf, values_buf:
        The flat ``2|E|`` buffers; mutated in place.
    table_base, table_p1, table_p2:
        Layout arrays indexed by *wave-local* table id.
    entry_table:
        Wave-local table id of each entry (one entry per scanned edge).
    entry_key, entry_value:
        Label and edge weight of each entry.
    strategy:
        Probe strategy (paper default quadratic-double).
    shared:
        True for the block-per-vertex kernel (atomics are counted); False
        for the thread-per-vertex kernel, where a single lane owns each
        table so the CAS degenerates to a plain store — the slot outcome is
        identical, only the atomic counters differ.
    entry_warp, num_warps:
        Optional mapping of entries to simulated warps for divergence
        accounting.
    """
    n = entry_key.shape[0]
    result = WaveAccumulateResult()
    if entry_warp is not None:
        result.warp_max_probes = np.zeros(num_warps, dtype=np.int64)
    if n == 0:
        return result

    keys = entry_key.astype(np.int64, copy=False)
    p1_of = table_p1[entry_table]
    p2 = table_p2[entry_table]
    probe_i, probe_di = probe_start(keys, p2, strategy)

    pending = np.arange(n, dtype=np.int64)
    probes_done = np.zeros(n, dtype=np.int64)
    if max_retries == MAX_RETRIES:
        # Enough for the completeness fallback to sweep the largest table.
        max_retries = max(MAX_RETRIES, 2 * int(table_p1.max(initial=1)) + 64)

    for round_no in range(1, max_retries + 1):
        t = entry_table[pending]
        k = keys[pending]
        slots = table_base[t] + probe_slot(probe_i[pending], table_p1[t])

        result.total_probes += pending.shape[0]
        probes_done[pending] += 1

        current = keys_buf[slots]
        empty = current == EMPTY_KEY

        if empty.any():
            # atomicCAS: among entries probing the same empty slot, the
            # first in lane order wins and writes its key.
            empty_idx = np.flatnonzero(empty)
            uniq_slots, first = np.unique(slots[empty_idx], return_index=True)
            winners = empty_idx[first]
            keys_buf[slots[winners]] = k[winners]
            if shared:
                result.cas_attempts += int(empty_idx.shape[0])
            current = keys_buf[slots]  # re-read after CAS commits

        success = current == k
        if success.any():
            sel = np.flatnonzero(success)
            np.add.at(values_buf, slots[sel], entry_value[pending[sel]])
            if shared:
                result.atomic_adds += int(sel.shape[0])
                _, mult = np.unique(slots[sel], return_counts=True)
                result.atomic_conflicts += int((mult - 1).sum())

        still = ~success
        if not still.any():
            result.rounds = round_no
            break

        retry = pending[still]
        old_i = probe_i[retry].copy()
        probe_i[retry], probe_di[retry] = probe_advance(
            probe_i[retry], probe_di[retry], keys[retry], p2[retry], strategy
        )
        # Completeness guard: with p1 = 2^k - 1 the doubling-based step
        # sequences are periodic (2 has order k mod 2^k - 1) and can orbit a
        # strict subset of slots at high load.  After p1 strategy probes an
        # entry degrades to a step-1 linear sweep (re-forced every round),
        # which provably visits every slot within another p1 rounds
        # (see DESIGN.md).
        fb = probes_done[retry] >= p1_of[retry]
        if fb.any():
            probe_i[retry[fb]] = old_i[fb] + 1
        pending = retry
        result.rounds = round_no
    else:
        raise HashtableFullError(
            f"{pending.shape[0]} entries unplaced after {max_retries} probe "
            f"rounds (strategy={strategy.value})"
        )

    if entry_warp is not None and num_warps > 0:
        np.maximum.at(result.warp_max_probes, entry_warp, probes_done)
    result.entry_probes = probes_done
    return result


def segment_index_arrays(
    table_base: np.ndarray, table_p1: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index machinery for per-table segmented operations.

    Returns ``(flat_index, segment_id, segment_starts)`` where
    ``flat_index`` enumerates every live slot of every table
    (``base[t] + [0, p1[t])``), ``segment_id`` labels which table each flat
    slot belongs to, and ``segment_starts`` are reduceat boundaries.
    """
    p1 = table_p1.astype(np.int64, copy=False)
    total = int(p1.sum())
    seg_id = np.repeat(np.arange(table_p1.shape[0], dtype=np.int64), p1)
    starts = np.zeros(table_p1.shape[0], dtype=np.int64)
    np.cumsum(p1[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - starts[seg_id]
    flat = table_base[seg_id] + within
    return flat, seg_id, starts


def segmented_clear(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
) -> int:
    """``hashtableClear`` for every table of a wave; returns slots cleared."""
    if table_base.shape[0] == 0:
        return 0
    flat, _, _ = segment_index_arrays(table_base, table_p1)
    keys_buf[flat] = EMPTY_KEY
    values_buf[flat] = 0
    return int(flat.shape[0])


def segmented_max_key(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    fallback: np.ndarray,
) -> np.ndarray:
    """``hashtableMaxKey`` for every table of a wave.

    Returns, per table, the key of the *lowest slot* holding the maximum
    value (strict-LPA's "first label with the highest weight"), or
    ``fallback[t]`` for tables with no occupied slot.
    """
    if table_base.shape[0] == 0:
        return fallback.copy()
    flat, seg_id, starts = segment_index_arrays(table_base, table_p1)
    keys = keys_buf[flat]
    values = values_buf[flat].astype(np.float64, copy=False)
    occupied = keys != EMPTY_KEY

    masked = np.where(occupied, values, -np.inf)
    seg_max = np.maximum.reduceat(masked, starts)

    # First (lowest-slot) occurrence of the segment max.
    within = np.arange(flat.shape[0], dtype=np.int64) - starts[seg_id]
    big = np.int64(np.iinfo(np.int64).max)
    candidate_pos = np.where(
        occupied & (masked == seg_max[seg_id]), within, big
    )
    first_pos = np.minimum.reduceat(candidate_pos, starts)

    out = fallback.copy()
    has_any = first_pos != big
    out[has_any] = keys_buf[table_base[has_any] + first_pos[has_any]]
    return out
