"""Warp-parallel per-vertex hashtable operations, vectorised over a wave.

This module simulates what Algorithm 2 does when thousands of GPU lanes run
it concurrently: every pending (key, value) entry probes its slot, empty
slots are claimed by an ``atomicCAS`` whose *winner* is resolved
deterministically (first entry in lane order — real hardware picks an
arbitrary winner; lane order is the reproducible choice), winners and
matching keys accumulate with ``atomicAdd``, and losers advance their probe
sequence and retry in the next round.

Because each round is a handful of NumPy array operations over *all*
pending entries of the wave, the simulation costs O(total probes) vector
work rather than O(total probes) Python iterations — this is the trick
that makes a pure-Python "GPU" tolerable (see the HPC guides: vectorise the
loop over data, keep the loop over *rounds*).

The round structure also yields the exact statistics the cost model needs:
per-entry probe counts (memory traffic), CAS/add counts (atomic
contention), and per-warp round counts (lockstep divergence — a warp is as
slow as its unluckiest lane).

Every function takes an optional :class:`~repro.perf.workspace.
WorkspaceArena`; with one attached the whole wave runs without heap
allocation (slot prefixes: ``pa.`` accumulate, ``seg.`` segment indexing,
``smk.`` max-key, ``fz.`` fused sweep).  Results are bit-identical either
way — two details are
load-bearing and argued inline: the reversed-scatter CAS winner and the
sorted-run conflict count, each of which replaces an ``np.unique``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HashtableFullError
from repro.hashing.hashtable import MAX_RETRIES
from repro.hashing.probing import ProbeStrategy
from repro.perf.workspace import WorkspaceArena, compact, iota, take
from repro.types import EMPTY_KEY

__all__ = [
    "SlotTracker",
    "WaveAccumulateResult",
    "fused_max_and_clear",
    "parallel_accumulate",
    "segmented_clear",
    "segmented_max_key",
    "segment_index_arrays",
]

_INT64_MAX = np.int64(np.iinfo(np.int64).max)

#: Minimum SlotTracker backing capacity; avoids churn on tiny waves.
_MIN_TRACKER_CAPACITY = 16

#: Two's-complement int64 wraparound constants for the scalar tail.
_U64_SPAN = 1 << 64
_I64_BIAS = 1 << 63

#: Pending-entry count below which a probe round switches to the scalar
#: tail loop.  A vectorised round costs a fixed ~15 NumPy dispatches no
#: matter how few entries remain, while the completeness-fallback tails
#: run *hundreds* of rounds with a handful of stragglers; below this size
#: plain Python arithmetic is cheaper than the dispatch overhead.
_SCALAR_TAIL_MAX = 32


class SlotTracker:
    """Append-only record of the flat slots a wave's accumulate claimed.

    The fused sweep (:func:`fused_max_and_clear`) needs to know which
    slots hold data without re-scanning every live slot of every table.
    Because tables start clean and only an ``atomicCAS`` ever writes a
    key, the occupied set after accumulation is exactly the set of slots
    the CAS rounds claimed — :func:`parallel_accumulate` appends them
    here as they happen.  Within-round duplicates (several lanes racing
    for one slot) are recorded as-is; they are harmless to both the
    reduction and the clear, and cross-round duplicates are impossible
    because a claimed slot never reads as empty again.

    The backing arrays grow geometrically and are reused across waves
    (``reset`` just rewinds the count), so steady-state appends are
    plain slice assignments with no heap allocation.
    """

    __slots__ = ("_slots", "_tables", "_count")

    def __init__(self) -> None:
        self._slots = np.empty(_MIN_TRACKER_CAPACITY, dtype=np.int64)
        self._tables = np.empty(_MIN_TRACKER_CAPACITY, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append(self, slots: np.ndarray, tables: np.ndarray) -> None:
        """Record ``slots`` (flat buffer indices) claimed for ``tables``."""
        n = slots.shape[0]
        need = self._count + n
        if need > self._slots.shape[0]:
            capacity = max(need, 2 * self._slots.shape[0])
            grown_slots = np.empty(capacity, dtype=np.int64)
            grown_slots[: self._count] = self._slots[: self._count]
            grown_tables = np.empty(capacity, dtype=np.int64)
            grown_tables[: self._count] = self._tables[: self._count]
            self._slots, self._tables = grown_slots, grown_tables
        self._slots[self._count : need] = slots
        self._tables[self._count : need] = tables
        self._count = need

    def views(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(slots, tables)`` views of everything recorded."""
        return self._slots[: self._count], self._tables[: self._count]

    def reset(self) -> None:
        """Forget all recorded slots (buffers are kept for reuse)."""
        self._count = 0


@dataclass
class WaveAccumulateResult:
    """Statistics from one wave of parallel hashtable accumulation.

    When the wave ran on an arena, ``entry_probes`` and ``warp_max_probes``
    are scratch views — valid until the next ``parallel_accumulate`` call
    on the same arena; copy them to keep them longer.
    """

    #: Total probes across all entries (each slot inspection counts once).
    total_probes: int = 0
    #: Number of probe rounds the wave needed (== max probes of any entry).
    rounds: int = 0
    #: atomicCAS attempts (shared tables only).
    cas_attempts: int = 0
    #: atomicAdd operations (shared tables only).
    atomic_adds: int = 0
    #: Extra serialisation from atomics landing on one slot in the same
    #: round (sum over slots of multiplicity - 1); shared tables only.
    atomic_conflicts: int = 0
    #: Per-warp maximum probe count — lockstep divergence cost; empty when
    #: no warp mapping was supplied.
    warp_max_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Probe count of every entry, in input order — callers aggregate these
    #: into per-lane critical paths (the engine's divergence accounting).
    entry_probes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )


def _scalar_tail(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    keys: np.ndarray,
    entry_table: np.ndarray,
    entry_value: np.ndarray,
    probe_i: np.ndarray,
    probe_di: np.ndarray,
    p1_of: np.ndarray,
    p2_of: np.ndarray,
    base_of: np.ndarray,
    pending: np.ndarray,
    probes_done: np.ndarray,
    result: WaveAccumulateResult,
    strategy: ProbeStrategy,
    shared: bool,
    claimed: "SlotTracker | None",
    start_round: int,
    max_retries: int,
) -> None:
    """Finish the last few pending entries with a per-entry Python loop.

    A vectorised probe round costs a fixed ~15 NumPy dispatches however
    few entries remain, and the completeness-fallback tails run hundreds
    of rounds with a handful of stragglers — most of a long wave's Python
    time.  This loop performs the *same* per-round arithmetic in the same
    order: the CAS winner is the first entry in lane order, ``atomicAdd``
    applies in lane order (so float accumulation order is preserved), and
    every counter update matches the vectorised round exactly — labels,
    counters, and probe statistics are bit-identical either way.
    """
    # Per-entry state as plain Python scalars: [entry, key, i, di, p1, p2,
    # base, table, value].  The value stays a NumPy scalar so the adds run
    # in the buffer's dtype, exactly like ``np.add.at``.
    state = [
        [
            e,
            int(keys[e]),
            int(probe_i[e]),
            int(probe_di[e]),
            int(p1_of[e]),
            int(p2_of[e]),
            int(base_of[e]),
            int(entry_table[e]),
            entry_value[e],
        ]
        for e in pending.tolist()
    ]
    quad = strategy is ProbeStrategy.QUADRATIC
    quad_double = strategy is ProbeStrategy.QUADRATIC_DOUBLE
    empty = int(EMPTY_KEY)
    claimed_slots: list[int] = []
    claimed_tables: list[int] = []
    round_no = start_round
    try:
        while True:
            if round_no > max_retries:
                raise HashtableFullError(
                    f"{len(state)} entries unplaced after {max_retries} "
                    f"probe rounds (strategy={strategy.value})"
                )
            result.total_probes += len(state)
            result.rounds = round_no
            num_empty = 0
            slots = []
            placed: dict[int, int] = {}
            for ent in state:
                s = ent[6] + ent[2] % ent[4]
                slots.append(s)
                probes_done[ent[0]] = round_no
                if int(keys_buf[s]) == empty:
                    num_empty += 1
                    if s not in placed:
                        placed[s] = ent[1]
                    if claimed is not None:
                        claimed_slots.append(s)
                        claimed_tables.append(ent[7])
            for s, key in placed.items():
                keys_buf[s] = key
            if shared:
                result.cas_attempts += num_empty

            retry = []
            succ_slots = []
            for ent, s in zip(state, slots):
                if int(keys_buf[s]) == ent[1]:
                    values_buf[s] += ent[8]
                    succ_slots.append(s)
                else:
                    retry.append(ent)
            ns = len(succ_slots)
            if shared and ns:
                result.atomic_adds += ns
                result.atomic_conflicts += ns - len(set(succ_slots))
            if not retry:
                return

            for ent in retry:
                i, di = ent[2], ent[3]
                if quad_double:
                    nd = 2 * di + ent[1] % ent[5]
                elif quad:
                    nd = 2 * di
                else:
                    nd = di
                # Completeness fallback: step-1 linear sweep after p1 probes.
                ni = i + 1 if ent[4] <= round_no else i + di
                # The vectorised rounds run int64 arithmetic, which wraps
                # after ~60 doubling rounds; Python ints don't, so emulate
                # the wrap (floor-mod keeps negative i valid in the slot
                # computation, same as np.remainder).
                ent[2] = (ni + _I64_BIAS) % _U64_SPAN - _I64_BIAS
                ent[3] = (nd + _I64_BIAS) % _U64_SPAN - _I64_BIAS
            state = retry
            round_no += 1
    finally:
        # Flush even when raising HashtableFullError: the engine's scrub
        # path re-empties exactly the tracker's slots.
        if claimed is not None and claimed_slots:
            claimed.append(
                np.asarray(claimed_slots, dtype=np.int64),
                np.asarray(claimed_tables, dtype=np.int64),
            )


def parallel_accumulate(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    table_p2: np.ndarray,
    entry_table: np.ndarray,
    entry_key: np.ndarray,
    entry_value: np.ndarray,
    strategy: ProbeStrategy = ProbeStrategy.QUADRATIC_DOUBLE,
    *,
    shared: bool = True,
    entry_warp: np.ndarray | None = None,
    num_warps: int = 0,
    max_retries: int = MAX_RETRIES,
    arena: WorkspaceArena | None = None,
    claimed: SlotTracker | None = None,
) -> WaveAccumulateResult:
    """Accumulate all ``(entry_key, entry_value)`` pairs into their tables.

    Parameters
    ----------
    keys_buf, values_buf:
        The flat ``2|E|`` buffers; mutated in place.
    table_base, table_p1, table_p2:
        Layout arrays indexed by *wave-local* table id.
    entry_table:
        Wave-local table id of each entry (one entry per scanned edge).
    entry_key, entry_value:
        Label and edge weight of each entry.
    strategy:
        Probe strategy (paper default quadratic-double).
    shared:
        True for the block-per-vertex kernel (atomics are counted); False
        for the thread-per-vertex kernel, where a single lane owns each
        table so the CAS degenerates to a plain store — the slot outcome is
        identical, only the atomic counters differ.
    entry_warp, num_warps:
        Optional mapping of entries to simulated warps for divergence
        accounting.
    arena:
        Optional scratch arena (``pa.`` slots) for allocation-free rounds.
    claimed:
        Optional :class:`SlotTracker`; when given, every slot an
        ``atomicCAS`` claims is appended (with its wave-local table id)
        so :func:`fused_max_and_clear` can reduce and re-clear exactly
        the occupied slots.  The accumulate arithmetic — and therefore
        every statistic — is unchanged by the tracker.
    """
    n = entry_key.shape[0]
    result = WaveAccumulateResult()
    if entry_warp is not None:
        result.warp_max_probes = np.zeros(num_warps, dtype=np.int64)
    if n == 0:
        return result

    if entry_key.dtype == np.int64:
        keys = entry_key
    else:  # compact-layout labels: widen into scratch, not a fresh array
        keys = take(arena, "pa.keys", n, np.int64)
        np.copyto(keys, entry_key)
    # Per-entry layout (saves re-indexing the table arrays every round).
    p1_of = take(arena, "pa.p1of", n, np.int64)
    table_p1.take(entry_table, out=p1_of, mode="clip")
    p2_of = take(arena, "pa.p2of", n, np.int64)
    table_p2.take(entry_table, out=p2_of, mode="clip")
    base_of = take(arena, "pa.baseof", n, np.int64)
    table_base.take(entry_table, out=base_of, mode="clip")

    # Probe state (Algorithm 2 line 2: i <- k; di <- 1, except pure double
    # hashing whose step is the per-key constant 1 + (k mod p2)).
    probe_i = take(arena, "pa.pi", n, np.int64)
    np.copyto(probe_i, keys)
    probe_di = take(arena, "pa.pdi", n, np.int64)
    if strategy is ProbeStrategy.DOUBLE:
        np.remainder(keys, p2_of, out=probe_di)
        np.add(probe_di, 1, out=probe_di)
    else:
        probe_di[:] = 1

    pending = iota(arena, n)  # read-only; retries compress into ping-pong slots
    probes_done = take(arena, "pa.done", n, np.int64)
    probes_done[:] = 0
    if max_retries == MAX_RETRIES:
        # Enough for the completeness fallback to sweep the largest table.
        max_retries = max(MAX_RETRIES, 2 * int(table_p1.max(initial=1)) + 64)

    flip = False
    for round_no in range(1, max_retries + 1):
        num_pending = pending.shape[0]
        if num_pending <= _SCALAR_TAIL_MAX:
            _scalar_tail(
                keys_buf, values_buf, keys, entry_table, entry_value,
                probe_i, probe_di, p1_of, p2_of, base_of,
                pending, probes_done, result, strategy, shared,
                claimed, round_no, max_retries,
            )
            break
        if round_no == 1:
            # First round: every entry is pending in order, so the per-round
            # "gather the pending entries' state" columns are the state
            # arrays themselves — skip four identity gathers over the
            # largest round.  They are only read below (the retry advance
            # scatters into probe_i/probe_di directly), so aliasing is safe.
            k = keys
            pip = probe_i
            p1p = p1_of
            bp = base_of
        else:
            k = take(arena, "pa.k", num_pending, np.int64)
            keys.take(pending, out=k, mode="clip")
            pip = take(arena, "pa.pip", num_pending, np.int64)
            probe_i.take(pending, out=pip, mode="clip")
            p1p = take(arena, "pa.p1p", num_pending, np.int64)
            p1_of.take(pending, out=p1p, mode="clip")
            bp = take(arena, "pa.bp", num_pending, np.int64)
            base_of.take(pending, out=bp, mode="clip")
        slots = take(arena, "pa.slots", num_pending, np.int64)
        np.remainder(pip, p1p, out=slots)
        np.add(slots, bp, out=slots)

        result.total_probes += num_pending
        # Every still-pending entry has probed exactly once per round, so
        # its count is simply the (1-based) round number — one scalar
        # scatter instead of the gather/add/scatter the GPU would do.
        if round_no == 1:
            probes_done[:] = 1
        else:
            probes_done[pending] = round_no

        current = take(arena, "pa.cur", num_pending, np.int64)
        keys_buf.take(slots, out=current, mode="clip")
        empty = take(arena, "pa.emp", num_pending, bool)
        np.equal(current, EMPTY_KEY, out=empty)
        num_empty = int(np.count_nonzero(empty))

        if num_empty:
            # atomicCAS: among entries probing the same empty slot, the
            # first in lane order wins and writes its key.  Scattering the
            # competitors in *reverse* makes the earliest write land last,
            # so the final buffer equals the unique-first-winner result
            # without computing np.unique.
            if claimed is None:
                se, ke = compact(arena, "pa.se", empty, num_empty, slots, k)
            else:
                if round_no == 1:
                    # First round: pending is the identity, so the table
                    # column needs no gather.
                    tp = entry_table
                else:
                    tp = take(arena, "pa.tp", num_pending, entry_table.dtype)
                    entry_table.take(pending, out=tp, mode="clip")
                se, ke, te = compact(
                    arena, "pa.se", empty, num_empty, slots, k, tp
                )
                claimed.append(se, te)
            keys_buf[se[::-1]] = ke[::-1]
            if shared:
                result.cas_attempts += num_empty
            keys_buf.take(slots, out=current, mode="clip")  # re-read after CAS commits

        success = take(arena, "pa.suc", num_pending, bool)
        np.equal(current, k, out=success)
        num_success = int(np.count_nonzero(success))
        if num_success:
            ev = take(arena, "pa.ev", num_pending, entry_value.dtype)
            entry_value.take(pending, out=ev, mode="clip")
            ss, sv = compact(arena, "pa.ss", success, num_success, slots, ev)
            np.add.at(values_buf, ss, sv)
            if shared:
                result.atomic_adds += num_success
                # conflicts = adds - distinct slots; count runs by sorting
                # the slot scratch in place (ss is dead after the add.at).
                ss.sort()
                distinct = 1
                if num_success > 1:
                    db = take(arena, "pa.db", num_success - 1, bool)
                    np.not_equal(ss[1:], ss[:-1], out=db)
                    distinct += int(np.count_nonzero(db))
                result.atomic_conflicts += num_success - distinct

        result.rounds = round_no
        num_retry = num_pending - num_success
        if num_retry == 0:
            break

        still = np.logical_not(success, out=success)
        # Advance the retrying entries (Algorithm 2 lines 17-18), inlined
        # from probing.probe_advance with in-place arithmetic.  The retry
        # list ping-pongs between two slots because ``pending`` (last
        # round's list) is still being read while this one is written.
        retry, old_i = compact(
            arena, "pa.pendB" if flip else "pa.pendA", still, num_retry,
            pending, pip,
        )
        flip = not flip
        step = take(arena, "pa.dr", num_retry, np.int64)
        probe_di.take(retry, out=step, mode="clip")
        new_i = take(arena, "pa.ni", num_retry, np.int64)
        np.add(old_i, step, out=new_i)
        if strategy is ProbeStrategy.QUADRATIC:
            np.multiply(step, 2, out=step)
        elif strategy is ProbeStrategy.QUADRATIC_DOUBLE:
            np.multiply(step, 2, out=step)
            kr = take(arena, "pa.kr", num_retry, np.int64)
            keys.take(retry, out=kr, mode="clip")
            p2r = take(arena, "pa.p2r", num_retry, np.int64)
            p2_of.take(retry, out=p2r, mode="clip")
            np.remainder(kr, p2r, out=kr)
            np.add(step, kr, out=step)
        # LINEAR and DOUBLE keep their step.

        # Completeness guard: with p1 = 2^k - 1 the doubling-based step
        # sequences are periodic (2 has order k mod 2^k - 1) and can orbit a
        # strict subset of slots at high load.  After p1 strategy probes an
        # entry degrades to a step-1 linear sweep (re-forced every round),
        # which provably visits every slot within another p1 rounds
        # (see DESIGN.md).
        # (probes_done[retry] is round_no for every retrying entry, so the
        # "probed >= p1" test needs only the p1 gather.)
        p1r = take(arena, "pa.p1r", num_retry, np.int64)
        p1_of.take(retry, out=p1r, mode="clip")
        fb = take(arena, "pa.fbm", num_retry, bool)
        np.less_equal(p1r, round_no, out=fb)
        np.add(old_i, 1, out=old_i)
        np.copyto(new_i, old_i, where=fb)

        probe_i[retry] = new_i
        probe_di[retry] = step
        pending = retry
    else:
        raise HashtableFullError(
            f"{pending.shape[0]} entries unplaced after {max_retries} probe "
            f"rounds (strategy={strategy.value})"
        )

    if entry_warp is not None and num_warps > 0:
        np.maximum.at(result.warp_max_probes, entry_warp, probes_done)
    result.entry_probes = probes_done
    return result


def segment_index_arrays(
    table_base: np.ndarray,
    table_p1: np.ndarray,
    arena: WorkspaceArena | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index machinery for per-table segmented operations.

    Returns ``(flat_index, segment_id, segment_starts)`` where
    ``flat_index`` enumerates every live slot of every table
    (``base[t] + [0, p1[t])``), ``segment_id`` labels which table each flat
    slot belongs to, and ``segment_starts`` are reduceat boundaries.  With
    an arena all three are scratch views (``seg.`` slots).
    """
    nt = table_p1.shape[0]
    p1 = table_p1 if table_p1.dtype == np.int64 else table_p1.astype(np.int64)
    total = int(p1.sum())
    starts = take(arena, "seg.starts", nt, np.int64)
    starts[0] = 0
    np.cumsum(p1[:-1], out=starts[1:])

    seg_id = take(arena, "seg.id", total, np.int64)
    seg_id[:] = 0
    if nt > 1:
        if int(p1.min()) > 0:
            seg_id[starts[1:]] = 1
        else:  # empty tables collapse boundaries (direct callers only)
            idx = starts[1:]
            np.add.at(seg_id, idx[idx < total], 1)
    np.cumsum(seg_id, out=seg_id)

    flat = take(arena, "seg.flat", total, np.int64)
    starts.take(seg_id, out=flat, mode="clip")
    np.subtract(iota(arena, total), flat, out=flat)  # within-segment rank
    within_base = take(arena, "seg.base", total, np.int64)
    table_base.take(seg_id, out=within_base, mode="clip")
    np.add(flat, within_base, out=flat)
    return flat, seg_id, starts


def segmented_clear(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    arena: WorkspaceArena | None = None,
) -> int:
    """``hashtableClear`` for every table of a wave; returns slots cleared."""
    if table_base.shape[0] == 0:
        return 0
    flat, _, _ = segment_index_arrays(table_base, table_p1, arena)
    keys_buf[flat] = EMPTY_KEY
    values_buf[flat] = 0
    return int(flat.shape[0])


def segmented_max_key(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    table_base: np.ndarray,
    table_p1: np.ndarray,
    fallback: np.ndarray,
    *,
    arena: WorkspaceArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``hashtableMaxKey`` for every table of a wave.

    Returns, per table, the key of the *lowest slot* holding the maximum
    value (strict-LPA's "first label with the highest weight"), or
    ``fallback[t]`` for tables with no occupied slot.  The comparison runs
    in float64 regardless of the value dtype, exactly like the division-free
    max reduction the paper's kernel performs in registers.
    """
    if out is None:
        out = np.empty_like(fallback)
    np.copyto(out, fallback)
    nt = table_base.shape[0]
    if nt == 0:
        return out
    flat, seg_id, starts = segment_index_arrays(table_base, table_p1, arena)
    ns = flat.shape[0]
    keys = take(arena, "smk.k", ns, np.int64)
    keys_buf.take(flat, out=keys, mode="clip")
    raw = take(arena, "smk.vraw", ns, values_buf.dtype)
    values_buf.take(flat, out=raw, mode="clip")
    masked = take(arena, "smk.m", ns, np.float64)
    np.copyto(masked, raw, casting="unsafe")
    occupied = take(arena, "smk.occ", ns, bool)
    np.not_equal(keys, EMPTY_KEY, out=occupied)
    vacant = take(arena, "smk.vac", ns, bool)
    np.logical_not(occupied, out=vacant)
    masked[vacant] = -np.inf

    seg_max = take(arena, "smk.segmax", nt, np.float64)
    np.maximum.reduceat(masked, starts, out=seg_max)

    # First (lowest-slot) occurrence of the segment max.
    spread = take(arena, "smk.spread", ns, np.float64)
    seg_max.take(seg_id, out=spread, mode="clip")
    is_max = take(arena, "smk.ismax", ns, bool)
    np.equal(masked, spread, out=is_max)
    np.logical_and(is_max, occupied, out=is_max)

    candidate = take(arena, "smk.cand", ns, np.int64)
    starts.take(seg_id, out=candidate, mode="clip")
    np.subtract(iota(arena, ns), candidate, out=candidate)  # within rank
    np.logical_not(is_max, out=is_max)  # now "not a maximal slot"
    candidate[is_max] = _INT64_MAX
    first_pos = take(arena, "smk.first", nt, np.int64)
    np.minimum.reduceat(candidate, starts, out=first_pos)

    has_any = take(arena, "smk.has", nt, bool)
    np.not_equal(first_pos, _INT64_MAX, out=has_any)
    num_found = int(np.count_nonzero(has_any))
    if num_found:
        found_slot, found_pos = compact(
            arena, "smk.found", has_any, num_found, table_base, first_pos
        )
        np.add(found_slot, found_pos, out=found_slot)
        found_key = take(arena, "smk.fkey", num_found, np.int64)
        keys_buf.take(found_slot, out=found_key, mode="clip")
        out[has_any] = found_key
    return out


def fused_max_and_clear(
    keys_buf: np.ndarray,
    values_buf: np.ndarray,
    fallback: np.ndarray,
    tracker: SlotTracker,
    *,
    arena: WorkspaceArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``hashtableMaxKey`` + ``hashtableClear`` over the claimed slots.

    The fused-sweep kernel model: instead of scanning every live slot of
    every wave table once to reduce (``segmented_max_key``) and once to
    clear (``segmented_clear``), a single pass visits only the slots the
    accumulate rounds claimed (recorded in ``tracker``), finds each
    table's winner, and resets those slots to empty — restoring the
    tables-start-clean invariant the next wave relies on.

    Bit-identity with the unfused pair: tables entered the wave clean and
    only an ``atomicCAS`` writes a key, so the claimed set *is* the
    occupied set; the unfused reduction masks vacant slots to ``-inf``
    and therefore reduces over exactly the same values.  The tie-break
    (lowest slot holding the maximum, in float64 comparison) is preserved
    because within one table the absolute slot order equals the
    within-table rank order.  Tables with no claimed slot keep
    ``fallback[t]``, exactly like tables with no occupied slot.

    Sorting the ``(table, slot)`` pairs — packed into one int64 when the
    bit widths allow, which they always do at simulatable sizes — groups
    each table's slots contiguously so the winner falls out of two
    ``reduceat`` calls, mirroring the unfused reduction's arithmetic.

    ``tracker`` is reset before returning.  With an arena (``fz.``
    slots) the whole pass is allocation-free.
    """
    if out is None:
        out = np.empty_like(fallback)
    np.copyto(out, fallback)
    ns = len(tracker)
    if ns == 0:
        tracker.reset()
        return out
    slots, tables = tracker.views()

    sbits = int(keys_buf.shape[0] - 1).bit_length()
    tbits = int(fallback.shape[0] - 1).bit_length()
    if tbits + sbits <= 63:
        comp = take(arena, "fz.comp", ns, np.int64)
        np.left_shift(tables, np.int64(sbits), out=comp)
        np.bitwise_or(comp, slots, out=comp)
        comp.sort()
        t = take(arena, "fz.t", ns, np.int64)
        np.right_shift(comp, np.int64(sbits), out=t)
        s = take(arena, "fz.s", ns, np.int64)
        np.bitwise_and(comp, np.int64((1 << sbits) - 1), out=s)
    else:  # pragma: no cover - needs a >2^63 packed id space
        order = np.lexsort((slots, tables))
        t = tables[order]
        s = slots[order]

    first = take(arena, "fz.first", ns, bool)
    first[0] = True
    if ns > 1:
        np.not_equal(t[1:], t[:-1], out=first[1:])
    num_groups = int(np.count_nonzero(first))
    gstart = compact(arena, "fz.gs", first, num_groups, iota(arena, ns))

    # Claimed slots are all occupied, so no vacancy mask is needed; the
    # comparison still runs in float64 like the unfused reduction.
    raw = take(arena, "fz.vraw", ns, values_buf.dtype)
    values_buf.take(s, out=raw, mode="clip")
    vals = take(arena, "fz.v", ns, np.float64)
    np.copyto(vals, raw, casting="unsafe")
    gmax = take(arena, "fz.gmax", num_groups, np.float64)
    np.maximum.reduceat(vals, gstart, out=gmax)

    gid = take(arena, "fz.gid", ns, np.int64)
    np.copyto(gid, first, casting="unsafe")
    np.cumsum(gid, out=gid)
    np.subtract(gid, 1, out=gid)
    spread = take(arena, "fz.spread", ns, np.float64)
    gmax.take(gid, out=spread, mode="clip")
    not_max = take(arena, "fz.nmax", ns, bool)
    np.not_equal(vals, spread, out=not_max)
    candidate = take(arena, "fz.cand", ns, np.int64)
    np.copyto(candidate, s)
    candidate[not_max] = _INT64_MAX
    winner_slot = take(arena, "fz.win", num_groups, np.int64)
    np.minimum.reduceat(candidate, gstart, out=winner_slot)

    winner_key = take(arena, "fz.wkey", num_groups, np.int64)
    keys_buf.take(winner_slot, out=winner_key, mode="clip")
    gtable = take(arena, "fz.gt", num_groups, np.int64)
    t.take(gstart, out=gtable, mode="clip")
    out[gtable] = winner_key

    # Clear-at-end: hand the next wave clean tables.
    keys_buf[s] = EMPTY_KEY
    values_buf[s] = 0
    tracker.reset()
    return out
