"""Capacity and prime utilities for the per-vertex hashtables.

The paper sizes each vertex's table as ``p1 = nextPow2(D_i) - 1`` so that
``mod`` doubles as the hash function, and derives the double-hashing
modulus ``p2 = nextPow2(p1) - 1``, which is co-prime with ``p1``
(consecutive Mersenne numbers ``2^k - 1`` and ``2^{k+1} - 1`` share no
factor).  ``nextPow2`` here means the smallest power of two *strictly
greater* than its argument, which guarantees ``p1 >= D_i`` (every distinct
neighbour label fits) and ``p1 < 2 D_i`` (the table fits in the reserved
``2 D_i`` slots of the flat buffer).
"""

from __future__ import annotations

import numpy as np

__all__ = ["next_pow2", "table_capacity", "secondary_prime", "is_prime"]


def next_pow2(x: int | np.ndarray) -> int | np.ndarray:
    """Smallest power of two strictly greater than ``x`` (elementwise).

    ``next_pow2(0) == 1``, ``next_pow2(1) == 2``, ``next_pow2(4) == 8``.
    """
    if isinstance(x, np.ndarray):
        x = x.astype(np.int64)
        out = np.ones_like(x)
        positive = x > 0
        # bit_length of x is floor(log2(x)) + 1; shifting 1 by it gives the
        # smallest power of two > x except when x is a power of two, where
        # it already is strictly greater. E.g. x=4 (100b, len 3) -> 8.
        lengths = np.zeros_like(x)
        xs = x[positive]
        # Vectorised bit length via frexp on float64 is exact for x < 2**53.
        _, exp = np.frexp(xs.astype(np.float64))
        lengths_pos = exp.astype(np.int64)
        # frexp(x) gives x = m * 2**exp with m in [0.5, 1), so exp is
        # bit_length for all positive ints.
        lengths[positive] = lengths_pos
        out[positive] = np.int64(1) << lengths[positive]
        return out
    x = int(x)
    if x <= 0:
        return 1
    return 1 << x.bit_length()


def table_capacity(degree: int | np.ndarray) -> int | np.ndarray:
    """``p1 = nextPow2(degree) - 1`` — per-vertex hashtable capacity.

    Degree-0 vertices get capacity 1 (a single slot) so that every table
    view is non-empty; such vertices never insert anything.
    """
    cap = next_pow2(degree) - 1
    if isinstance(cap, np.ndarray):
        return np.maximum(cap, 1)
    return max(int(cap), 1)


def secondary_prime(p1: int | np.ndarray) -> int | np.ndarray:
    """The double-hashing modulus: the next Mersenne number above ``p1``.

    The paper writes ``p2 = nextPow2(p1) - 1`` with the requirement
    ``p2 > p1``; since every capacity ``p1`` is itself of the form
    ``2^k - 1``, a literal reading would yield ``p2 == p1``.  The intended
    (and coprime — consecutive Mersenne numbers share no factor) value is
    the next one up, ``2^{k+1} - 1``, i.e. ``nextPow2(p1 + 1) - 1``.
    """
    return next_pow2(p1 + 1) - 1


def is_prime(n: int) -> bool:
    """Deterministic primality test for test assertions (trial division)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True
