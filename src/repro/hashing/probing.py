"""Probe-sequence strategies for open-addressing collision resolution.

The paper compares four strategies (Section 4.2, Figure 3):

* **LINEAR** — fixed step 1: best cache behaviour, worst clustering;
* **QUADRATIC** — step starts at 1 and doubles per collision;
* **DOUBLE** — fixed per-key step ``1 + (k mod p2)`` from a secondary prime:
  no clustering, poor cache behaviour;
* **QUADRATIC_DOUBLE** — the paper's hybrid (Algorithm 2, line 18):
  ``δi ← 2 δi + (k mod p2)``.

The state of a probe sequence is the pair ``(i, δi)`` with the slot being
``i mod p1``; :func:`probe_start` and :func:`probe_advance` operate
elementwise on NumPy arrays so the warp-parallel hashtable can advance every
pending lane of a wave in one call.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "ProbeStrategy",
    "probe_start",
    "probe_advance",
    "probe_slot",
    "UINT32_MASK",
]

#: The paper's implementation computes probe state in 32-bit registers
#: ("we utilize 32-bit integers for vertex identifiers"), so ``i`` and
#: ``δi`` wrap modulo 2^32.  Pass ``wrap32=True`` to probe_start/advance
#: for register-faithful sequences; they match the default int64 maths
#: until a value crosses 2^32 (≈ the 32nd doubling).  After that, pure
#: quadratic probing *freezes* (its power-of-two step doubles to exactly 0)
#: while quadratic-double stays alive through the ``+ (k mod p2)`` term —
#: one more register-level reason the paper's hybrid is the robust choice.
UINT32_MASK = np.int64(2**32 - 1)


class ProbeStrategy(enum.Enum):
    """Collision-resolution strategy for the per-vertex hashtables."""

    LINEAR = "linear"
    QUADRATIC = "quadratic"
    DOUBLE = "double"
    QUADRATIC_DOUBLE = "quadratic-double"

    @property
    def cache_friendly(self) -> bool:
        """Whether successive probes stay in the same cache lines (step 1)."""
        return self is ProbeStrategy.LINEAR


def probe_start(
    keys: np.ndarray,
    p2: np.ndarray,
    strategy: ProbeStrategy,
    *,
    wrap32: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Initial probe state ``(i, δi)`` for each key.

    Algorithm 2 line 2: ``i ← k; δi ← 1`` — except pure double hashing,
    whose step is the per-key constant ``1 + (k mod p2)`` (the ``+1``
    guards against a zero step, which would loop forever on one slot).
    ``wrap32`` applies CUDA-register 32-bit wrapping (see UINT32_MASK).
    """
    i = keys.astype(np.int64, copy=True)
    if strategy is ProbeStrategy.DOUBLE:
        di = 1 + (keys % p2)
    else:
        di = np.ones_like(i)
    if wrap32:
        i &= UINT32_MASK
        di &= UINT32_MASK
    return i, di


def probe_advance(
    i: np.ndarray,
    di: np.ndarray,
    keys: np.ndarray,
    p2: np.ndarray,
    strategy: ProbeStrategy,
    *,
    wrap32: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance probe state after a collision (Algorithm 2 lines 17-18).

    Returns the new ``(i, δi)``; inputs are not modified.  ``wrap32``
    applies CUDA-register 32-bit wrapping after each operation.
    """
    i = i + di
    if strategy is ProbeStrategy.LINEAR:
        pass  # δi stays 1
    elif strategy is ProbeStrategy.QUADRATIC:
        di = 2 * di
    elif strategy is ProbeStrategy.DOUBLE:
        di = di.copy()  # stays 1 + (k mod p2)
    elif strategy is ProbeStrategy.QUADRATIC_DOUBLE:
        di = 2 * di + (keys % p2)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled strategy {strategy}")
    if wrap32:
        i = i & UINT32_MASK
        di = di & UINT32_MASK
    return i, di


def probe_slot(i: np.ndarray, p1: np.ndarray) -> np.ndarray:
    """Slot index ``s = i mod p1`` (Algorithm 2 line 4, the first hash)."""
    return i % p1


def expected_clustering_rank(strategy: ProbeStrategy) -> int:
    """Relative clustering tendency (0 = least clustered).

    Documented ordering from the paper's discussion: double hashing has
    "virtually no clustering", quadratic is intermediate, linear is "highly
    susceptible"; the hybrid behaves like double hashing after the first
    few probes.  Used only by tests as a qualitative cross-check of the
    measured probe statistics.
    """
    return {
        ProbeStrategy.DOUBLE: 0,
        ProbeStrategy.QUADRATIC_DOUBLE: 0,
        ProbeStrategy.QUADRATIC: 1,
        ProbeStrategy.LINEAR: 2,
    }[strategy]
