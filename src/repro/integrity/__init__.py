"""Silent-data-corruption detection and repair.

The compute path's answer to what the durable layers already have: every
store (checkpoints, job journal, delta WAL, epoch journal, RPSNAP01
snapshots) grew its own CRC scheme, but a DRAM bit-flip that lands a label
on a *different-but-valid* community sails past the supervisor's cheap
invariants all the way to a published snapshot.  This package closes that
gap with algorithm-based fault tolerance (ABFT):

* :class:`~repro.integrity.config.IntegrityConfig` — the feature switch;
  ``None``/disabled costs one attribute test per move, like the tracer.
* :class:`~repro.integrity.ecc.SecDedModel` — SEC-DED ECC accounting
  (single-bit upsets corrected and counted, double-bit upsets raise
  :class:`~repro.errors.EccError`).
* :class:`~repro.integrity.guard.IntegrityGuard` — running CSR checksums
  on an amortised scrub schedule, label-conservation audits, hashtable
  spot-audits, and shadow-replay verification, all charged to the perf
  model.
* :func:`~repro.integrity.fsck.fsck_all` — the unified at-rest audit
  behind ``repro fsck --all``.
* :func:`~repro.integrity.soak.run_integrity_soak` — the end-to-end
  corruption soak (live SDC injection + at-rest bit-rot) asserting no
  silent wrong publish across many seeds.
"""

from repro.integrity.config import IntegrityConfig
from repro.integrity.ecc import SecDedModel
from repro.integrity.guard import IntegrityGuard

__all__ = [
    "IntegrityConfig",
    "SecDedModel",
    "IntegrityGuard",
    "IntegrityReport",
    "fsck_all",
    "IntegritySoakReport",
    "run_integrity_soak",
]

_LAZY = {
    # fsck walks every durable store and soak drives whole runs — both pull
    # in the driver, which imports this package.  Loaded on first use.
    "IntegrityReport": "repro.integrity.fsck",
    "fsck_all": "repro.integrity.fsck",
    "IntegritySoakReport": "repro.integrity.soak",
    "run_integrity_soak": "repro.integrity.soak",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
