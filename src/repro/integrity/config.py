"""Configuration for the ABFT integrity guards.

Attached to :class:`repro.core.config.ResilienceConfig` as its
``integrity`` field; ``None`` (the default) keeps the hot path exactly as
it was — every guard site is a single ``is not None`` test, mirroring the
tracer's disabled-path contract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["IntegrityConfig"]


@dataclass(frozen=True)
class IntegrityConfig:
    """Which ABFT guards run, and how often.

    The intervals trade detection latency against modelled cost: every
    guarded move charges its audit traffic to the run's kernel counters,
    so the profile and the budget meter see integrity as real work.
    """

    #: Master switch; ``False`` behaves exactly like ``integrity=None``.
    enabled: bool = True
    #: Verify the CSR running checksums (and run the ECC scrub pass) every
    #: this many iterations.
    scrub_interval: int = 4
    #: Shadow-replay (dual modular redundancy) interval: re-run the move on
    #: a hook-free twin engine and compare labels bit-exactly.  ``None``
    #: disables replay; ``1`` verifies every move (the soak setting).
    verify_interval: int | None = 4
    #: Label-conservation audits: per-move label-set containment plus
    #: boundary label-set / community-count trajectory monotonicity.
    label_audit: bool = True
    #: Hashtable slots spot-checked per guarded move (0 disables).
    spot_audit_slots: int = 64
    #: Checkpoint rewinds the driver may perform before giving up and
    #: re-raising the :class:`~repro.errors.CorruptionDetectedError`.
    max_rewinds: int = 2
    #: Raw DRAM upset probability per bit per scrub pass for the SEC-DED
    #: model (0.0 = no modelled upsets; realistic fleet numbers are tiny).
    ecc_ber: float = 0.0
    #: Seed of the deterministic ECC upset stream (also salts the
    #: spot-audit sampling).
    ecc_seed: int = 0

    def __post_init__(self) -> None:
        if self.scrub_interval < 1:
            raise ConfigurationError(
                f"scrub_interval must be >= 1; got {self.scrub_interval}"
            )
        if self.verify_interval is not None and self.verify_interval < 1:
            raise ConfigurationError(
                f"verify_interval must be >= 1 or None; got {self.verify_interval}"
            )
        if self.spot_audit_slots < 0:
            raise ConfigurationError(
                f"spot_audit_slots must be >= 0; got {self.spot_audit_slots}"
            )
        if self.max_rewinds < 0:
            raise ConfigurationError(
                f"max_rewinds must be >= 0; got {self.max_rewinds}"
            )
        if not 0.0 <= self.ecc_ber <= 1.0:
            raise ConfigurationError(
                f"ecc_ber must be in [0, 1]; got {self.ecc_ber}"
            )

    def with_(self, **overrides) -> "IntegrityConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)
