"""SEC-DED ECC accounting for the simulated device.

Data-center GPUs protect DRAM with single-error-correct, double-error-
detect codes over (typically) 64-bit payload words.  The model here draws
a deterministic Poisson number of raw bit upsets per scrub pass, bins them
into ECC words, and classifies each word with
:meth:`repro.gpu.memory.MemoryModel.secded_classify`:

* 1 upset bit  → corrected in hardware, counted;
* 2 upset bits → detected but uncorrectable — the guard raises
  :class:`~repro.errors.EccError` and the supervisor replays the move;
* ≥3 upset bits (or ECC disabled) → *silent*: the model counts it, and
  only the ABFT guards can catch whatever it broke.

Determinism: the upset stream is seeded ``[seed, pass_index]`` with a
monotone pass counter, so a retried move redraws — a transient double-bit
hit doesn't wedge the retry ladder.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EccError
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import MemoryModel

__all__ = ["SecDedModel"]


class SecDedModel:
    """Deterministic SEC-DED upset model for one device."""

    def __init__(self, device: DeviceSpec, *, ber: float = 0.0, seed: int = 0) -> None:
        self.device = device
        self.mem = MemoryModel(device)
        #: Raw upset probability per bit per scrub pass.
        self.ber = ber
        self.seed = seed
        #: Scrub passes performed (also the per-pass RNG salt).
        self.passes = 0
        #: Cumulative single-bit corrections.
        self.corrected = 0
        #: Cumulative double-bit detections (each raised an ``EccError``).
        self.detected = 0
        #: Cumulative words corrupted beyond SEC-DED's reach.
        self.silent = 0

    def scrub(self, num_bytes: int, *, raise_on_detect: bool = True) -> tuple[int, int, int]:
        """One scrub pass over ``num_bytes``; returns (corrected, detected,
        silent) word counts for this pass.

        Raises :class:`~repro.errors.EccError` when a double-bit error is
        found and ``raise_on_detect`` — after updating the counters, so the
        caller's event record stays accurate.
        """
        self.passes += 1
        if self.ber <= 0.0 or num_bytes <= 0:
            return (0, 0, 0)
        rng = np.random.default_rng([self.seed, self.passes])
        upsets = int(rng.poisson(self.ber * num_bytes * 8))
        if upsets == 0:
            return (0, 0, 0)
        words = self.mem.ecc_words(num_bytes)
        hit_words, bits = np.unique(
            rng.integers(words, size=upsets), return_counts=True
        )
        corrected = detected = silent = 0
        for count in bits:
            verdict = self.mem.secded_classify(int(count))
            if verdict == "corrected":
                corrected += 1
            elif verdict == "detected":
                detected += 1
            elif verdict == "silent":
                silent += 1
        self.corrected += corrected
        self.detected += detected
        self.silent += silent
        if detected and raise_on_detect:
            raise EccError(
                f"SEC-DED scrub pass {self.passes} found {detected} "
                f"uncorrectable double-bit error(s) in {hit_words.shape[0]} "
                f"upset word(s) over {num_bytes} bytes"
            )
        return (corrected, detected, silent)

    def as_dict(self) -> dict:
        """Cumulative counters, JSON-ready."""
        return {
            "passes": self.passes,
            "corrected": self.corrected,
            "detected": self.detected,
            "silent": self.silent,
        }
