"""Unified at-rest integrity audit: ``repro fsck --all``.

Every durable layer already verifies itself — checkpoints
(:func:`repro.resilience.checkpoint.fsck`), delta WALs
(:func:`repro.stream.log.fsck_log`), epoch journals
(:meth:`repro.stream.epoch.EpochJournal.load`), service job journals
(version + labels CRC), and RPSNAP01 snapshots
(:meth:`repro.service.read.Snapshot.open`).  What was missing is one walk
that finds *all* of them under a directory tree and folds the verdicts
into a single machine-readable :class:`IntegrityReport` with one exit-code
contract:

* ``0`` — every store clean (recoverable findings like a WAL torn tail or
  a stale temp file don't count as damage);
* ``1`` — at least one damaged entry;
* ``2`` — the root directory is missing or unreadable.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, SnapshotError, StreamError

__all__ = ["FsckFinding", "StoreReport", "IntegrityReport", "fsck_all"]

#: Entry statuses that indicate real damage (vs recoverable findings).
_DAMAGED = ("corrupt", "unreadable")


@dataclass(frozen=True)
class FsckFinding:
    """Verdict for one file inside one store."""

    path: str
    #: ``ok`` | ``corrupt`` | ``unreadable`` | ``torn-tail`` | ``stale-tmp``.
    status: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {"path": self.path, "status": self.status, "detail": self.detail}


@dataclass
class StoreReport:
    """All findings for one discovered store directory."""

    #: ``checkpoint`` | ``wal`` | ``epoch-journal`` | ``snapshot-catalog``
    #: | ``service-journal``.
    kind: str
    path: str
    findings: list[FsckFinding] = field(default_factory=list)

    @property
    def damaged(self) -> int:
        return sum(1 for f in self.findings if f.status in _DAMAGED)

    @property
    def ok(self) -> bool:
        return self.damaged == 0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "ok": self.ok,
            "damaged": self.damaged,
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass
class IntegrityReport:
    """The unified audit result for one directory tree."""

    root: str
    stores: list[StoreReport] = field(default_factory=list)
    #: Why the walk itself failed ("" = it didn't).
    error: str = ""

    @property
    def damaged(self) -> int:
        return sum(s.damaged for s in self.stores)

    @property
    def ok(self) -> bool:
        return not self.error and self.damaged == 0

    @property
    def exit_code(self) -> int:
        """The unified fsck contract: 0 clean / 1 damaged / 2 unreadable."""
        if self.error:
            return 2
        return 0 if self.damaged == 0 else 1

    def as_dict(self) -> dict:
        return {
            "schema": "repro.integrity/fsck",
            "version": 1,
            "root": self.root,
            "ok": self.ok,
            "error": self.error,
            "stores": [s.as_dict() for s in self.stores],
            "summary": {
                "stores": len(self.stores),
                "entries": sum(len(s.findings) for s in self.stores),
                "damaged": self.damaged,
            },
        }


# ---------------------------------------------------------------------- #
# Per-store walkers
# ---------------------------------------------------------------------- #

def _fsck_checkpoints(directory: Path) -> StoreReport:
    from repro.resilience.checkpoint import fsck

    report = StoreReport(kind="checkpoint", path=str(directory))
    try:
        entries = fsck(directory)
    except CheckpointError as exc:
        report.findings.append(
            FsckFinding(path=str(directory), status="unreadable", detail=str(exc))
        )
        return report
    for entry in entries:
        report.findings.append(FsckFinding(
            path=str(entry.path), status=entry.status, detail=entry.detail
        ))
    return report


def _fsck_wal(directory: Path) -> StoreReport:
    from repro.stream.log import fsck_log

    report = StoreReport(kind="wal", path=str(directory))
    try:
        entries = fsck_log(directory)
    except StreamError as exc:
        report.findings.append(
            FsckFinding(path=str(directory), status="unreadable", detail=str(exc))
        )
        return report
    for entry in entries:
        report.findings.append(FsckFinding(
            path=str(entry.path), status=entry.status, detail=entry.detail
        ))
    return report


def _fsck_epochs(directory: Path) -> StoreReport:
    from repro.stream.epoch import EpochJournal

    report = StoreReport(kind="epoch-journal", path=str(directory))
    for path in sorted(directory.glob("epoch-*.npz")):
        try:
            EpochJournal.load(path)
        except (StreamError, OSError, ValueError) as exc:
            report.findings.append(
                FsckFinding(path=str(path), status="corrupt", detail=str(exc))
            )
        else:
            report.findings.append(FsckFinding(path=str(path), status="ok"))
    for tmp in sorted(directory.glob(".tmp-*")):
        report.findings.append(FsckFinding(
            path=str(tmp), status="stale-tmp", detail="orphaned temp file"
        ))
    return report


def _fsck_snapshots(directory: Path) -> StoreReport:
    from repro.service.read import Snapshot

    report = StoreReport(kind="snapshot-catalog", path=str(directory))
    for path in sorted(directory.glob("v*.snap")):
        try:
            snap = Snapshot.open(path, verify=True)
        except SnapshotError as exc:
            report.findings.append(
                FsckFinding(path=str(path), status="corrupt", detail=str(exc))
            )
        else:
            snap.close()
            report.findings.append(FsckFinding(path=str(path), status="ok"))
    for tmp in sorted(directory.glob(".tmp-*")):
        report.findings.append(FsckFinding(
            path=str(tmp), status="stale-tmp", detail="orphaned temp file"
        ))
    return report


def _fsck_service_journal(directory: Path) -> StoreReport:
    """Verify jobs/*.json records and their labels/*.npz CRCs by hand.

    (Deliberately does not instantiate
    :class:`~repro.service.journal.ServiceJournal` — an audit must not
    create directories in the tree it inspects.)
    """
    report = StoreReport(kind="service-journal", path=str(directory))
    labels_dir = directory / "labels"
    for path in sorted((directory / "jobs").glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            report.findings.append(
                FsckFinding(path=str(path), status="corrupt", detail=str(exc))
            )
            continue
        if not isinstance(doc, dict) or "version" not in doc:
            report.findings.append(FsckFinding(
                path=str(path), status="corrupt", detail="not a job record"
            ))
            continue
        crc = doc.get("labels_crc32")
        if crc is None:
            report.findings.append(FsckFinding(path=str(path), status="ok"))
            continue
        labels_path = labels_dir / f"{path.stem}.npz"
        try:
            with np.load(labels_path, allow_pickle=False) as data:
                labels = data["labels"]
            actual = zlib.crc32(np.ascontiguousarray(labels).tobytes())
        except Exception as exc:
            report.findings.append(FsckFinding(
                path=str(labels_path), status="corrupt",
                detail=f"labels unreadable: {exc}",
            ))
            continue
        if actual != int(crc):
            report.findings.append(FsckFinding(
                path=str(labels_path), status="corrupt",
                detail=f"labels CRC {actual} != recorded {int(crc)}",
            ))
        else:
            report.findings.append(FsckFinding(path=str(path), status="ok"))
    return report


# ---------------------------------------------------------------------- #

def _classify(directory: Path, names: list[str], dirnames: list[str]) -> list[str]:
    """Which store kinds live directly in ``directory``."""
    kinds = []
    if any(n.startswith("ckpt-") and n.endswith(".npz") for n in names):
        kinds.append("checkpoint")
    if any(n.startswith("segment-") and n.endswith(".wal") for n in names):
        kinds.append("wal")
    if any(n.startswith("epoch-") and n.endswith(".npz") for n in names):
        kinds.append("epoch-journal")
    if any(n.startswith("v") and n.endswith(".snap") for n in names):
        kinds.append("snapshot-catalog")
    if "jobs" in dirnames and any((directory / "jobs").glob("*.json")):
        kinds.append("service-journal")
    return kinds


_WALKERS = {
    "checkpoint": _fsck_checkpoints,
    "wal": _fsck_wal,
    "epoch-journal": _fsck_epochs,
    "snapshot-catalog": _fsck_snapshots,
    "service-journal": _fsck_service_journal,
}


def fsck_all(root: str | Path) -> IntegrityReport:
    """Walk ``root`` recursively, verify every durable store found.

    Never raises for damage — the report carries every verdict; a missing
    or unreadable ``root`` is reported via :attr:`IntegrityReport.error`
    (exit code 2).
    """
    root = Path(root)
    report = IntegrityReport(root=str(root))
    if not root.is_dir():
        report.error = f"{root} is not a readable directory"
        return report
    for current, dirnames, filenames in os.walk(root):
        current = Path(current)
        dirnames.sort()
        for kind in _classify(current, sorted(filenames), dirnames):
            report.stores.append(_WALKERS[kind](current))
    return report
