"""ABFT integrity guards for the LPA hot path.

Detection strategy, cheapest first:

1. **CSR running checksums** — offsets/targets/weights are immutable for
   the whole run, so a CRC32 recorded at construction can be re-verified
   on an amortised scrub schedule.  A mismatch is repaired *in place* from
   the guard's golden copies ("re-materialise from the source graph") and
   then surfaced as an :class:`~repro.errors.IntegrityError` so the
   supervisor replays the move that may have consumed the bad bytes.
2. **ECC scrub** — the same pass runs the :class:`SecDedModel`: single-bit
   upsets are corrected and counted, a double-bit upset raises
   :class:`~repro.errors.EccError` (retryable — the model redraws).
3. **Label-conservation audit** — LPA only ever *adopts* labels that are
   already present, so the post-move label set must be contained in the
   pre-move label set, and the distinct-community count must be monotone
   non-increasing boundary over boundary.  An SDC that resurrects a dead
   label or splits a community violates one of the two.
4. **Hashtable spot-audit** — a deterministic sample of slots is checked
   for in-range keys and finite values (full-buffer checks already exist
   behind ``deep_checks``; the spot audit is the amortised version that
   stays on at scale).
5. **Shadow replay (DMR)** — the only guard that catches a *valid-range*
   wrong label: re-run the move from the supervisor's pre-move snapshot on
   a lazily-built, hook-free twin of the same engine class and compare
   labels bit-exactly.  Same class + same config ⇒ identical waves ⇒ any
   divergence is corruption, not nondeterminism.

Every audit charges its traffic to a pending
:class:`~repro.gpu.metrics.KernelCounters` that the driver folds into the
iteration's counters, so profiles, budget metering, and the perf gate all
see integrity as modelled work.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import CorruptionDetectedError, IntegrityError
from repro.gpu.memory import MemoryModel
from repro.gpu.metrics import KernelCounters
from repro.integrity.config import IntegrityConfig
from repro.integrity.ecc import SecDedModel
from repro.types import EMPTY_KEY

__all__ = ["IntegrityGuard", "array_crc32"]

_CSR_ARRAYS = ("offsets", "targets", "weights")


def array_crc32(arr: np.ndarray) -> int:
    """CRC32 over an array's raw bytes (contiguous views are zero-copy)."""
    return zlib.crc32(np.ascontiguousarray(arr).view(np.uint8))


def _repair_frozen(dst: np.ndarray, src: np.ndarray) -> None:
    """Overwrite a write-protected array in place (CSR buffers are frozen)."""
    dst.setflags(write=True)
    try:
        dst[:] = src
    finally:
        dst.setflags(write=False)


class IntegrityGuard:
    """Runs the ABFT audits for one LPA run.

    Wired by :func:`repro.core.lpa.nu_lpa` onto the kernel supervisor:
    :meth:`validate_move` runs inside the supervisor's try block (so every
    detection escalates the existing retry/regrow/fallback ladder from the
    restored pre-move snapshot), :meth:`note_move` / :meth:`at_boundary`
    bracket the driver's iteration boundary, and
    :meth:`~IntegrityGuard.drain` hands the accumulated modelled cost to
    the iteration's counters.
    """

    def __init__(
        self, graph, lpa_config, config: IntegrityConfig, tracer=None, governor=None
    ) -> None:
        self.graph = graph
        self.lpa_config = lpa_config
        self.config = config
        self.tracer = tracer
        #: Optional :class:`~repro.gpu.governor.MemoryGovernor`: the golden
        #: CSR copies and the lazily-built shadow twin are real device
        #: buffers, charged to the ``integrity`` region.
        self.governor = governor
        self._memory_charged = 0
        self.mem = MemoryModel(lpa_config.device)
        self.ecc = SecDedModel(
            lpa_config.device, ber=config.ecc_ber, seed=config.ecc_seed
        )
        #: Golden copies + running checksums of the immutable CSR arrays.
        self._golden = {
            name: getattr(graph, name).copy() for name in _CSR_ARRAYS
        }
        self._csr_crc = {
            name: array_crc32(arr) for name, arr in self._golden.items()
        }
        self._csr_bytes = sum(arr.nbytes for arr in self._golden.values())
        self._charge(self._csr_bytes)
        #: Modelled cost accumulated since the last :meth:`drain`.
        self._pending = KernelCounters()
        #: Label CRC recorded by :meth:`note_move`, checked at the boundary.
        self._labels_crc: int | None = None
        #: Previous boundary's distinct-label set and count.
        self._boundary_set: np.ndarray | None = None
        #: Lazily-built shadow engine (keyed per engine class).
        self._shadow = None
        self._shadow_frontier = None
        #: Bytes of the shadow twin's tables currently charged (tracked so
        #: lockstep regrowth charges only the delta).
        self._shadow_charged = 0
        # Cumulative audit statistics (surfaced as ``result.integrity``).
        self.scrubs = 0
        self.scrub_repairs = 0
        self.shadow_replays = 0
        self.spot_audits = 0
        self.violations = 0
        self.rewinds = 0

    # ------------------------------------------------------------------ #
    # Hot-path guard (called by the supervisor inside its retry ladder)
    # ------------------------------------------------------------------ #

    def validate_move(
        self,
        labels: np.ndarray,
        engine,
        *,
        snapshot_labels: np.ndarray,
        snapshot_flags: np.ndarray,
        pick_less: bool,
        iteration: int,
    ) -> None:
        """Audit one completed move attempt; raises on any detection."""
        cfg = self.config
        if iteration % cfg.scrub_interval == 0:
            self._scrub(iteration)
        if cfg.label_audit:
            self._audit_label_conservation(labels, snapshot_labels, iteration)
        if cfg.spot_audit_slots > 0:
            self._spot_audit(engine, labels.shape[0], iteration)
        if cfg.verify_interval is not None and iteration % cfg.verify_interval == 0:
            self._shadow_replay(
                labels, engine,
                snapshot_labels=snapshot_labels,
                snapshot_flags=snapshot_flags,
                pick_less=pick_less,
                iteration=iteration,
            )

    def _scrub(self, iteration: int) -> None:
        """Verify the CSR checksums and run the SEC-DED pass."""
        self.scrubs += 1
        counters = KernelCounters(
            launches=1,
            sectors_read=self.mem.sectors_for_contiguous(self._csr_bytes, 1),
        )
        self._pending = self._pending + counters
        mismatched = []
        for name in _CSR_ARRAYS:
            if array_crc32(getattr(self.graph, name)) != self._csr_crc[name]:
                mismatched.append(name)
        for name in mismatched:
            _repair_frozen(getattr(self.graph, name), self._golden[name])
            self.scrub_repairs += 1
        self._emit_scrub(iteration, tuple(mismatched), counters)

        before_corrected = self.ecc.corrected
        before_detected = self.ecc.detected
        try:
            self.ecc.scrub(self._csr_bytes)
        finally:
            pass_corrected = self.ecc.corrected - before_corrected
            pass_detected = self.ecc.detected - before_detected
            if (
                self.tracer is not None
                and self.tracer.enabled
                and (pass_corrected or pass_detected)
            ):
                from repro.observe.trace import EccEvent

                self.tracer.emit(EccEvent(
                    iteration=iteration,
                    corrected=pass_corrected,
                    detected=pass_detected,
                    corrected_total=self.ecc.corrected,
                ))

        if mismatched:
            self.violations += 1
            self._emit_integrity(
                iteration, "csr-checksum", "repaired",
                f"re-materialised {','.join(mismatched)} from golden copies",
            )
            raise IntegrityError(
                f"CSR checksum mismatch on {mismatched} at iteration "
                f"{iteration}; arrays re-materialised — replaying the move"
            )

    def _emit_scrub(self, iteration, mismatched, counters) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        from repro.observe.trace import ScrubEvent
        from repro.perf.model import estimate_gpu_seconds

        self.tracer.emit(ScrubEvent(
            iteration=iteration,
            mismatched=mismatched,
            repaired=mismatched,
            scrubbed_bytes=self._csr_bytes,
            modeled_seconds=estimate_gpu_seconds(counters),
        ))

    def _emit_integrity(self, iteration, check, action, detail="") -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        from repro.observe.trace import IntegrityEvent

        self.tracer.emit(IntegrityEvent(
            iteration=iteration, check=check, action=action, detail=detail
        ))

    def _audit_label_conservation(
        self, labels: np.ndarray, snapshot_labels: np.ndarray, iteration: int
    ) -> None:
        """Post-move labels must be drawn from the pre-move label set."""
        if labels.shape[0] == 0:
            return
        self._pending = self._pending + KernelCounters(
            sectors_read=self.mem.sectors_for_contiguous(
                2 * labels.shape[0], labels.itemsize
            ),
        )
        current = np.unique(labels)
        previous = np.unique(snapshot_labels)
        if not np.isin(current, previous, assume_unique=True).all():
            foreign = current[~np.isin(current, previous, assume_unique=True)]
            self.violations += 1
            self._emit_integrity(
                iteration, "label-conservation", "detected",
                f"{foreign.shape[0]} label(s) not present before the move",
            )
            raise IntegrityError(
                f"label-conservation audit failed at iteration {iteration}: "
                f"{foreign.shape[0]} post-move label(s) (e.g. {int(foreign[0])}) "
                f"were not present before the move"
            )

    def _spot_audit(self, engine, num_vertices: int, iteration: int) -> None:
        """Sample hashtable slots for in-range keys and finite values."""
        tables = getattr(engine, "tables", None)
        if tables is None or tables.keys.shape[0] == 0:
            return
        self.spot_audits += 1
        keys = tables.keys
        rng = np.random.default_rng([self.config.ecc_seed, iteration, keys.shape[0]])
        sample = rng.integers(
            keys.shape[0], size=min(self.config.spot_audit_slots, keys.shape[0])
        )
        self._pending = self._pending + KernelCounters(
            sectors_read=self.mem.sectors_for_scattered(2 * sample.shape[0]),
            probes=sample.shape[0],
        )
        picked = keys[sample]
        bad = (picked != EMPTY_KEY) & ((picked < 0) | (picked >= num_vertices))
        if bad.any():
            self.violations += 1
            self._emit_integrity(
                iteration, "spot-audit", "detected",
                f"{int(bad.sum())} out-of-range key(s) in a "
                f"{sample.shape[0]}-slot sample",
            )
            raise IntegrityError(
                f"hashtable spot-audit found {int(bad.sum())} out-of-range "
                f"key(s) at iteration {iteration}"
            )
        occupied = picked != EMPTY_KEY
        if occupied.any():
            values = tables.values[sample[occupied]]
            if not np.isfinite(values).all():
                self.violations += 1
                self._emit_integrity(
                    iteration, "spot-audit", "detected", "non-finite value slot"
                )
                raise IntegrityError(
                    f"hashtable spot-audit found non-finite value(s) at "
                    f"iteration {iteration}"
                )

    def _shadow_replay(
        self,
        labels: np.ndarray,
        engine,
        *,
        snapshot_labels: np.ndarray,
        snapshot_flags: np.ndarray,
        pick_less: bool,
        iteration: int,
    ) -> None:
        """Re-run the move on a hook-free twin engine and compare labels."""
        from repro.core.pruning import Frontier

        if self._shadow is None or type(self._shadow) is not type(engine):
            self._shadow = type(engine)(self.graph, self.lpa_config)
            self._shadow_frontier = Frontier(
                self.graph,
                enabled=self.lpa_config.pruning,
                arena=getattr(self._shadow, "arena", None),
            )
        # Slot order decides max-reduce ties, and slot order follows table
        # capacity — after the supervisor's regrow rung the twin must grow
        # in lockstep or every subsequent replay flags a false divergence.
        tables = getattr(engine, "tables", None)
        shadow_tables = getattr(self._shadow, "tables", None)
        if tables is not None and shadow_tables is not None:
            while shadow_tables.capacity_scale < tables.capacity_scale:
                self._shadow.grow_tables()
                shadow_tables = self._shadow.tables
            while shadow_tables.capacity_scale > tables.capacity_scale:
                # The shrink-tables memory rung also moves slot order.
                self._shadow.shrink_tables()
                shadow_tables = self._shadow.tables
        # The DMR twin's tables are a real device region; (re)charge the
        # delta so the ledger carries the shadow at its current size.
        if shadow_tables is not None:
            shadow_bytes = shadow_tables.memory_bytes()
            if shadow_bytes != self._shadow_charged:
                self._charge(shadow_bytes - self._shadow_charged)
                self._shadow_charged = shadow_bytes
        self.shadow_replays += 1
        shadow_labels = snapshot_labels.copy()
        self._shadow_frontier.flags[:] = snapshot_flags
        outcome = self._shadow.move(
            shadow_labels, self._shadow_frontier,
            pick_less=pick_less, iteration=iteration,
        )
        self._pending = self._pending + outcome.counters
        if not np.array_equal(shadow_labels, labels):
            divergent = int(np.count_nonzero(shadow_labels != labels))
            self.violations += 1
            self._emit_integrity(
                iteration, "shadow-replay", "detected",
                f"{divergent} label(s) diverge from the replayed move",
            )
            raise IntegrityError(
                f"shadow replay diverged on {divergent} label(s) at iteration "
                f"{iteration} ({type(engine).__name__}): silent data "
                f"corruption in the primary move"
            )
        self._emit_integrity(iteration, "shadow-replay", "verified")

    # ------------------------------------------------------------------ #
    # Boundary bracket (called by the driver loop)
    # ------------------------------------------------------------------ #

    def note_move(self, labels: np.ndarray) -> None:
        """Record the committed post-revert label CRC for the boundary."""
        self._labels_crc = array_crc32(labels)
        self._pending = self._pending + KernelCounters(
            sectors_read=self.mem.sectors_for_contiguous(
                labels.shape[0], labels.itemsize
            ),
        )

    def at_boundary(self, labels: np.ndarray, iteration: int) -> None:
        """Audit the committed state before it is checkpointed/published.

        Raises :class:`~repro.errors.CorruptionDetectedError` — the ladder
        can't replay a whole boundary, so the driver rewinds to the last
        good checkpoint instead.
        """
        if self._labels_crc is not None and array_crc32(labels) != self._labels_crc:
            self.violations += 1
            self._emit_integrity(
                iteration, "label-crc", "detected",
                "labels changed between commit and boundary",
            )
            raise CorruptionDetectedError(
                f"label CRC mismatch at iteration boundary {iteration}: the "
                f"committed labels changed after the move was accepted"
            )
        if self.config.label_audit and labels.shape[0]:
            current = np.unique(labels)
            previous = self._boundary_set
            if previous is not None:
                if current.shape[0] > previous.shape[0] or not np.isin(
                    current, previous, assume_unique=True
                ).all():
                    self.violations += 1
                    self._emit_integrity(
                        iteration, "community-trajectory", "detected",
                        f"{current.shape[0]} communities vs {previous.shape[0]} "
                        f"at the previous boundary",
                    )
                    raise CorruptionDetectedError(
                        f"community-count trajectory violation at boundary "
                        f"{iteration}: {current.shape[0]} distinct labels, "
                        f"previous boundary had {previous.shape[0]} and label "
                        f"sets must be non-increasing"
                    )
            self._boundary_set = current

    def note_rewind(self, labels: np.ndarray) -> None:
        """Re-baseline after the driver restored a verified checkpoint."""
        self.rewinds += 1
        self._labels_crc = array_crc32(labels)
        self._boundary_set = np.unique(labels) if labels.shape[0] else None

    # ------------------------------------------------------------------ #

    def _charge(self, delta: int) -> None:
        """Move ``delta`` bytes in or out of the ledger's ``integrity``
        region (no-op without a governor)."""
        if self.governor is None or delta == 0:
            return
        if delta > 0:
            self.governor.reserve("integrity", delta)
        else:
            self.governor.release("integrity", -delta)
        self._memory_charged += delta

    def release_memory(self) -> int:
        """Return every byte this guard charged; idempotent."""
        released = self._memory_charged
        if self.governor is not None and released:
            self.governor.release("integrity", released)
        self._memory_charged = 0
        self._shadow_charged = 0
        self.governor = None
        return released

    def drain(self) -> KernelCounters:
        """Hand the accumulated modelled audit cost to the caller."""
        pending = self._pending
        self._pending = KernelCounters()
        return pending

    def stats(self) -> dict:
        """Cumulative audit statistics, JSON-ready."""
        return {
            "scrubs": self.scrubs,
            "scrub_repairs": self.scrub_repairs,
            "shadow_replays": self.shadow_replays,
            "spot_audits": self.spot_audits,
            "violations": self.violations,
            "rewinds": self.rewinds,
            "ecc": self.ecc.as_dict(),
        }
