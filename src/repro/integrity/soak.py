"""The end-to-end corruption soak: live SDC injection + at-rest bit rot.

Every other soak in the repo attacks *availability* (crashes, torn
writes); this one attacks *truth*.  Each seeded schedule corrupts the
same run three ways and asserts the corruption is either **detected and
recovered** (the final labels are bit-identical to the fault-free
reference) or **provably harmless** — never a silent wrong answer:

1. **live** — ``"sdc"`` device faults flip labels / hashtable entries to
   *valid-but-wrong* values mid-move, with the full
   :class:`~repro.integrity.config.IntegrityConfig` guard stack on
   (per-move shadow replay, per-iteration scrub and audits).  The guard's
   detections descend the supervisor ladder; the run must still end
   bit-identical to the never-faulted reference.
2. **checkpoint at rest** — a random single-bit flip in one committed
   checkpoint generation; :func:`~repro.integrity.fsck.fsck_all` and the
   resume path must between them detect it (or the flip is structurally
   harmless), and a ``resume=True`` run over the damaged ring must still
   reproduce the reference.
3. **snapshot at rest** — a random single-bit flip in the newest
   published RPSNAP01 version; :meth:`~repro.service.read.SnapshotCatalog.
   latest` must either detect it (serving the older intact version and
   recording the skip) or the flip must land in padding and the served
   labels stay correct.

``benchmarks/bench_integrity_soak.py`` runs ≥ 20 schedules and writes
the report as the ``BENCH_integrity_soak.json`` CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import SnapshotNotFoundError
from repro.graph.csr import CSRGraph
from repro.integrity.config import IntegrityConfig
from repro.integrity.fsck import fsck_all
from repro.resilience.faults import FaultSpec

__all__ = [
    "IntegritySoakRecord",
    "IntegritySoakReport",
    "flip_bit",
    "run_integrity_soak",
]

#: Fault-event class names that count as a *detection* of corruption.
_DETECTIONS = ("IntegrityError", "CorruptionDetectedError", "EccError")

#: Hashtable corruption targets the live leg may draw from.
_SDC_TARGETS = ("labels", "keys", "values")


def flip_bit(path: str | Path, byte: int, bit: int) -> None:
    """Flip one bit of one file in place (the at-rest corruption)."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    blob[byte % len(blob)] ^= 1 << (bit % 8)
    path.write_bytes(bytes(blob))


@dataclass
class IntegritySoakRecord:
    """Outcome of one seeded corruption schedule (three legs)."""

    seed: int
    #: Live leg: guard detections that descended the supervisor ladder
    #: (a fire that swings nothing is harmless by design and invisible).
    live_detections: int
    live_identical: bool
    #: Checkpoint-at-rest leg.
    ckpt_flip: str
    ckpt_detected: bool
    ckpt_identical: bool
    #: Snapshot-at-rest leg.
    snap_flip: str
    snap_detected: bool
    snap_identical: bool
    #: Guard stats of the live run (scrubs, shadow replays, ...).
    guard: dict = field(default_factory=dict)

    @property
    def silent(self) -> int:
        """Corruptions that changed the answer without any detection."""
        count = 0
        if not self.live_identical and self.live_detections == 0:
            count += 1
        if not self.ckpt_identical and not self.ckpt_detected:
            count += 1
        if not self.snap_identical and not self.snap_detected:
            count += 1
        return count

    @property
    def ok(self) -> bool:
        """Detected-and-recovered or harmless, on every leg."""
        return self.live_identical and self.ckpt_identical and self.snap_identical

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "silent": self.silent,
            "live": {
                "detections": self.live_detections,
                "identical": self.live_identical,
            },
            "checkpoint": {
                "flip": self.ckpt_flip,
                "detected": self.ckpt_detected,
                "identical": self.ckpt_identical,
            },
            "snapshot": {
                "flip": self.snap_flip,
                "detected": self.snap_detected,
                "identical": self.snap_identical,
            },
            "guard": dict(self.guard),
        }


@dataclass
class IntegritySoakReport:
    """All schedules of one integrity soak."""

    engine: str
    num_vertices: int
    num_edges: int
    records: list[IntegritySoakRecord] = field(default_factory=list)

    @property
    def silent(self) -> int:
        """Total silent wrong answers across every schedule (must be 0)."""
        return sum(r.silent for r in self.records)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records) and self.silent == 0

    def summary(self) -> str:
        """One-line digest."""
        detected = sum(
            r.live_detections + r.ckpt_detected + r.snap_detected
            for r in self.records
        )
        wrong = sum(not r.ok for r in self.records)
        return (
            f"{len(self.records)} schedule(s): {detected} detection(s), "
            f"{self.silent} silent, {wrong} wrong"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (the CI artifact body)."""
        return {
            "schema": "repro.observe/integrity-soak",
            "version": 1,
            "engine": self.engine,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "ok": self.ok,
            "silent": self.silent,
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
        }


# --------------------------------------------------------------------- #


def _run_live(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    reference: np.ndarray,
    rng: np.random.Generator,
    seed: int,
) -> tuple[int, bool, dict]:
    """Leg 1: SDC injection under the full guard stack."""
    n_targets = int(rng.integers(1, len(_SDC_TARGETS) + 1))
    targets = tuple(sorted(
        rng.choice(list(_SDC_TARGETS), size=n_targets, replace=False).tolist()
    ))
    spec = FaultSpec(
        kinds=("sdc",),
        rate=float(rng.uniform(0.3, 1.0)),
        seed=int(rng.integers(0, 2**31)),
        max_fires=int(rng.integers(1, 5)),
        targets=targets,
    )
    # Only a clean *retry* reproduces the reference move bit-exactly — the
    # regrow and fallback rungs recover validly but perturb max-reduce
    # tie-breaking.  Give the retry rung enough headroom to outlast the
    # bounded injection budget (max_fires <= 4 < max_retries).
    result = nu_lpa(
        graph, config, engine=engine, warn_on_no_convergence=False,
        resilience=ResilienceConfig(
            faults=spec,
            max_retries=8,
            integrity=IntegrityConfig(scrub_interval=1, verify_interval=1),
        ),
    )
    detections = sum(
        1 for ev in result.fault_events if ev.fault in _DETECTIONS
    )
    return (
        detections,
        bool(np.array_equal(result.labels, reference)),
        result.integrity or {},
    )


def _run_ckpt_at_rest(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    reference: np.ndarray,
    ckpt_dir: Path,
    rng: np.random.Generator,
) -> tuple[str, bool, bool]:
    """Leg 2: bit rot in a committed checkpoint generation."""
    found = sorted(ckpt_dir.glob("ckpt-*.npz"))
    if not found:
        return ("", True, True)
    victim = found[int(rng.integers(len(found)))]
    byte = int(rng.integers(victim.stat().st_size))
    bit = int(rng.integers(8))
    flip_bit(victim, byte, bit)
    flip = f"{victim.name}:{byte}:{bit}"

    detected = fsck_all(ckpt_dir).damaged > 0
    resumed = nu_lpa(
        graph, config, engine=engine, warn_on_no_convergence=False,
        resilience=ResilienceConfig(
            checkpoint_dir=ckpt_dir, checkpoint_every=1, resume=True,
        ),
    )
    return (flip, detected, bool(np.array_equal(resumed.labels, reference)))


def _run_snap_at_rest(
    graph: CSRGraph,
    reference: np.ndarray,
    snap_dir: Path,
    rng: np.random.Generator,
    seed: int,
) -> tuple[str, bool, bool]:
    """Leg 3: bit rot in the newest published snapshot version."""
    from repro.service.read import SnapshotCatalog

    job_id = f"soak-{seed}"
    catalog = SnapshotCatalog(snap_dir)
    # v1 is a decoy (pre-propagation labels) so the fallback past a
    # damaged v2 is observable as serving *different* content.
    catalog.publish(
        job_id, np.arange(graph.num_vertices, dtype=np.int64), dedupe=False
    )
    newest = catalog.publish(job_id, reference, dedupe=False)
    byte = int(rng.integers(newest.stat().st_size))
    bit = int(rng.integers(8))
    flip_bit(newest, byte, bit)
    flip = f"{newest.name}:{byte}:{bit}"

    try:
        snap = catalog.latest(job_id)
    except SnapshotNotFoundError:
        # Both versions damaged is impossible here (v1 is intact), so
        # reaching this means the fallback itself is broken.
        return (flip, True, False)
    served = np.asarray(snap.labels).copy()
    version = snap.snapshot_version
    snap.close()
    detected = len(catalog.skipped) > 0
    if detected:
        # Fallback served the intact decoy — correct behaviour, and the
        # damage was detected; the *newest correct* content survives in
        # the publisher for re-publish.
        identical = version == 1 and bool(
            np.array_equal(served, np.arange(graph.num_vertices))
        )
    else:
        # No skip: the flip must have been harmless padding.
        identical = version == 2 and bool(np.array_equal(served, reference))
    return (flip, detected, identical)


def run_integrity_soak(
    graph: CSRGraph,
    workdir: str | Path,
    *,
    seeds: int = 20,
    seed: int = 0,
    engine: str = "hashtable",
    config: LPAConfig | None = None,
) -> IntegritySoakReport:
    """Run ``seeds`` corruption schedules against ``graph``.

    Schedule *i* derives every random choice from
    ``default_rng([seed, i])``, so any failure replays in isolation.
    ``workdir`` keeps one checkpoint + snapshot directory per schedule
    for post-mortem.
    """
    config = config or LPAConfig()
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = IntegritySoakReport(
        engine=engine,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
    for i in range(seeds):
        rng = np.random.default_rng([seed, i])
        ckpt_dir = workdir / f"schedule-{i}" / "ckpt"
        snap_dir = workdir / f"schedule-{i}" / "snap"
        # The fault-free reference run also writes the checkpoint ring the
        # at-rest leg will damage.
        reference = nu_lpa(
            graph, config, engine=engine, warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                checkpoint_dir=ckpt_dir, checkpoint_every=1,
            ),
        )
        live_det, live_id, guard = _run_live(
            graph, config, engine, reference.labels, rng, seed + i
        )
        ckpt_flip, ckpt_det, ckpt_id = _run_ckpt_at_rest(
            graph, config, engine, reference.labels, ckpt_dir, rng
        )
        snap_flip, snap_det, snap_id = _run_snap_at_rest(
            graph, reference.labels, snap_dir, rng, seed + i
        )
        report.records.append(IntegritySoakRecord(
            seed=seed + i,
            live_detections=live_det,
            live_identical=live_id,
            ckpt_flip=ckpt_flip,
            ckpt_detected=ckpt_det,
            ckpt_identical=ckpt_id,
            snap_flip=snap_flip,
            snap_detected=snap_det,
            snap_identical=snap_id,
            guard=guard,
        ))
    return report
