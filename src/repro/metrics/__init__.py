"""Community-quality metrics: modularity, NMI/ARI, community statistics."""

from repro.metrics.modularity import modularity, delta_modularity
from repro.metrics.nmi import normalized_mutual_information, adjusted_rand_index
from repro.metrics.community_stats import (
    CommunitySummary,
    community_sizes,
    num_communities,
    summarize_communities,
    compact_labels,
)

__all__ = [
    "modularity",
    "delta_modularity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "CommunitySummary",
    "community_sizes",
    "num_communities",
    "summarize_communities",
    "compact_labels",
]
