"""Descriptive statistics of a community assignment.

Table 1's last column (:math:`|\\Gamma|`, communities found by ν-LPA) and
the experiment reports consume these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "compact_labels",
    "community_sizes",
    "num_communities",
    "CommunitySummary",
    "summarize_communities",
    "intra_edge_fraction",
]


def compact_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber labels to dense ``0..k-1`` preserving first-appearance order."""
    labels = np.asarray(labels)
    _, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(VERTEX_DTYPE)


def community_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of all communities (index = compacted community id)."""
    return np.bincount(compact_labels(labels))


def num_communities(labels: np.ndarray) -> int:
    """Number of distinct communities :math:`|\\Gamma|`."""
    return int(np.unique(np.asarray(labels)).shape[0])


def intra_edge_fraction(graph: CSRGraph, labels: np.ndarray) -> float:
    """Weighted fraction of arcs that stay inside a community."""
    if graph.num_edges == 0:
        return 0.0
    labels = np.asarray(labels)
    src = graph.source_ids()
    same = labels[src] == labels[graph.targets]
    w = graph.weights.astype(np.float64)
    total = w.sum()
    return float(w[same].sum() / total) if total > 0 else 0.0


@dataclass(frozen=True)
class CommunitySummary:
    """Shape of a community assignment, as reported in experiment tables."""

    num_communities: int
    largest: int
    smallest: int
    mean_size: float
    median_size: float
    #: Fraction of vertices in the single largest community — the "monster
    #: community" diagnostic from the LPA literature.
    largest_fraction: float
    #: Number of singleton communities.
    singletons: int


def summarize_communities(labels: np.ndarray) -> CommunitySummary:
    """Compute a :class:`CommunitySummary` for ``labels``."""
    sizes = community_sizes(labels)
    if sizes.shape[0] == 0:
        return CommunitySummary(0, 0, 0, 0.0, 0.0, 0.0, 0)
    n = int(sizes.sum())
    return CommunitySummary(
        num_communities=int(sizes.shape[0]),
        largest=int(sizes.max()),
        smallest=int(sizes.min()),
        mean_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        largest_fraction=float(sizes.max() / n),
        singletons=int(np.count_nonzero(sizes == 1)),
    )
