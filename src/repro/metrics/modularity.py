"""Modularity (Equation 1) and delta-modularity (Equation 2).

.. math::

   Q = \\sum_{c \\in \\Gamma} \\left[ \\frac{\\sigma_c}{2m}
       - \\left(\\frac{\\Sigma_c}{2m}\\right)^2 \\right]

where :math:`\\sigma_c` is twice-counted intra-community weight and
:math:`\\Sigma_c` the total weight incident to community *c*.  The
implementation is a pair of weighted bincounts over the CSR arcs — O(M)
with no Python loop — using float64 accumulators regardless of the edge
dtype (fp32 sums over 1e8 edges lose digits that modularity comparisons at
the 0.1% level care about).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["modularity", "delta_modularity", "community_weights"]


def community_weights(
    graph: CSRGraph, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Per-community ``(sigma_c, Sigma_c)`` and the total weight ``m``.

    ``sigma_c`` counts intra-community arc weight (each undirected edge
    twice, matching :math:`2 \\sigma_c` in the paper's notation being
    ``sigma`` here over arcs); ``Sigma_c`` is the sum of weighted degrees of
    the community's members.  Labels may be any non-negative integers.
    """
    labels = np.asarray(labels)
    if labels.shape[0] != graph.num_vertices:
        raise ValueError(
            f"labels length {labels.shape[0]} != num_vertices {graph.num_vertices}"
        )
    src = graph.source_ids()
    dst = graph.targets
    w = graph.weights.astype(np.float64)

    n_comms = int(labels.max()) + 1 if labels.shape[0] else 0
    # bincount is a single C pass accumulating float64 in input order —
    # the same summation order np.add.at performs, so the results are
    # bit-identical (tests/metrics pins this), at a fraction of the cost.
    same = labels[src] == labels[dst]
    intra = np.bincount(labels[src[same]], weights=w[same], minlength=n_comms)
    total = np.bincount(labels[src], weights=w, minlength=n_comms)

    m = float(w.sum() / 2.0)
    return intra, total, m


def modularity(graph: CSRGraph, labels: np.ndarray) -> float:
    """Modularity :math:`Q \\in [-0.5, 1]` of a disjoint community assignment."""
    if graph.num_edges == 0:
        return 0.0
    intra, total, m = community_weights(graph, labels)
    if m == 0:
        return 0.0
    return float((intra / (2.0 * m) - (total / (2.0 * m)) ** 2).sum())


def delta_modularity(
    graph: CSRGraph,
    labels: np.ndarray,
    vertex: int,
    target_community: int,
    *,
    weighted_degrees: np.ndarray | None = None,
    community_totals: np.ndarray | None = None,
) -> float:
    """Equation 2: :math:`\\Delta Q_{i: d \\to c}` of moving ``vertex`` to
    ``target_community``.

    .. math::

       \\Delta Q = \\frac{1}{m}(K_{i \\to c} - K_{i \\to d})
                   - \\frac{K_i}{2 m^2}(K_i + \\Sigma_c - \\Sigma_d)

    ``weighted_degrees`` / ``community_totals`` may be passed to amortise
    recomputation across many calls (the Louvain baseline does).
    """
    labels = np.asarray(labels)
    d = int(labels[vertex])
    c = int(target_community)
    if d == c:
        return 0.0
    m = graph.total_weight()
    if m == 0:
        return 0.0

    nbrs = graph.neighbors(vertex)
    wts = graph.neighbor_weights(vertex).astype(np.float64)
    non_loop = nbrs != vertex
    nbr_labels = labels[nbrs[non_loop]]
    nbr_w = wts[non_loop]
    k_i_to_c = float(nbr_w[nbr_labels == c].sum())
    k_i_to_d = float(nbr_w[nbr_labels == d].sum())

    if weighted_degrees is None:
        weighted_degrees = graph.weighted_degrees()
    k_i = float(weighted_degrees[vertex])

    if community_totals is None:
        # Size for the target too: moving to a brand-new (empty) community
        # is legal and has Sigma_c = 0.
        n_comms = max(int(labels.max()), c, d) + 1
        community_totals = np.bincount(
            labels, weights=weighted_degrees, minlength=n_comms
        )
    sigma_c = float(community_totals[c]) if c < community_totals.shape[0] else 0.0
    sigma_d = float(community_totals[d])

    return (k_i_to_c - k_i_to_d) / m - k_i * (k_i + sigma_c - sigma_d) / (2.0 * m * m)
