"""Clustering-agreement metrics: NMI and adjusted Rand index.

The paper notes LPA "has been shown to achieve high Normalized Mutual
Information (NMI) relative to ground truth" despite moderate modularity;
our quality tests verify that on planted-partition stand-ins.  Both metrics
are computed from the sparse contingency table of the two labelings, built
with a single ``np.unique`` over paired labels — O(N log N), no N×N table.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalized_mutual_information", "adjusted_rand_index"]


def _contingency(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse contingency counts: (pair counts n_ij, row sums a_i, col sums b_j)."""
    a = np.asarray(labels_a).ravel()
    b = np.asarray(labels_b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"label arrays differ in length: {a.shape} vs {b.shape}")
    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    n_b = int(b_ids.max()) + 1 if b.shape[0] else 0
    pair = a_ids.astype(np.int64) * n_b + b_ids
    _, pair_counts = np.unique(pair, return_counts=True)
    a_counts = np.bincount(a_ids)
    b_counts = np.bincount(b_ids)
    return pair_counts.astype(np.float64), a_counts.astype(np.float64), b_counts.astype(np.float64)


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    Returns 1.0 when both labelings are identical partitions and — by the
    usual convention — when both are the single trivial cluster.
    """
    nij, ai, bj = _contingency(labels_a, labels_b)
    n = ai.sum()
    if n == 0:
        return 1.0

    h_a = -np.sum((ai / n) * np.log(ai / n, where=ai > 0, out=np.zeros_like(ai)))
    h_b = -np.sum((bj / n) * np.log(bj / n, where=bj > 0, out=np.zeros_like(bj)))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0

    # I(A;B) = sum_ij (n_ij / n) log(n * n_ij / (a_i * b_j)); we only have
    # the nonzero n_ij, but need their (i, j) marginals — recompute pairs.
    a = np.asarray(labels_a).ravel()
    b = np.asarray(labels_b).ravel()
    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    n_b = int(b_ids.max()) + 1
    pair = a_ids.astype(np.int64) * n_b + b_ids
    uniq_pairs, counts = np.unique(pair, return_counts=True)
    i_of = uniq_pairs // n_b
    j_of = uniq_pairs % n_b
    p_ij = counts / n
    mi = float(np.sum(p_ij * np.log(n * counts / (ai[i_of] * bj[j_of]))))

    denom = 0.5 * (h_a + h_b)
    return float(np.clip(mi / denom, 0.0, 1.0)) if denom > 0 else 1.0


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """ARI in [-1, 1]; 0 in expectation for independent random labelings."""
    nij, ai, bj = _contingency(labels_a, labels_b)
    n = ai.sum()
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray | float) -> np.ndarray | float:
        return x * (x - 1.0) / 2.0

    sum_ij = float(np.sum(comb2(nij)))
    sum_a = float(np.sum(comb2(ai)))
    sum_b = float(np.sum(comb2(bj)))
    total = float(comb2(n))
    expected = sum_a * sum_b / total
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return (sum_ij - expected) / (max_index - expected)
