"""Additional partition-quality metrics: conductance, coverage, performance.

Modularity (the paper's metric) rewards statistically-surprising density;
these complements answer different questions — how leaky each community's
boundary is (conductance), what fraction of edges the partition explains
(coverage), and how many vertex pairs it classifies correctly
(performance).  All are O(M) scatter-adds.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.metrics.community_stats import compact_labels

__all__ = [
    "coverage",
    "performance",
    "community_conductance",
    "mean_conductance",
]


def coverage(graph: CSRGraph, labels: np.ndarray) -> float:
    """Weighted fraction of edges with both endpoints in one community."""
    if graph.num_edges == 0:
        return 0.0
    labels = np.asarray(labels)
    src = graph.source_ids()
    w = graph.weights.astype(np.float64)
    total = w.sum()
    if total == 0:
        return 0.0
    same = labels[src] == labels[graph.targets]
    return float(w[same].sum() / total)


def performance(graph: CSRGraph, labels: np.ndarray) -> float:
    """Fraction of vertex pairs classified correctly (unweighted).

    A pair is correct when it is an intra-community edge or an absent
    inter-community edge.  Computed from counts, not an N² loop.
    """
    n = graph.num_vertices
    if n < 2:
        return 1.0
    labels = compact_labels(np.asarray(labels))
    sizes = np.bincount(labels).astype(np.float64)
    total_pairs = n * (n - 1) / 2.0
    intra_pairs = float((sizes * (sizes - 1) / 2.0).sum())

    src = graph.source_ids()
    dst = graph.targets
    non_loop = src != dst
    same = labels[src[non_loop]] == labels[dst[non_loop]]
    # Arcs count each undirected edge twice.
    intra_edges = float(np.count_nonzero(same)) / 2.0
    inter_edges = float(np.count_nonzero(~same)) / 2.0

    correct = intra_edges + ((total_pairs - intra_pairs) - inter_edges)
    return float(correct / total_pairs)


def community_conductance(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Conductance of every community: cut weight / min(vol, total - vol).

    Lower is better; singleton or whole-graph communities get conductance
    1.0 and 0.0 respectively by convention of the limiting cases.
    """
    labels = compact_labels(np.asarray(labels))
    n_comms = int(labels.max()) + 1 if labels.shape[0] else 0
    src = graph.source_ids()
    dst = graph.targets
    w = graph.weights.astype(np.float64)

    volume = np.zeros(n_comms)
    np.add.at(volume, labels[src], w)
    cut = np.zeros(n_comms)
    inter = labels[src] != labels[dst]
    np.add.at(cut, labels[src[inter]], w[inter])

    total = w.sum()
    denom = np.minimum(volume, total - volume)
    out = np.ones(n_comms)
    ok = denom > 0
    out[ok] = cut[ok] / denom[ok]
    out[volume == total] = 0.0
    return out


def mean_conductance(graph: CSRGraph, labels: np.ndarray) -> float:
    """Unweighted mean of per-community conductance (lower = better)."""
    cond = community_conductance(graph, labels)
    return float(cond.mean()) if cond.shape[0] else 0.0
