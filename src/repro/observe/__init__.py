"""Structured observability for the simulated GPU (tracing + profiling).

Three layers:

* :mod:`repro.observe.trace` — :class:`Tracer` and the typed event records
  emitted by the engines, the driver, and the resilience supervisor;
* :mod:`repro.observe.profile` — :class:`RunProfile`, the per-kernel /
  per-iteration aggregation priced through :mod:`repro.perf.model`;
* :mod:`repro.observe.schema` — versioned JSON schemas and validators for
  profile documents and ``BENCH_*.json`` regression baselines.

Entry points: ``nu_lpa(..., profile=True)`` / ``nu_lpa(..., tracer=t)``,
the CLI's ``--profile`` / ``--trace-out``, and
``benchmarks/bench_profile_trajectory.py``.  See docs/observability.md.

The package exports lazily (PEP 562): the engines import
:mod:`repro.observe.trace` on their hot path, and resolving profile/schema
names eagerly here would drag :mod:`repro.perf` (and through it the
baselines) into that import, creating a cycle back into the engines.
"""

from repro.observe.trace import (
    BreakerEvent,
    ConvergenceEvent,
    EpochEvent,
    FaultRungEvent,
    IterationEvent,
    JobEvent,
    KernelLaunchEvent,
    MemoryEvent,
    OomEvent,
    QueryEvent,
    QueryStatsEvent,
    ServiceStatsEvent,
    Tracer,
    TraceEvent,
    WaveBatchEvent,
    WaveEvent,
    counter_delta,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "KernelLaunchEvent",
    "WaveEvent",
    "IterationEvent",
    "FaultRungEvent",
    "ConvergenceEvent",
    "JobEvent",
    "MemoryEvent",
    "OomEvent",
    "BreakerEvent",
    "ServiceStatsEvent",
    "EpochEvent",
    "WaveBatchEvent",
    "QueryEvent",
    "QueryStatsEvent",
    "counter_delta",
    "RunProfile",
    "IterationProfile",
    "KernelProfile",
    "build_profile",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_VERSION",
    "STREAM_SOAK_SCHEMA",
    "STREAM_SOAK_SCHEMA_VERSION",
    "QUERY_BENCH_SCHEMA",
    "QUERY_BENCH_SCHEMA_VERSION",
    "MEMORY_SOAK_SCHEMA",
    "MEMORY_SOAK_SCHEMA_VERSION",
    "validate_profile",
    "validate_bench",
    "validate_service_stats",
    "validate_stream_soak",
    "validate_query_bench",
    "validate_memory_soak",
]

_PROFILE_NAMES = {"RunProfile", "IterationProfile", "KernelProfile", "build_profile"}
_SCHEMA_NAMES = {
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_VERSION",
    "STREAM_SOAK_SCHEMA",
    "STREAM_SOAK_SCHEMA_VERSION",
    "QUERY_BENCH_SCHEMA",
    "QUERY_BENCH_SCHEMA_VERSION",
    "MEMORY_SOAK_SCHEMA",
    "MEMORY_SOAK_SCHEMA_VERSION",
    "validate_profile",
    "validate_bench",
    "validate_service_stats",
    "validate_stream_soak",
    "validate_query_bench",
    "validate_memory_soak",
}


def __getattr__(name: str):
    if name in _PROFILE_NAMES:
        from repro.observe import profile

        return getattr(profile, name)
    if name in _SCHEMA_NAMES:
        from repro.observe import schema

        return getattr(schema, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
