"""Run profiles: aggregate counters and trace records into one report.

A :class:`RunProfile` is the structured answer to "where did this run's
modelled time go": per-iteration and per-kernel breakdowns priced through
:mod:`repro.perf.model`, sector traffic in device-correct bytes, probe and
divergence histograms, atomic-conflict rates, and the resilience
supervisor's degradation rungs.  It serialises to the versioned JSON
schema in :mod:`repro.observe.schema` (``repro.observe/profile``).

The per-kernel breakdown needs per-wave counter deltas and therefore a
:class:`~repro.observe.trace.Tracer`; everything else is computed from the
:class:`~repro.core.result.LPAResult` alone, so ``build_profile`` degrades
gracefully for untraced runs (``kernels`` is empty, histograms fall back
to per-iteration granularity).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelCounters
from repro.observe.schema import PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION
from repro.observe.trace import Tracer
from repro.perf.model import estimate_gpu_seconds
from repro.perf.platforms import A100_PLATFORM, GpuPlatform

__all__ = [
    "IterationProfile",
    "KernelProfile",
    "RunProfile",
    "build_profile",
    "platform_for_device",
]

#: Histogram bin edges for probes-per-edge (1.0 = collision-free) and
#: warp-serialised work per edge; samples above the last edge are clipped
#: into the final bin so the serialised form needs no open-ended bin.
_HIST_EDGES = [0.0, 0.5, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0]


@dataclass(frozen=True)
class IterationProfile:
    """One iteration's share of the run, priced by the cost model."""

    iteration: int
    changed: int
    processed: int
    pick_less: bool
    cross_check: bool
    reverted: int
    modeled_seconds: float
    counters: dict

    def as_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "changed": self.changed,
            "processed": self.processed,
            "pick_less": self.pick_less,
            "cross_check": self.cross_check,
            "reverted": self.reverted,
            "modeled_seconds": self.modeled_seconds,
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class KernelProfile:
    """One kernel kind's share of the run (requires a trace)."""

    kernel: str
    launches: int
    waves: int
    modeled_seconds: float
    counters: dict

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "launches": self.launches,
            "waves": self.waves,
            "modeled_seconds": self.modeled_seconds,
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class RunProfile:
    """Aggregated profile of one ν-LPA run."""

    algorithm: str
    converged: bool
    device_name: str
    sector_bytes: int
    #: Modelled seconds of the whole run (cost model over summed counters).
    modeled_seconds: float
    #: Total global-memory traffic at the device's sector size, bytes.
    bytes_moved: int
    #: Summed :class:`KernelCounters` of the run, as a plain dict.
    counters: dict
    iterations: tuple[IterationProfile, ...] = ()
    kernels: tuple[KernelProfile, ...] = ()
    histograms: dict = field(default_factory=dict)
    rates: dict = field(default_factory=dict)
    #: Degradation-ladder actions taken by the supervisor, action -> count.
    fault_rungs: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @property
    def iteration_seconds_sum(self) -> float:
        """Exact (fsum) total of the per-iteration modelled seconds.

        Agrees with :attr:`modeled_seconds` to well under 1e-9: the cost
        model is linear in the (integer) counters, so summing priced
        iterations and pricing summed counters differ only by float
        associativity.
        """
        return math.fsum(it.modeled_seconds for it in self.iterations)

    def as_dict(self) -> dict:
        """JSON-ready document matching ``repro.observe/profile`` v1."""
        return {
            "schema": PROFILE_SCHEMA,
            "version": PROFILE_SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "converged": self.converged,
            "device": {"name": self.device_name, "sector_bytes": self.sector_bytes},
            "modeled_seconds": self.modeled_seconds,
            "bytes_moved": self.bytes_moved,
            "counters": dict(self.counters),
            "iterations": [it.as_dict() for it in self.iterations],
            "kernels": [k.as_dict() for k in self.kernels],
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "rates": dict(self.rates),
            "fault_rungs": dict(self.fault_rungs),
        }

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        """Serialise; additionally write to ``path`` when given."""
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def summary(self) -> str:
        """Human-readable breakdown for the CLI's ``--profile`` flag."""
        lines = [
            f"profile:     {self.algorithm} on {self.device_name} "
            f"({len(self.iterations)} iterations, "
            f"{'converged' if self.converged else 'not converged'})",
            f"  modelled:  {self.modeled_seconds * 1e3:.3f} ms "
            f"({self.bytes_moved / 1e6:.2f} MB moved, "
            f"{self.counters.get('launches', 0)} launches, "
            f"{self.counters.get('waves', 0)} waves)",
            f"  rates:     {self.rates.get('probes_per_edge', 0.0):.3f} probes/edge, "
            f"{self.rates.get('atomic_conflict_rate', 0.0):.4f} conflicts/atomic",
        ]
        for k in self.kernels:
            lines.append(
                f"  kernel:    {k.kernel:18s} {k.launches:4d} launches "
                f"{k.waves:5d} waves  {k.modeled_seconds * 1e3:9.3f} ms"
            )
        for it in self.iterations:
            flags = "".join(
                ("P" if it.pick_less else "-", "C" if it.cross_check else "-")
            )
            lines.append(
                f"  iter {it.iteration:3d} [{flags}]  changed {it.changed:8d}  "
                f"processed {it.processed:8d}  {it.modeled_seconds * 1e3:9.3f} ms"
            )
        if self.fault_rungs:
            rungs = ", ".join(f"{k}={v}" for k, v in sorted(self.fault_rungs.items()))
            lines.append(f"  faults:    {rungs}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #


def platform_for_device(
    device: DeviceSpec, platform: GpuPlatform = A100_PLATFORM
) -> GpuPlatform:
    """Platform with its sector size aligned to the counters' device.

    Public because the driver's :class:`~repro.core.budget.BudgetMeter`
    needs the same alignment when pricing iterations against a
    ``gpu_seconds`` budget.
    """
    if platform.sector_bytes == device.sector_bytes:
        return platform
    return replace(platform, sector_bytes=device.sector_bytes)


#: Backwards-compatible private alias (pre-hardening name).
_platform_for = platform_for_device


def _histogram(samples: list[float]) -> dict:
    data = np.asarray(samples, dtype=np.float64)
    if data.size:
        data = np.clip(data, _HIST_EDGES[0], _HIST_EDGES[-1])
    counts, edges = np.histogram(data, bins=_HIST_EDGES)
    return {"bin_edges": [float(e) for e in edges], "counts": [int(c) for c in counts]}


def _kernel_profiles(tracer: Tracer, platform: GpuPlatform) -> tuple[KernelProfile, ...]:
    launches: dict[str, int] = {}
    waves: dict[str, int] = {}
    counters: dict[str, KernelCounters] = {}
    for ev in tracer.of_kind("kernel_launch"):
        launches[ev.kernel] = launches.get(ev.kernel, 0) + 1
        waves[ev.kernel] = waves.get(ev.kernel, 0) + ev.num_waves
    # Persistent-kernel dispatches (after the first launch of a kind) are
    # grid-resident: they cost waves but no launch overhead.
    for ev in tracer.of_kind("persistent_kernel"):
        launches.setdefault(ev.kernel, 0)
        waves[ev.kernel] = waves.get(ev.kernel, 0) + ev.num_waves
    for ev in tracer.of_kind("wave"):
        acc = counters.setdefault(ev.kernel, KernelCounters())
        acc += KernelCounters(**ev.counters)
    profiles = []
    for kernel in sorted(launches):
        c = counters.get(kernel, KernelCounters())
        # Wave deltas exclude the per-launch bookkeeping (launches/waves
        # are incremented once per grid, outside the wave loop); restore
        # them from the launch events so per-kernel pricing includes the
        # launch and wave overhead terms.
        c.launches = launches[kernel]
        c.waves = waves[kernel]
        profiles.append(
            KernelProfile(
                kernel=kernel,
                launches=launches[kernel],
                waves=waves[kernel],
                modeled_seconds=estimate_gpu_seconds(c, platform),
                counters=c.as_dict(),
            )
        )
    return tuple(profiles)


def build_profile(
    result,
    *,
    device: DeviceSpec | None = None,
    platform: GpuPlatform = A100_PLATFORM,
    tracer: Tracer | None = None,
) -> RunProfile:
    """Aggregate an :class:`~repro.core.result.LPAResult` (and optionally
    its trace) into a :class:`RunProfile`.

    ``device`` defaults to the run's configured device; its
    ``sector_bytes`` overrides the platform's so traffic bytes always
    track the device that produced the counters.
    """
    if device is None and result.config is not None:
        device = result.config.device
    if device is None:
        from repro.gpu.device import A100

        device = A100
    platform = _platform_for(device, platform)

    total = result.total_counters
    iteration_profiles = tuple(
        IterationProfile(
            iteration=it.iteration,
            changed=it.changed,
            processed=it.processed,
            pick_less=it.pick_less,
            cross_check=it.cross_check,
            reverted=it.reverted,
            modeled_seconds=estimate_gpu_seconds(it.counters, platform),
            counters=it.counters.as_dict(),
        )
        for it in result.iterations
    )

    # Histograms: per-wave granularity when a trace is available, else one
    # sample per iteration from the driver-level counters.
    probe_samples: list[float] = []
    serial_samples: list[float] = []
    wave_events = tracer.of_kind("wave") if tracer is not None else []
    if wave_events:
        for ev in wave_events:
            edges = ev.counters.get("edges_scanned", 0)
            if edges > 0:
                probe_samples.append(ev.counters.get("probes", 0) / edges)
                serial_samples.append(ev.counters.get("warp_serial_probes", 0) / edges)
    else:
        for it in result.iterations:
            if it.counters.edges_scanned > 0:
                probe_samples.append(it.counters.probes / it.counters.edges_scanned)
                serial_samples.append(
                    it.counters.warp_serial_probes / it.counters.edges_scanned
                )

    atomics = total.atomic_cas + total.atomic_add
    rates = {
        "atomic_conflict_rate": total.atomic_conflicts / max(atomics, 1),
        "probes_per_edge": total.probes / max(total.edges_scanned, 1),
        "avg_waves_per_launch": total.waves / max(total.launches, 1),
    }

    fault_rungs: dict[str, int] = {}
    for ev in getattr(result, "fault_events", []):
        fault_rungs[ev.action] = fault_rungs.get(ev.action, 0) + 1
    if not fault_rungs and tracer is not None:
        for ev in tracer.of_kind("fault_rung"):
            fault_rungs[ev.action] = fault_rungs.get(ev.action, 0) + 1

    return RunProfile(
        algorithm=result.algorithm,
        converged=result.converged,
        device_name=device.name,
        sector_bytes=device.sector_bytes,
        modeled_seconds=estimate_gpu_seconds(total, platform),
        bytes_moved=total.bytes_moved(device.sector_bytes),
        counters=total.as_dict(),
        iterations=iteration_profiles,
        kernels=_kernel_profiles(tracer, platform) if tracer is not None else (),
        histograms={
            "probes_per_edge": _histogram(probe_samples),
            "warp_serial_per_edge": _histogram(serial_samples),
        },
        rates=rates,
        fault_rungs=fault_rungs,
    )
