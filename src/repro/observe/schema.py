"""Versioned JSON schemas for profiles, traces, and benchmark baselines.

Two document families:

* ``repro.observe/profile`` — one run's :class:`~repro.observe.profile.
  RunProfile` (optionally bundled with its raw trace by ``--trace-out``);
* ``repro.observe/bench`` — the regression baseline ``BENCH_lpa.json``
  written by ``benchmarks/bench_profile_trajectory.py``: one record per
  Table-1 stand-in graph, carrying modelled seconds, summed counters, and
  iteration counts for later PRs to diff against.

Validation is hand-rolled (the toolchain has no ``jsonschema``): each
validator walks the document and raises
:class:`~repro.errors.SchemaValidationError` naming the offending path, so
CI failures point at the broken field rather than a generic mismatch.
"""

from __future__ import annotations

import numbers

from repro.errors import SchemaValidationError

__all__ = [
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "validate_profile",
    "validate_bench",
]

PROFILE_SCHEMA = "repro.observe/profile"
PROFILE_SCHEMA_VERSION = 1

BENCH_SCHEMA = "repro.observe/bench"
#: v2 adds the perf-gate fields: per-graph measured ``wall_seconds``
#: (vectorized engine) and a document-level ``calibration_seconds`` that
#: normalises wall clocks across machines.
BENCH_SCHEMA_VERSION = 2


def _fail(path: str, message: str):
    raise SchemaValidationError(f"{path}: {message}")


def _require(doc: dict, path: str, key: str, types, *, allow_none: bool = False):
    if not isinstance(doc, dict):
        _fail(path, f"expected object, got {type(doc).__name__}")
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if value is None and allow_none:
        return value
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and types is not bool and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        _fail(f"{path}.{key}", "expected number, got bool")
    if not isinstance(value, types):
        expected = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        _fail(f"{path}.{key}", f"expected {expected}, got {type(value).__name__}")
    return value


def _check_header(doc: dict, path: str, schema: str, version: int) -> None:
    got_schema = _require(doc, path, "schema", str)
    if got_schema != schema:
        _fail(f"{path}.schema", f"expected {schema!r}, got {got_schema!r}")
    got_version = _require(doc, path, "version", int)
    if got_version != version:
        _fail(f"{path}.version", f"unsupported version {got_version} (want {version})")


def _check_counters(counters: dict, path: str) -> None:
    from repro.gpu.metrics import KernelCounters

    expected = set(KernelCounters().as_dict())
    if set(counters) != expected:
        missing = expected - set(counters)
        extra = set(counters) - expected
        _fail(path, f"counter keys mismatch (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})")
    for key, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(f"{path}.{key}", f"expected int, got {type(value).__name__}")
        if value < 0:
            _fail(f"{path}.{key}", f"negative counter {value}")


def validate_profile(doc: dict) -> dict:
    """Validate a serialised :class:`RunProfile`; returns ``doc``."""
    path = "profile"
    _check_header(doc, path, PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION)
    _require(doc, path, "algorithm", str)
    device = _require(doc, path, "device", dict)
    _require(device, f"{path}.device", "name", str)
    sector = _require(device, f"{path}.device", "sector_bytes", int)
    if sector <= 0:
        _fail(f"{path}.device.sector_bytes", f"must be positive, got {sector}")
    _require(doc, path, "converged", bool)
    total = _require(doc, path, "modeled_seconds", numbers.Real)
    if total < 0:
        _fail(f"{path}.modeled_seconds", f"negative time {total}")
    _require(doc, path, "bytes_moved", int)
    _check_counters(_require(doc, path, "counters", dict), f"{path}.counters")

    iterations = _require(doc, path, "iterations", list)
    for i, it in enumerate(iterations):
        ipath = f"{path}.iterations[{i}]"
        _require(it, ipath, "iteration", int)
        _require(it, ipath, "changed", int)
        _require(it, ipath, "processed", int)
        _require(it, ipath, "pick_less", bool)
        _require(it, ipath, "cross_check", bool)
        _require(it, ipath, "reverted", int)
        _require(it, ipath, "modeled_seconds", numbers.Real)
        _check_counters(_require(it, ipath, "counters", dict), f"{ipath}.counters")

    kernels = _require(doc, path, "kernels", list)
    for i, k in enumerate(kernels):
        kpath = f"{path}.kernels[{i}]"
        _require(k, kpath, "kernel", str)
        _require(k, kpath, "launches", int)
        _require(k, kpath, "waves", int)
        _require(k, kpath, "modeled_seconds", numbers.Real)
        _check_counters(_require(k, kpath, "counters", dict), f"{kpath}.counters")

    histograms = _require(doc, path, "histograms", dict)
    for name in ("probes_per_edge", "warp_serial_per_edge"):
        hist = _require(histograms, f"{path}.histograms", name, dict)
        hpath = f"{path}.histograms.{name}"
        edges = _require(hist, hpath, "bin_edges", list)
        counts = _require(hist, hpath, "counts", list)
        if len(edges) != len(counts) + 1:
            _fail(hpath, f"{len(edges)} bin edges for {len(counts)} counts")

    rates = _require(doc, path, "rates", dict)
    for name in ("atomic_conflict_rate", "probes_per_edge", "avg_waves_per_launch"):
        _require(rates, f"{path}.rates", name, numbers.Real)

    _require(doc, path, "fault_rungs", dict)
    return doc


def validate_bench(doc: dict) -> dict:
    """Validate a ``BENCH_lpa.json`` document; returns ``doc``."""
    path = "bench"
    _check_header(doc, path, BENCH_SCHEMA, BENCH_SCHEMA_VERSION)
    scale = _require(doc, path, "scale", numbers.Real)
    if scale <= 0:
        _fail(f"{path}.scale", f"must be positive, got {scale}")
    _require(doc, path, "seed", int)
    _require(doc, path, "engine", str)
    calibration = _require(doc, path, "calibration_seconds", numbers.Real)
    if calibration <= 0:
        _fail(f"{path}.calibration_seconds", f"must be positive, got {calibration}")
    device = _require(doc, path, "device", dict)
    _require(device, f"{path}.device", "name", str)
    _require(device, f"{path}.device", "sector_bytes", int)

    graphs = _require(doc, path, "graphs", list)
    if not graphs:
        _fail(f"{path}.graphs", "empty graph list")
    seen = set()
    for i, g in enumerate(graphs):
        gpath = f"{path}.graphs[{i}]"
        name = _require(g, gpath, "name", str)
        if name in seen:
            _fail(f"{gpath}.name", f"duplicate graph {name!r}")
        seen.add(name)
        for key in ("num_vertices", "num_edges", "iterations", "num_communities"):
            value = _require(g, gpath, key, int)
            if value < 0:
                _fail(f"{gpath}.{key}", f"negative value {value}")
        _require(g, gpath, "converged", bool)
        for key in (
            "modeled_seconds", "paper_modeled_seconds", "modularity", "wall_seconds"
        ):
            _require(g, gpath, key, numbers.Real, allow_none=(key == "paper_modeled_seconds"))
        for key in ("modeled_seconds", "wall_seconds"):
            if g[key] < 0:
                _fail(f"{gpath}.{key}", f"negative time {g[key]}")
        _check_counters(_require(g, gpath, "counters", dict), f"{gpath}.counters")
    return doc
