"""Versioned JSON schemas for profiles, traces, and benchmark baselines.

Two document families:

* ``repro.observe/profile`` — one run's :class:`~repro.observe.profile.
  RunProfile` (optionally bundled with its raw trace by ``--trace-out``);
* ``repro.observe/bench`` — the regression baseline ``BENCH_lpa.json``
  written by ``benchmarks/bench_profile_trajectory.py``: one record per
  Table-1 stand-in graph, carrying modelled seconds, summed counters, and
  iteration counts for later PRs to diff against.

Validation is hand-rolled (the toolchain has no ``jsonschema``): each
validator walks the document and raises
:class:`~repro.errors.SchemaValidationError` naming the offending path, so
CI failures point at the broken field rather than a generic mismatch.
"""

from __future__ import annotations

import numbers

from repro.errors import SchemaValidationError

__all__ = [
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_VERSION",
    "STREAM_SOAK_SCHEMA",
    "STREAM_SOAK_SCHEMA_VERSION",
    "QUERY_BENCH_SCHEMA",
    "QUERY_BENCH_SCHEMA_VERSION",
    "INTEGRITY_SOAK_SCHEMA",
    "INTEGRITY_SOAK_SCHEMA_VERSION",
    "MEMORY_SOAK_SCHEMA",
    "MEMORY_SOAK_SCHEMA_VERSION",
    "validate_profile",
    "validate_bench",
    "validate_service_stats",
    "validate_stream_soak",
    "validate_query_bench",
    "validate_integrity_soak",
    "validate_memory_soak",
]

PROFILE_SCHEMA = "repro.observe/profile"
PROFILE_SCHEMA_VERSION = 1

BENCH_SCHEMA = "repro.observe/bench"
#: v2 adds the perf-gate fields: per-graph measured ``wall_seconds``
#: (vectorized engine) and a document-level ``calibration_seconds`` that
#: normalises wall clocks across machines.  v3 adds per-graph
#: ``wall_seconds_hashtable`` (the ν-LPA hashtable engine's wall clock)
#: so the fused-sweep/compact-layout hot path is gated alongside the
#: vectorized engine.
BENCH_SCHEMA_VERSION = 3

#: ``repro.observe/service`` — a :class:`~repro.service.service.
#: DetectionService` health snapshot (``service.stats()`` / ``repro serve
#: --stats-out``): queue depth and rejections, job-state counts,
#: degradation-rung counts, breaker states, and modelled-clock latency
#: percentiles.  The CI service-soak job uploads one of these.
SERVICE_SCHEMA = "repro.observe/service"
#: v2 adds the required ``batching`` section (wave-batching counters:
#: batches formed, jobs coalesced, launch-overhead seconds amortised).
#: v3 adds the required ``memory`` section (device-memory admission:
#: effective budget, combined in-flight footprint estimate and its
#: high-water mark, typed-rejection / serialisation / degradation
#: counters).
SERVICE_SCHEMA_VERSION = 3

#: ``repro.observe/stream-soak`` — the streaming-pipeline report written
#: by ``benchmarks/bench_stream_soak.py``: per-seed kill/restart soak
#: verdicts (:func:`repro.stream.run_stream_soak`) plus throughput
#: (deltas applied per second), the mean warm-start frontier fraction,
#: and the incremental-vs-from-scratch speedup.  The CI stream-soak job
#: uploads one of these.
STREAM_SOAK_SCHEMA = "repro.observe/stream-soak"
STREAM_SOAK_SCHEMA_VERSION = 1

#: ``repro.observe/query-bench`` — the read-path latency report written
#: by ``benchmarks/bench_query.py``: per-graph p50/p99 latencies of the
#: zipfian membership/roster/diff load, the membership p99 SLO verdict,
#: and the O(1) flatness check across two graph sizes.  ``BENCH_query.
#: json`` at the repo root is the committed baseline the CI query-bench
#: job gates against.
QUERY_BENCH_SCHEMA = "repro.observe/query-bench"
QUERY_BENCH_SCHEMA_VERSION = 1

#: ``repro.observe/integrity-soak`` — the corruption-soak report written
#: by ``benchmarks/bench_integrity_soak.py``: per-seed verdicts for the
#: three corruption legs (live SDC injection under the ABFT guard stack,
#: checkpoint bit rot, snapshot bit rot) from
#: :func:`repro.integrity.run_integrity_soak`.  The CI integrity-soak job
#: uploads one of these; ``silent`` must be 0.
INTEGRITY_SOAK_SCHEMA = "repro.observe/integrity-soak"
INTEGRITY_SOAK_SCHEMA_VERSION = 1

#: ``repro.observe/memory-soak`` — the memory-pressure chaos report
#: written by ``benchmarks/bench_memory_soak.py``: per-seed verdicts for
#: the three pressure legs (live injected OOM faults under the
#: supervisor's memory rungs, admission-time rejection of an oversized
#: job, mid-run budget shrink) from
#: :func:`repro.resilience.run_memory_soak`, plus the ledger-vs-estimate
#: reconciliation.  The CI memory-soak job uploads one of these;
#: ``silent`` must be 0 — every OOM is either absorbed by a degradation
#: rung with valid labels or rejected with a typed error.
MEMORY_SOAK_SCHEMA = "repro.observe/memory-soak"
MEMORY_SOAK_SCHEMA_VERSION = 1


def _fail(path: str, message: str):
    raise SchemaValidationError(f"{path}: {message}")


def _require(doc: dict, path: str, key: str, types, *, allow_none: bool = False):
    if not isinstance(doc, dict):
        _fail(path, f"expected object, got {type(doc).__name__}")
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if value is None and allow_none:
        return value
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and types is not bool and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        _fail(f"{path}.{key}", "expected number, got bool")
    if not isinstance(value, types):
        expected = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        _fail(f"{path}.{key}", f"expected {expected}, got {type(value).__name__}")
    return value


def _check_header(doc: dict, path: str, schema: str, version: int) -> None:
    got_schema = _require(doc, path, "schema", str)
    if got_schema != schema:
        _fail(f"{path}.schema", f"expected {schema!r}, got {got_schema!r}")
    got_version = _require(doc, path, "version", int)
    if got_version != version:
        _fail(f"{path}.version", f"unsupported version {got_version} (want {version})")


def _check_counters(counters: dict, path: str) -> None:
    from repro.gpu.metrics import KernelCounters

    expected = set(KernelCounters().as_dict())
    if set(counters) != expected:
        missing = expected - set(counters)
        extra = set(counters) - expected
        _fail(path, f"counter keys mismatch (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})")
    for key, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(f"{path}.{key}", f"expected int, got {type(value).__name__}")
        if value < 0:
            _fail(f"{path}.{key}", f"negative counter {value}")


def validate_profile(doc: dict) -> dict:
    """Validate a serialised :class:`RunProfile`; returns ``doc``."""
    path = "profile"
    _check_header(doc, path, PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION)
    _require(doc, path, "algorithm", str)
    device = _require(doc, path, "device", dict)
    _require(device, f"{path}.device", "name", str)
    sector = _require(device, f"{path}.device", "sector_bytes", int)
    if sector <= 0:
        _fail(f"{path}.device.sector_bytes", f"must be positive, got {sector}")
    _require(doc, path, "converged", bool)
    total = _require(doc, path, "modeled_seconds", numbers.Real)
    if total < 0:
        _fail(f"{path}.modeled_seconds", f"negative time {total}")
    _require(doc, path, "bytes_moved", int)
    _check_counters(_require(doc, path, "counters", dict), f"{path}.counters")

    iterations = _require(doc, path, "iterations", list)
    for i, it in enumerate(iterations):
        ipath = f"{path}.iterations[{i}]"
        _require(it, ipath, "iteration", int)
        _require(it, ipath, "changed", int)
        _require(it, ipath, "processed", int)
        _require(it, ipath, "pick_less", bool)
        _require(it, ipath, "cross_check", bool)
        _require(it, ipath, "reverted", int)
        _require(it, ipath, "modeled_seconds", numbers.Real)
        _check_counters(_require(it, ipath, "counters", dict), f"{ipath}.counters")

    kernels = _require(doc, path, "kernels", list)
    for i, k in enumerate(kernels):
        kpath = f"{path}.kernels[{i}]"
        _require(k, kpath, "kernel", str)
        _require(k, kpath, "launches", int)
        _require(k, kpath, "waves", int)
        _require(k, kpath, "modeled_seconds", numbers.Real)
        _check_counters(_require(k, kpath, "counters", dict), f"{kpath}.counters")

    histograms = _require(doc, path, "histograms", dict)
    for name in ("probes_per_edge", "warp_serial_per_edge"):
        hist = _require(histograms, f"{path}.histograms", name, dict)
        hpath = f"{path}.histograms.{name}"
        edges = _require(hist, hpath, "bin_edges", list)
        counts = _require(hist, hpath, "counts", list)
        if len(edges) != len(counts) + 1:
            _fail(hpath, f"{len(edges)} bin edges for {len(counts)} counts")

    rates = _require(doc, path, "rates", dict)
    for name in ("atomic_conflict_rate", "probes_per_edge", "avg_waves_per_launch"):
        _require(rates, f"{path}.rates", name, numbers.Real)

    _require(doc, path, "fault_rungs", dict)
    return doc


def validate_service_stats(doc: dict) -> dict:
    """Validate a ``DetectionService.stats()`` snapshot; returns ``doc``."""
    path = "service"
    _check_header(doc, path, SERVICE_SCHEMA, SERVICE_SCHEMA_VERSION)
    for key in ("clock_s", "wall_seconds"):
        value = _require(doc, path, key, numbers.Real)
        if value < 0:
            _fail(f"{path}.{key}", f"negative time {value}")
    workers = _require(doc, path, "workers", int)
    if workers < 1:
        _fail(f"{path}.workers", f"must be >= 1, got {workers}")

    queue = _require(doc, path, "queue", dict)
    qpath = f"{path}.queue"
    for key in ("depth", "capacity", "rejected_queue_full", "rejected_tenant_cap"):
        value = _require(queue, qpath, key, int)
        if value < 0:
            _fail(f"{qpath}.{key}", f"negative count {value}")
    if queue["depth"] > queue["capacity"]:
        _fail(f"{qpath}.depth",
              f"depth {queue['depth']} exceeds capacity {queue['capacity']}")
    tenants = _require(queue, qpath, "tenants", dict)
    for tenant, load in tenants.items():
        if isinstance(load, bool) or not isinstance(load, int) or load < 0:
            _fail(f"{qpath}.tenants.{tenant}", f"expected count, got {load!r}")

    jobs = _require(doc, path, "jobs", dict)
    jpath = f"{path}.jobs"
    for key in (
        "submitted", "rejected", "recovered", "retries", "reroutes",
        "pending", "running", "completed", "failed", "degraded",
    ):
        value = _require(jobs, jpath, key, int)
        if value < 0:
            _fail(f"{jpath}.{key}", f"negative count {value}")
    if jobs["degraded"] > jobs["completed"]:
        _fail(f"{jpath}.degraded",
              f"degraded {jobs['degraded']} exceeds completed "
              f"{jobs['completed']}")

    from repro.service.job import RUNGS

    rungs = _require(doc, path, "rungs", dict)
    for rung in RUNGS:
        value = _require(rungs, f"{path}.rungs", rung, int)
        if value < 0:
            _fail(f"{path}.rungs.{rung}", f"negative count {value}")

    breakers = _require(doc, path, "breakers", list)
    for i, b in enumerate(breakers):
        bpath = f"{path}.breakers[{i}]"
        _require(b, bpath, "engine", str)
        state = _require(b, bpath, "state", str)
        if state not in ("closed", "open", "half-open"):
            _fail(f"{bpath}.state", f"unknown breaker state {state!r}")
        rate = _require(b, bpath, "failure_rate", numbers.Real)
        if not 0.0 <= rate <= 1.0:
            _fail(f"{bpath}.failure_rate", f"rate {rate} outside [0, 1]")
        for key in ("calls_in_window", "opened_count"):
            value = _require(b, bpath, key, int)
            if value < 0:
                _fail(f"{bpath}.{key}", f"negative count {value}")

    latency = _require(doc, path, "latency", dict)
    lpath = f"{path}.latency"
    count = _require(latency, lpath, "count", int)
    if count < 0:
        _fail(f"{lpath}.count", f"negative count {count}")
    for key in ("p50_modeled_s", "p95_modeled_s", "p50_wall_s", "p95_wall_s"):
        value = _require(latency, lpath, key, numbers.Real)
        if value < 0:
            _fail(f"{lpath}.{key}", f"negative time {value}")
    if latency["p95_modeled_s"] < latency["p50_modeled_s"]:
        _fail(f"{lpath}.p95_modeled_s", "p95 below p50")

    totals = _require(doc, path, "totals", dict)
    for key in ("modeled_seconds", "wall_spent_s"):
        value = _require(totals, f"{path}.totals", key, numbers.Real)
        if value < 0:
            _fail(f"{path}.totals.{key}", f"negative time {value}")

    batching = _require(doc, path, "batching", dict)
    bpath = f"{path}.batching"
    _require(batching, bpath, "enabled", bool)
    for key in ("batches", "batched_jobs"):
        value = _require(batching, bpath, key, int)
        if value < 0:
            _fail(f"{bpath}.{key}", f"negative count {value}")
    saved = _require(batching, bpath, "launch_seconds_saved", numbers.Real)
    if saved < 0:
        _fail(f"{bpath}.launch_seconds_saved", f"negative time {saved}")
    if batching["batched_jobs"] < 2 * batching["batches"]:
        _fail(f"{bpath}.batched_jobs",
              f"{batching['batched_jobs']} jobs across "
              f"{batching['batches']} batches (a batch has >= 2 jobs)")

    memory = _require(doc, path, "memory", dict)
    mpath = f"{path}.memory"
    _require(memory, mpath, "enabled", bool)
    for key in (
        "budget_bytes", "in_flight_bytes", "high_water_bytes",
        "rejections", "serialized", "degradations",
    ):
        value = _require(memory, mpath, key, int)
        if value < 0:
            _fail(f"{mpath}.{key}", f"negative count {value}")
    if memory["in_flight_bytes"] > memory["high_water_bytes"]:
        _fail(f"{mpath}.in_flight_bytes",
              f"{memory['in_flight_bytes']} exceeds high-water mark "
              f"{memory['high_water_bytes']}")
    if memory["enabled"] and memory["budget_bytes"] < 1:
        _fail(f"{mpath}.budget_bytes",
              "memory admission enabled with a zero budget")
    return doc


def validate_stream_soak(doc: dict) -> dict:
    """Validate a ``BENCH_stream_soak.json`` document; returns ``doc``."""
    path = "stream_soak"
    _check_header(doc, path, STREAM_SOAK_SCHEMA, STREAM_SOAK_SCHEMA_VERSION)
    _require(doc, path, "dataset", str)
    scale = _require(doc, path, "scale", numbers.Real)
    if scale <= 0:
        _fail(f"{path}.scale", f"must be positive, got {scale}")
    for key in ("num_seeds", "batches_per_seed", "batch_size", "hops"):
        value = _require(doc, path, key, int)
        if value < 0 or (key != "hops" and value == 0):
            _fail(f"{path}.{key}", f"must be positive, got {value}")

    rates = _require(doc, path, "rates", dict)
    rpath = f"{path}.rates"
    for key in ("deltas_per_second", "epochs_per_second", "speedup_vs_scratch"):
        value = _require(rates, rpath, key, numbers.Real)
        if value <= 0:
            _fail(f"{rpath}.{key}", f"must be positive, got {value}")
    frontier = _require(rates, rpath, "frontier_fraction_mean", numbers.Real)
    if not 0.0 <= frontier <= 1.0:
        _fail(f"{rpath}.frontier_fraction_mean",
              f"fraction {frontier} outside [0, 1]")

    soak = _require(doc, path, "soak", dict)
    spath = f"{path}.soak"
    _require(soak, spath, "ok", bool)
    for key in ("num_seeds", "total_deaths"):
        value = _require(soak, spath, key, int)
        if value < 0:
            _fail(f"{spath}.{key}", f"negative count {value}")
    seeds = _require(soak, spath, "seeds", list)
    if len(seeds) != soak["num_seeds"]:
        _fail(f"{spath}.seeds",
              f"{len(seeds)} entries for num_seeds {soak['num_seeds']}")
    for i, s in enumerate(seeds):
        epath = f"{spath}.seeds[{i}]"
        for key in (
            "seed", "batches", "epochs", "producer_deaths", "torn_tails",
            "service_deaths", "restarts",
        ):
            _require(s, epath, key, int)
        for key in ("labels_identical", "graph_identical", "ok"):
            _require(s, epath, key, bool)
        gap = _require(s, epath, "modularity_gap", numbers.Real)
        if gap < 0:
            _fail(f"{epath}.modularity_gap", f"negative gap {gap}")
    return doc


def validate_integrity_soak(doc: dict) -> dict:
    """Validate a ``BENCH_integrity_soak.json`` document; returns ``doc``."""
    path = "integrity_soak"
    _check_header(doc, path, INTEGRITY_SOAK_SCHEMA, INTEGRITY_SOAK_SCHEMA_VERSION)
    _require(doc, path, "engine", str)
    for key in ("num_vertices", "num_edges"):
        value = _require(doc, path, key, int)
        if value < 0:
            _fail(f"{path}.{key}", f"negative count {value}")
    _require(doc, path, "ok", bool)
    silent = _require(doc, path, "silent", int)
    if silent < 0:
        _fail(f"{path}.silent", f"negative count {silent}")
    _require(doc, path, "summary", str)
    records = _require(doc, path, "records", list)
    for i, r in enumerate(records):
        rpath = f"{path}.records[{i}]"
        _require(r, rpath, "seed", int)
        _require(r, rpath, "ok", bool)
        if _require(r, rpath, "silent", int) < 0:
            _fail(f"{rpath}.silent", "negative count")
        live = _require(r, rpath, "live", dict)
        if _require(live, f"{rpath}.live", "detections", int) < 0:
            _fail(f"{rpath}.live.detections", "negative count")
        _require(live, f"{rpath}.live", "identical", bool)
        for leg in ("checkpoint", "snapshot"):
            sub = _require(r, rpath, leg, dict)
            _require(sub, f"{rpath}.{leg}", "flip", str)
            _require(sub, f"{rpath}.{leg}", "detected", bool)
            _require(sub, f"{rpath}.{leg}", "identical", bool)
        _require(r, rpath, "guard", dict)
    return doc


def validate_memory_soak(doc: dict) -> dict:
    """Validate a ``BENCH_memory_soak.json`` document; returns ``doc``."""
    path = "memory_soak"
    _check_header(doc, path, MEMORY_SOAK_SCHEMA, MEMORY_SOAK_SCHEMA_VERSION)
    _require(doc, path, "engine", str)
    for key in ("num_vertices", "num_edges", "num_seeds"):
        value = _require(doc, path, key, int)
        if value < 0:
            _fail(f"{path}.{key}", f"negative count {value}")
    _require(doc, path, "ok", bool)
    silent = _require(doc, path, "silent", int)
    if silent < 0:
        _fail(f"{path}.silent", f"negative count {silent}")
    tolerance = _require(doc, path, "tolerance", numbers.Real)
    if not 0.0 < tolerance < 1.0:
        _fail(f"{path}.tolerance", f"tolerance {tolerance} outside (0, 1)")
    _require(doc, path, "summary", str)
    records = _require(doc, path, "records", list)
    if len(records) != doc["num_seeds"]:
        _fail(f"{path}.records",
              f"{len(records)} entries for num_seeds {doc['num_seeds']}")
    for i, r in enumerate(records):
        rpath = f"{path}.records[{i}]"
        _require(r, rpath, "seed", int)
        _require(r, rpath, "ok", bool)
        if _require(r, rpath, "silent", int) < 0:
            _fail(f"{rpath}.silent", "negative count")
        live = _require(r, rpath, "live", dict)
        if _require(live, f"{rpath}.live", "ooms", int) < 0:
            _fail(f"{rpath}.live.ooms", "negative count")
        for key in ("absorbed", "valid", "identical"):
            _require(live, f"{rpath}.live", key, bool)
        admission = _require(r, rpath, "admission", dict)
        apath = f"{rpath}.admission"
        _require(admission, apath, "rejected", bool)
        for key in ("estimate_bytes", "budget_bytes"):
            if _require(admission, apath, key, int) < 0:
                _fail(f"{apath}.{key}", "negative byte count")
        if admission["rejected"] and (
            admission["estimate_bytes"] <= admission["budget_bytes"]
        ):
            _fail(f"{apath}.rejected",
                  "rejected although the estimate fits the budget")
        shrink = _require(r, rpath, "shrink", dict)
        if _require(shrink, f"{rpath}.shrink", "ooms", int) < 0:
            _fail(f"{rpath}.shrink.ooms", "negative count")
        for key in ("absorbed", "valid"):
            _require(shrink, f"{rpath}.shrink", key, bool)
        rec = _require(r, rpath, "reconcile", dict)
        cpath = f"{rpath}.reconcile"
        for key in ("estimate_bytes", "high_water_bytes"):
            if _require(rec, cpath, key, int) < 0:
                _fail(f"{cpath}.{key}", "negative byte count")
        _require(rec, cpath, "identical", bool)
        deviation = _require(rec, cpath, "deviation", numbers.Real)
        if deviation < 0:
            _fail(f"{cpath}.deviation", f"negative deviation {deviation}")
        utilization = _require(rec, cpath, "utilization", numbers.Real)
        if utilization < 0:
            _fail(f"{cpath}.utilization",
                  f"negative utilization {utilization}")
        within = _require(rec, cpath, "within_tolerance", bool)
        if within != (deviation <= tolerance):
            _fail(f"{cpath}.within_tolerance",
                  f"verdict {within} inconsistent with deviation "
                  f"{deviation} vs tolerance {tolerance}")
    return doc


def validate_query_bench(doc: dict) -> dict:
    """Validate a ``BENCH_query.json`` document; returns ``doc``."""
    path = "query_bench"
    _check_header(doc, path, QUERY_BENCH_SCHEMA, QUERY_BENCH_SCHEMA_VERSION)
    _require(doc, path, "seed", int)
    lookups = _require(doc, path, "lookups", int)
    if lookups <= 0:
        _fail(f"{path}.lookups", f"must be positive, got {lookups}")
    readers = _require(doc, path, "readers", int)
    if readers < 1:
        _fail(f"{path}.readers", f"must be >= 1, got {readers}")
    zipf_s = _require(doc, path, "zipf_s", numbers.Real)
    if zipf_s <= 1.0:
        _fail(f"{path}.zipf_s", f"zipf exponent must be > 1, got {zipf_s}")

    mix = _require(doc, path, "op_mix", dict)
    total_mix = 0.0
    for op in ("membership", "roster", "diff"):
        frac = _require(mix, f"{path}.op_mix", op, numbers.Real)
        if not 0.0 <= frac <= 1.0:
            _fail(f"{path}.op_mix.{op}", f"fraction {frac} outside [0, 1]")
        total_mix += frac
    if abs(total_mix - 1.0) > 1e-9:
        _fail(f"{path}.op_mix", f"fractions sum to {total_mix}, want 1.0")

    graphs = _require(doc, path, "graphs", list)
    if len(graphs) < 2:
        _fail(f"{path}.graphs", "need at least two graph sizes (O(1) check)")
    seen = set()
    op_count_total = 0
    for i, g in enumerate(graphs):
        gpath = f"{path}.graphs[{i}]"
        name = _require(g, gpath, "name", str)
        if name in seen:
            _fail(f"{gpath}.name", f"duplicate graph {name!r}")
        seen.add(name)
        for key in ("num_vertices", "num_communities", "snapshot_bytes",
                    "versions"):
            value = _require(g, gpath, key, int)
            if value < 0:
                _fail(f"{gpath}.{key}", f"negative value {value}")
        ops = _require(g, gpath, "ops", dict)
        for op in ("membership", "roster", "diff"):
            o = _require(ops, f"{gpath}.ops", op, dict)
            opath = f"{gpath}.ops.{op}"
            count = _require(o, opath, "count", int)
            if count < 0:
                _fail(f"{opath}.count", f"negative count {count}")
            op_count_total += count
            for key in ("p50_us", "p99_us", "mean_us"):
                value = _require(o, opath, key, numbers.Real)
                if value < 0:
                    _fail(f"{opath}.{key}", f"negative latency {value}")
            if o["p99_us"] < o["p50_us"]:
                _fail(f"{opath}.p99_us", "p99 below p50")
    if op_count_total != lookups:
        _fail(f"{path}.lookups",
              f"{lookups} declared but per-op counts sum to {op_count_total}")

    slo = _require(doc, path, "slo", dict)
    spath = f"{path}.slo"
    budget = _require(slo, spath, "membership_p99_us", numbers.Real)
    if budget <= 0:
        _fail(f"{spath}.membership_p99_us", f"must be positive, got {budget}")
    worst = _require(slo, spath, "worst_membership_p99_us", numbers.Real)
    if worst < 0:
        _fail(f"{spath}.worst_membership_p99_us", f"negative latency {worst}")
    met = _require(slo, spath, "met", bool)
    if met != (worst <= budget):
        _fail(f"{spath}.met",
              f"verdict {met} inconsistent with worst p99 {worst} vs "
              f"budget {budget}")

    flat = _require(doc, path, "flatness", dict)
    fpath = f"{path}.flatness"
    _require(flat, fpath, "small_graph", str)
    _require(flat, fpath, "large_graph", str)
    ratio = _require(flat, fpath, "vertex_ratio", numbers.Real)
    if ratio < 10.0:
        _fail(f"{fpath}.vertex_ratio",
              f"graph sizes must be >= 10x apart, got {ratio}")
    p50_ratio = _require(flat, fpath, "membership_p50_ratio", numbers.Real)
    if p50_ratio <= 0:
        _fail(f"{fpath}.membership_p50_ratio",
              f"must be positive, got {p50_ratio}")
    bound = _require(flat, fpath, "bound", numbers.Real)
    if bound <= 1.0:
        _fail(f"{fpath}.bound", f"must exceed 1.0, got {bound}")
    _require(flat, fpath, "met", bool)
    return doc


def validate_bench(doc: dict) -> dict:
    """Validate a ``BENCH_lpa.json`` document; returns ``doc``."""
    path = "bench"
    _check_header(doc, path, BENCH_SCHEMA, BENCH_SCHEMA_VERSION)
    scale = _require(doc, path, "scale", numbers.Real)
    if scale <= 0:
        _fail(f"{path}.scale", f"must be positive, got {scale}")
    _require(doc, path, "seed", int)
    _require(doc, path, "engine", str)
    calibration = _require(doc, path, "calibration_seconds", numbers.Real)
    if calibration <= 0:
        _fail(f"{path}.calibration_seconds", f"must be positive, got {calibration}")
    device = _require(doc, path, "device", dict)
    _require(device, f"{path}.device", "name", str)
    _require(device, f"{path}.device", "sector_bytes", int)

    graphs = _require(doc, path, "graphs", list)
    if not graphs:
        _fail(f"{path}.graphs", "empty graph list")
    seen = set()
    for i, g in enumerate(graphs):
        gpath = f"{path}.graphs[{i}]"
        name = _require(g, gpath, "name", str)
        if name in seen:
            _fail(f"{gpath}.name", f"duplicate graph {name!r}")
        seen.add(name)
        for key in ("num_vertices", "num_edges", "iterations", "num_communities"):
            value = _require(g, gpath, key, int)
            if value < 0:
                _fail(f"{gpath}.{key}", f"negative value {value}")
        _require(g, gpath, "converged", bool)
        for key in (
            "modeled_seconds", "paper_modeled_seconds", "modularity",
            "wall_seconds", "wall_seconds_hashtable",
        ):
            _require(g, gpath, key, numbers.Real, allow_none=(key == "paper_modeled_seconds"))
        for key in ("modeled_seconds", "wall_seconds", "wall_seconds_hashtable"):
            if g[key] < 0:
                _fail(f"{gpath}.{key}", f"negative time {g[key]}")
        _check_counters(_require(g, gpath, "counters", dict), f"{gpath}.counters")
    return doc
