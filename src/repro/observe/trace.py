"""Structured tracing over the simulated GPU.

A :class:`Tracer` collects typed event records from the instrumented hook
points — kernel launches, per-wave :class:`~repro.gpu.metrics.KernelCounters`
deltas, iteration boundaries, and the resilience supervisor's degradation
rungs.  Hook sites are written so a *disabled* (or absent) tracer costs one
attribute test and one boolean check per wave and nothing else; the
per-wave counter snapshotting that makes deltas possible only happens when
a tracer is both attached and enabled.

Events are plain dataclasses with an ``as_dict()`` so the whole trace
serialises to JSON without custom encoders; :mod:`repro.observe.profile`
aggregates them into a :class:`~repro.observe.profile.RunProfile`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterator

__all__ = [
    "TraceEvent",
    "KernelLaunchEvent",
    "PersistentKernelEvent",
    "WaveEvent",
    "IterationEvent",
    "FaultRungEvent",
    "BudgetEvent",
    "ConvergenceEvent",
    "JobEvent",
    "BreakerEvent",
    "ServiceStatsEvent",
    "EpochEvent",
    "WaveBatchEvent",
    "QueryEvent",
    "QueryStatsEvent",
    "ScrubEvent",
    "IntegrityEvent",
    "EccEvent",
    "MemoryEvent",
    "OomEvent",
    "SnapshotSkipEvent",
    "Tracer",
    "counter_delta",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base record: every event knows its LPA iteration."""

    iteration: int

    #: Discriminator used in serialised form; overridden per subclass.
    kind = "event"

    def as_dict(self) -> dict:
        """JSON-ready representation (adds the ``kind`` discriminator)."""
        d = asdict(self)
        d["kind"] = self.kind
        return d


@dataclass(frozen=True)
class KernelLaunchEvent(TraceEvent):
    """One simulated kernel launch (one degree-class per iteration)."""

    kernel: str
    num_items: int
    num_waves: int

    kind = "kernel_launch"


@dataclass(frozen=True)
class PersistentKernelEvent(TraceEvent):
    """A dispatch into an already-resident kernel (persistent mode).

    With :attr:`~repro.core.config.LPAConfig.persistent_kernel` on, each
    kernel kind pays its launch overhead once — the first dispatch emits
    a :class:`KernelLaunchEvent` as usual; every later one emits this
    event instead.  Fields mirror the launch event so profile aggregation
    can count waves (which are still paid) without counting a launch.
    """

    kernel: str
    num_items: int
    num_waves: int

    kind = "persistent_kernel"


@dataclass(frozen=True)
class WaveEvent(TraceEvent):
    """One residency wave and the counter increments it produced."""

    kernel: str
    wave_index: int
    #: Half-open item range ``[lo, hi)`` of the wave within its grid.
    lo: int
    hi: int
    #: :class:`KernelCounters` delta for this wave, as a plain dict.
    counters: dict = field(default_factory=dict)

    kind = "wave"


@dataclass(frozen=True)
class IterationEvent(TraceEvent):
    """One completed LPA iteration (driver-level boundary record)."""

    changed: int
    processed: int
    pick_less: bool
    cross_check: bool
    reverted: int

    kind = "iteration"


@dataclass(frozen=True)
class FaultRungEvent(TraceEvent):
    """One step down the resilience supervisor's degradation ladder."""

    attempt: int
    fault: str
    action: str

    kind = "fault_rung"


@dataclass(frozen=True)
class BudgetEvent(TraceEvent):
    """A :class:`~repro.core.budget.RunBudget` limit stopped the run early.

    Recorded at the iteration boundary where the breach was detected; the
    run returns its best-so-far partition with ``result.degraded`` set
    rather than raising.
    """

    #: Which limit tripped: ``wall-clock`` | ``gpu-seconds`` | ``iterations``.
    reason: str
    #: Wall-clock seconds spent by the driver loop when it stopped.
    wall_spent: float
    #: Modelled GPU seconds charged to the run when it stopped (0.0 when
    #: no ``gpu_seconds`` budget was set — uncharged, not free).
    gpu_spent: float

    kind = "budget_breach"


@dataclass(frozen=True)
class ConvergenceEvent(TraceEvent):
    """The run ended without meeting τ (the trace twin of
    :class:`~repro.errors.ConvergenceWarning`).

    Emitted at the final iteration boundary when ``max_iterations`` was
    exhausted, so service logs and ``degraded_reason`` strings can report
    *why* a job stopped without re-deriving it from the iteration list.
    """

    #: Iterations performed (== the config's cap when this event fires).
    iterations: int
    #: Changed-vertex fraction of the final iteration.
    final_fraction: float
    #: The tolerance τ the run failed to meet.
    tolerance: float

    kind = "no_convergence"


@dataclass(frozen=True)
class JobEvent(TraceEvent):
    """One job-service lifecycle transition.

    Service events reuse the ``iteration`` base field for the job's
    *attempt* index (0-based), which plays the same role at the job level
    that the LPA iteration plays inside a run.
    """

    job_id: str
    #: ``admitted`` | ``started`` | ``retrying`` | ``rerouted`` |
    #: ``completed`` | ``degraded`` | ``failed`` | ``recovered`` |
    #: ``interrupted``.
    state: str
    #: Degradation-ladder rung that produced (or will produce) the labels:
    #: ``full`` | ``fallback-engine`` | ``coarsened`` |
    #: ``checkpoint-labels`` (empty while not yet known).
    rung: str = ""
    detail: str = ""

    kind = "job"


@dataclass(frozen=True)
class BreakerEvent(TraceEvent):
    """A per-engine circuit breaker changed state.

    ``iteration`` carries the completed-job count at transition time (the
    service's discrete clock tick).
    """

    engine: str
    #: ``closed->open`` | ``open->half-open`` | ``half-open->closed`` |
    #: ``half-open->open``.
    transition: str
    #: Failure rate over the sliding window when the transition happened.
    failure_rate: float

    kind = "breaker"


@dataclass(frozen=True)
class ServiceStatsEvent(TraceEvent):
    """A periodic health snapshot of the job service.

    ``iteration`` carries the snapshot sequence number.  The full
    machine-readable snapshot is the schema-validated document from
    :meth:`repro.service.DetectionService.stats`; this event carries the
    headline numbers so a trace alone can reconstruct the service's
    trajectory.
    """

    queue_depth: int
    running: int
    completed: int
    failed: int
    degraded: int
    #: Modelled-clock p50/p95 job latency (seconds; 0.0 with no data).
    p50_latency_s: float
    p95_latency_s: float
    #: ``engine:state`` pairs, e.g. ``("hashtable:open", "vectorized:closed")``.
    breaker_states: tuple[str, ...] = ()

    kind = "service_stats"


@dataclass(frozen=True)
class EpochEvent(TraceEvent):
    """One streaming epoch: a delta batch applied and labels re-detected.

    ``iteration`` carries the epoch number (== the sequence number of the
    batch that produced it; epoch 0 is the initial full detection).
    """

    #: Applied op counts by kind (quarantined ops excluded).
    added: int
    removed: int
    updated: int
    #: Ops dropped to the dead-letter file by this batch.
    quarantined: int
    #: Vertices incident to applied ops.
    touched: int
    #: Warm-start frontier size (``touched`` plus its hops-neighbourhood).
    frontier: int
    #: ``frontier / num_vertices`` (0.0 on an empty graph).
    frontier_fraction: float
    #: Graph shape at this epoch.
    num_vertices: int
    num_edges: int
    #: LPA iterations the incremental re-detection needed.
    lpa_iterations: int = 0
    #: |Q_incremental - Q_scratch| when the differential check ran.
    modularity_gap: float | None = None

    kind = "epoch"


@dataclass(frozen=True)
class WaveBatchEvent(TraceEvent):
    """One shared execution wave of compatible service jobs.

    ``iteration`` carries the batch sequence number.  Per-job attribution
    is preserved: ``job_ids`` and ``per_job_saved_s`` are parallel tuples,
    so a trace can reconstruct exactly which job was credited what share
    of the amortised launch overhead.
    """

    #: Jobs coalesced into this wave, in execution order.
    job_ids: tuple[str, ...]
    #: Kernel launches the jobs would have paid run sequentially.
    launches_sequential: int
    #: Kernel launches after coalescing (per iteration slot, the widest
    #: member launches; the others ride along).
    launches_batched: int
    #: Modelled launch-overhead seconds amortised away, total…
    saved_seconds: float
    #: …and attributed per job (parallel to ``job_ids``).
    per_job_saved_s: tuple[float, ...] = ()

    kind = "wave_batch"


@dataclass(frozen=True)
class QueryEvent(TraceEvent):
    """One read-path query served from a published snapshot.

    ``iteration`` carries the engine's running op count.  Only emitted
    while a tracer is enabled — the serving hot path stays untraced by
    default.
    """

    job_id: str
    #: ``membership`` | ``roster`` | ``community_sizes`` | ``diff``.
    op: str
    #: The queried key: vertex id, community label, or target version
    #: (-1 for keyless ops).
    key: int
    #: Elements in the answer (1 for membership, |C| for roster, ...).
    result_size: int
    #: Snapshot version that served the answer.
    snapshot_version: int

    kind = "query"


@dataclass(frozen=True)
class QueryStatsEvent(TraceEvent):
    """Periodic read-path health snapshot (op counters by kind).

    ``iteration`` carries the snapshot sequence number, mirroring
    :class:`ServiceStatsEvent` on the write side.
    """

    membership: int
    roster: int
    community_sizes: int
    diff: int
    refresh: int
    #: Jobs with an open served snapshot.
    served_jobs: int
    #: Corrupt snapshot files the catalog skipped over so far.
    skipped_snapshots: int

    kind = "query_stats"


@dataclass(frozen=True)
class ScrubEvent(TraceEvent):
    """One ABFT scrub pass over the immutable CSR arrays.

    Emitted every time the :class:`~repro.integrity.guard.IntegrityGuard`
    walks the offsets/targets/weights checksums, clean or not, so a trace
    shows the amortised scrub cadence alongside its modelled cost.
    """

    #: Arrays whose running checksum no longer matched (empty = clean).
    mismatched: tuple[str, ...]
    #: Arrays re-materialised in place from the golden copies.
    repaired: tuple[str, ...]
    #: Bytes the scrub sweep read (charged to the perf model).
    scrubbed_bytes: int
    #: Modelled GPU seconds the sweep cost.
    modeled_seconds: float

    kind = "scrub"


@dataclass(frozen=True)
class IntegrityEvent(TraceEvent):
    """An ABFT guard verdict: a detected corruption or a repair action.

    ``check`` names the guard that fired (``csr-checksum`` |
    ``label-conservation`` | ``community-trajectory`` | ``label-crc`` |
    ``spot-audit`` | ``shadow-replay``); ``action`` says what happened
    next (``detected`` | ``repaired`` | ``rewind`` | ``verified``).
    """

    check: str
    action: str
    detail: str = ""

    kind = "integrity"


@dataclass(frozen=True)
class EccEvent(TraceEvent):
    """SEC-DED activity observed by one scrub pass.

    Single-bit upsets are corrected silently by the hardware model and
    only counted here; a non-zero ``detected`` means a double-bit error
    was found and an :class:`~repro.errors.EccError` was raised.
    """

    #: Single-bit errors corrected in place this pass.
    corrected: int
    #: Uncorrectable (double-bit) errors found this pass.
    detected: int
    #: Cumulative corrected count for the run.
    corrected_total: int

    kind = "ecc"


@dataclass(frozen=True)
class MemoryEvent(TraceEvent):
    """One ledger transaction of the device-memory governor.

    Emitted by :class:`repro.gpu.governor.MemoryGovernor` for every
    reserve/release and for injected budget shrinks, so a trace can
    replay the modeled memory timeline of a run exactly.  ``iteration``
    carries the governor's transaction sequence number (the governor
    has no view of the LPA iteration).
    """

    #: Ledger region: ``csr`` | ``labels`` | ``hashtable`` | ``arena`` |
    #: ``integrity`` | ``checkpoint``.
    region: str
    #: ``reserve`` | ``release`` | ``shrink-budget``.
    action: str
    #: Bytes moved by this transaction (budget delta for a shrink).
    nbytes: int
    #: Ledger total after the transaction.
    in_use_bytes: int
    #: Effective budget after the transaction.
    budget_bytes: int

    kind = "memory"


@dataclass(frozen=True)
class OomEvent(TraceEvent):
    """A reservation (or injected shrink) pushed the ledger over budget.

    The trace twin of :class:`~repro.errors.DeviceOomError`:
    ``iteration`` carries the governor's transaction sequence number,
    and the byte fields mirror the error's attributes so either record
    alone reconstructs the failure.
    """

    #: Region of the failed reservation (``""`` for an injected shrink).
    region: str
    #: Bytes the failed reservation asked for (0 for a shrink).
    requested_bytes: int
    #: Ledger total at failure time.
    in_use_bytes: int
    #: Effective budget the check ran against.
    budget_bytes: int

    kind = "oom"


@dataclass(frozen=True)
class SnapshotSkipEvent(TraceEvent):
    """The snapshot catalog skipped a damaged version file.

    ``iteration`` carries the skipped snapshot's version number.  Emitted
    by :meth:`repro.service.read.SnapshotCatalog.latest` as it falls back
    generation-by-generation, so operators watching the trace stream see
    at-rest corruption the moment the read path routes around it.
    """

    job_id: str
    #: File name of the damaged snapshot (not the full path).
    path: str
    reason: str

    kind = "snapshot_skip"


def counter_delta(before: dict, after: dict) -> dict:
    """Per-field difference of two counter dicts, zero fields dropped."""
    return {k: after[k] - before[k] for k in after if after[k] != before[k]}


class Tracer:
    """Collects :class:`TraceEvent` records from instrumented hook points.

    Attach to an engine (``engine.tracer = tracer``) or pass
    ``tracer=``/``profile=True`` to :func:`~repro.core.lpa.nu_lpa`.  The
    ``enabled`` flag is the single switch hook sites test; a disabled
    tracer records nothing and costs nothing measurable (see
    ``tests/observe/test_overhead.py``).
    """

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------------ #

    def emit(self, event: TraceEvent) -> None:
        """Append one event (no-op while disabled)."""
        if self.enabled:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events whose ``kind`` discriminator matches."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        """Drop all recorded events (the enabled flag is untouched)."""
        self.events.clear()

    def as_dicts(self) -> list[dict]:
        """The whole trace as JSON-ready dicts, in record order."""
        return [e.as_dict() for e in self.events]
