"""Graph partitioning with size-constrained label propagation.

The paper's conclusion points at "performance-critical applications, such
as partitioning of large graphs" as ν-LPA's future work, building on the
LPA-partitioning line it surveys (PuLP, SCLaP, XtraPuLP).  This package
implements that extension: a size-constrained LPA partitioner seeded with
``k`` balanced blocks, an explicit balance-repair phase, and the standard
partition-quality metrics (edge cut, imbalance).
"""

from repro.partition.sclap import size_constrained_lpa, PartitionResult
from repro.partition.metrics import edge_cut_fraction, imbalance, partition_summary

__all__ = [
    "size_constrained_lpa",
    "PartitionResult",
    "edge_cut_fraction",
    "imbalance",
    "partition_summary",
]
