"""Partition-quality metrics: edge cut, imbalance, per-part summaries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "edge_cut_fraction",
    "edge_cut_weight",
    "imbalance",
    "PartitionSummary",
    "partition_summary",
]


def edge_cut_weight(graph: CSRGraph, parts: np.ndarray) -> float:
    """Total weight of undirected edges crossing part boundaries."""
    parts = np.asarray(parts)
    src = graph.source_ids()
    cross = parts[src] != parts[graph.targets]
    # Arcs count each undirected edge twice.
    return float(graph.weights[cross].astype(np.float64).sum() / 2.0)


def edge_cut_fraction(graph: CSRGraph, parts: np.ndarray) -> float:
    """Cut weight as a fraction of total edge weight (lower = better)."""
    total = graph.total_weight()
    if total == 0:
        return 0.0
    return edge_cut_weight(graph, parts) / total


def imbalance(parts: np.ndarray, k: int | None = None) -> float:
    """Load imbalance: ``max part size / ideal size - 1`` (0 = perfect)."""
    parts = np.asarray(parts)
    if parts.shape[0] == 0:
        return 0.0
    if k is None:
        k = int(parts.max()) + 1
    sizes = np.bincount(parts, minlength=k)
    ideal = parts.shape[0] / k
    return float(sizes.max() / ideal - 1.0)


@dataclass(frozen=True)
class PartitionSummary:
    """One-line description of a k-way partition."""

    k: int
    edge_cut_fraction: float
    imbalance: float
    smallest_part: int
    largest_part: int


def partition_summary(graph: CSRGraph, parts: np.ndarray, k: int) -> PartitionSummary:
    """Build the :class:`PartitionSummary` for ``parts``."""
    sizes = np.bincount(np.asarray(parts), minlength=k)
    return PartitionSummary(
        k=k,
        edge_cut_fraction=edge_cut_fraction(graph, parts),
        imbalance=imbalance(parts, k),
        smallest_part=int(sizes.min()),
        largest_part=int(sizes.max()),
    )
