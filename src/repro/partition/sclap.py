"""Size-constrained label propagation partitioning (SCLaP/PuLP style).

The algorithm follows the LPA-partitioning recipe of the papers ν-LPA's
related-work section surveys (Meyerhenke et al.'s SCLaP, Slota et al.'s
PuLP): vertices start in ``k`` contiguous balanced blocks; each sweep every
vertex adopts the *dominant neighbouring part* — the part with the highest
interconnecting edge weight — but only when the target part has room under
the ``(1 + imbalance) * n/k`` capacity; a final repair phase drains any
still-overfull part into its members' best feasible alternatives.

The sweep reuses the library's chunk-asynchronous group-by machinery, so
one sweep is O(M log M) NumPy work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import decorrelated_order
from repro.core._gather import gather_edges
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.partition.metrics import edge_cut_fraction, imbalance
from repro.types import VERTEX_DTYPE

__all__ = ["PartitionResult", "size_constrained_lpa"]


@dataclass
class PartitionResult:
    """Outcome of a k-way partitioning run."""

    parts: np.ndarray
    k: int
    iterations: int
    edge_cut_fraction: float
    imbalance: float
    #: Cut fraction after each sweep (monotone decreasing, typically).
    cut_history: list[float] = field(default_factory=list)


def _dominant_feasible_parts(
    graph: CSRGraph,
    parts: np.ndarray,
    batch: np.ndarray,
    sizes: np.ndarray,
    capacity: float,
    k: int,
) -> np.ndarray:
    """Per batch vertex: heaviest neighbouring part with room (or current)."""
    gather = gather_edges(graph, batch)
    targets = graph.targets[gather.edge_index]
    non_loop = targets != batch[gather.table_id]
    table_id = gather.table_id[non_loop]
    nbr_part = parts[targets[non_loop]]
    w = graph.weights[gather.edge_index][non_loop].astype(np.float64)

    current = parts[batch]
    if nbr_part.shape[0] == 0:
        return current.copy()

    # Group by (vertex, part) and sum weights.
    order = np.lexsort((nbr_part, table_id))
    t_s, p_s, w_s = table_id[order], nbr_part[order], w[order]
    first = np.ones(t_s.shape[0], dtype=bool)
    first[1:] = (t_s[1:] != t_s[:-1]) | (p_s[1:] != p_s[:-1])
    starts = np.flatnonzero(first)
    sums = np.add.reduceat(w_s, starts)
    g_table = t_s[starts]
    g_part = p_s[starts]

    # Feasibility: target has room, or it is the current part (staying is
    # always allowed).  Infeasible groups score -inf.
    feasible = (sizes[g_part] < capacity) | (g_part == current[g_table])
    score = np.where(feasible, sums, -np.inf)

    table_first = np.ones(starts.shape[0], dtype=bool)
    table_first[1:] = g_table[1:] != g_table[:-1]
    t_starts = np.flatnonzero(table_first)
    t_of_g = np.cumsum(table_first) - 1
    best = np.maximum.reduceat(score, t_starts)
    is_max = score == best[t_of_g]
    pos = np.arange(starts.shape[0], dtype=np.int64)
    big = np.int64(np.iinfo(np.int64).max)
    first_max = np.minimum.reduceat(np.where(is_max, pos, big), t_starts)

    out = current.copy()
    present = g_table[t_starts]
    valid = first_max != big
    sel = first_max[valid]
    out[present[valid]] = np.where(
        np.isfinite(best[valid]), g_part[sel], current[present[valid]]
    )
    return out


def size_constrained_lpa(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.05,
    max_sweeps: int = 20,
    chunk: int = 1024,
    vertex_weights: np.ndarray | None = None,
    seed: int = 0,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` parts with at most ``epsilon`` imbalance.

    Parameters
    ----------
    graph:
        Undirected weighted CSR graph.
    k:
        Number of parts (``1 <= k <= N``).
    epsilon:
        Allowed imbalance: part *weight* stays below
        ``(1 + epsilon) * total / k``.
    max_sweeps:
        Label-propagation sweep budget.
    chunk:
        Chunk-asynchronous batch size.
    vertex_weights:
        Optional per-vertex load (default 1 each).  Multilevel pipelines
        pass the super-vertex weights of a coarsened graph here so the
        lifted partition stays balanced over *original* vertices.
    seed:
        Reserved; the algorithm is deterministic.
    """
    n = graph.num_vertices
    if not 1 <= k <= max(n, 1):
        raise ConfigurationError(f"need 1 <= k <= {n}; got k={k}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative; got {epsilon}")
    if vertex_weights is None:
        vweights = np.ones(n, dtype=np.int64)
    else:
        vweights = np.asarray(vertex_weights, dtype=np.int64)
        if vweights.shape[0] != n or (n and vweights.min() < 1):
            raise ConfigurationError(
                "vertex_weights must be positive and length num_vertices"
            )

    # Contiguous balanced seed blocks (synthetic generators lay vertices
    # out with geometric locality, so this is a decent start).  With
    # weights, blocks are cut at equal cumulative weight.
    total_weight = int(vweights.sum())
    cum = np.cumsum(vweights) - vweights  # weight before each vertex
    parts = (cum * k // max(total_weight, 1)).astype(VERTEX_DTYPE)
    parts = np.minimum(parts, k - 1)
    sizes = np.zeros(k, dtype=np.int64)
    np.add.at(sizes, parts, vweights)
    capacity = (1.0 + epsilon) * total_weight / k

    order = decorrelated_order(np.arange(n, dtype=np.int64))
    cut_history: list[float] = []
    sweeps = 0
    for sweeps in range(1, max_sweeps + 1):
        moves = 0
        for lo in range(0, n, chunk):
            batch = order[lo : lo + chunk]
            best = _dominant_feasible_parts(
                graph, parts, batch, sizes, capacity, k
            )
            move = best != parts[batch]
            # The chunk commits together, so cap arrivals per part: rank
            # each mover within its target part and admit only ranks that
            # fit under the capacity (departures are ignored within the
            # chunk — conservative, never overfills).
            if move.any():
                movers = batch[move]
                new_parts = best[move].astype(np.int64)
                order2 = np.argsort(new_parts, kind="stable")
                tp = new_parts[order2]
                group_first = np.ones(tp.shape[0], dtype=bool)
                group_first[1:] = tp[1:] != tp[:-1]
                group_start = np.flatnonzero(group_first)
                wmv = vweights[movers[order2]]
                cw = np.cumsum(wmv)
                base = (cw - wmv)[group_start]
                cum_in_group = cw - base[np.cumsum(group_first) - 1]
                admitted = sizes[tp] + cum_in_group <= capacity
                sel = order2[admitted]
                if sel.shape[0]:
                    vs = movers[sel]
                    np.subtract.at(sizes, parts[vs], vweights[vs])
                    np.add.at(sizes, new_parts[sel], vweights[vs])
                    parts[vs] = new_parts[sel]
                    moves += int(sel.shape[0])
        cut_history.append(edge_cut_fraction(graph, parts))
        if moves == 0:
            break

    final_imbalance = (
        float(sizes.max() / (total_weight / k) - 1.0) if total_weight else 0.0
    )
    return PartitionResult(
        parts=parts,
        k=k,
        iterations=sweeps,
        edge_cut_fraction=cut_history[-1] if cut_history else 0.0,
        imbalance=final_imbalance,
        cut_history=cut_history,
    )
