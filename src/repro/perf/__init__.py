"""Performance modelling: event counts → modelled seconds.

The simulator cannot time an A100; it *counts* what the A100 would do
(sectors moved, probes serialised behind warp divergence, atomic
conflicts, kernel launches, waves).  This package converts those counts
into modelled runtimes with per-platform constants calibrated **once**
against the paper's published anchors (3.0 B edges/s ν-LPA throughput on
it-2004; the 364× / 62× / 2.6× / 37× speedup ratios) and never refitted per
experiment — so the *shapes* benchmarks report (who wins where, how factors
move across graphs and configurations) come entirely from measured counts.
"""

from repro.perf.platforms import (
    GpuPlatform,
    CpuPlatform,
    A100_PLATFORM,
    XEON_SEQUENTIAL,
    XEON_MULTICORE,
)
from repro.perf.model import (
    estimate_gpu_seconds,
    estimate_lpa_result_seconds,
    estimate_flpa_seconds,
    estimate_networkit_seconds,
    estimate_gve_seconds,
    estimate_gunrock_seconds,
    estimate_louvain_seconds,
    extrapolation_ratios,
)
from repro.perf.harness import Measurement, run_measurement, repeat_measure
from repro.perf.report import format_table, format_series, RelativeSeries

__all__ = [
    "GpuPlatform",
    "CpuPlatform",
    "A100_PLATFORM",
    "XEON_SEQUENTIAL",
    "XEON_MULTICORE",
    "estimate_gpu_seconds",
    "estimate_lpa_result_seconds",
    "estimate_flpa_seconds",
    "estimate_networkit_seconds",
    "estimate_gve_seconds",
    "estimate_gunrock_seconds",
    "estimate_louvain_seconds",
    "extrapolation_ratios",
    "Measurement",
    "run_measurement",
    "repeat_measure",
    "format_table",
    "format_series",
    "RelativeSeries",
]
