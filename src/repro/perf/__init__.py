"""Performance modelling: event counts → modelled seconds.

The simulator cannot time an A100; it *counts* what the A100 would do
(sectors moved, probes serialised behind warp divergence, atomic
conflicts, kernel launches, waves).  This package converts those counts
into modelled runtimes with per-platform constants calibrated **once**
against the paper's published anchors (3.0 B edges/s ν-LPA throughput on
it-2004; the 364× / 62× / 2.6× / 37× speedup ratios) and never refitted per
experiment — so the *shapes* benchmarks report (who wins where, how factors
move across graphs and configurations) come entirely from measured counts.

Attributes are resolved lazily (PEP 562): ``repro.perf.model`` imports the
baseline implementations, which import the core engines — and the engines
themselves import :mod:`repro.perf.workspace` for their scratch arena.
Importing everything eagerly here would close that cycle; deferring until
first attribute access keeps ``from repro.perf.workspace import
WorkspaceArena`` free of the model/baseline stack.
"""

from __future__ import annotations

__all__ = [
    "GpuPlatform",
    "CpuPlatform",
    "A100_PLATFORM",
    "XEON_SEQUENTIAL",
    "XEON_MULTICORE",
    "estimate_gpu_seconds",
    "estimate_lpa_result_seconds",
    "estimate_flpa_seconds",
    "estimate_networkit_seconds",
    "estimate_gve_seconds",
    "estimate_gunrock_seconds",
    "estimate_louvain_seconds",
    "extrapolation_ratios",
    "Measurement",
    "run_measurement",
    "repeat_measure",
    "format_table",
    "format_series",
    "RelativeSeries",
    "WorkspaceArena",
    "measure_calibration",
    "compare_to_baseline",
]

_EXPORTS = {
    "GpuPlatform": "repro.perf.platforms",
    "CpuPlatform": "repro.perf.platforms",
    "A100_PLATFORM": "repro.perf.platforms",
    "XEON_SEQUENTIAL": "repro.perf.platforms",
    "XEON_MULTICORE": "repro.perf.platforms",
    "estimate_gpu_seconds": "repro.perf.model",
    "estimate_lpa_result_seconds": "repro.perf.model",
    "estimate_flpa_seconds": "repro.perf.model",
    "estimate_networkit_seconds": "repro.perf.model",
    "estimate_gve_seconds": "repro.perf.model",
    "estimate_gunrock_seconds": "repro.perf.model",
    "estimate_louvain_seconds": "repro.perf.model",
    "extrapolation_ratios": "repro.perf.model",
    "Measurement": "repro.perf.harness",
    "run_measurement": "repro.perf.harness",
    "repeat_measure": "repro.perf.harness",
    "format_table": "repro.perf.report",
    "format_series": "repro.perf.report",
    "RelativeSeries": "repro.perf.report",
    "WorkspaceArena": "repro.perf.workspace",
    "measure_calibration": "repro.perf.baseline",
    "compare_to_baseline": "repro.perf.baseline",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
