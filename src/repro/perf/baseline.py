"""Benchmark-baseline comparison: the perf regression gate.

``BENCH_lpa.json`` carries two families of numbers per Table-1 stand-in:

* ``modeled_seconds`` — the cost model's output.  Deterministic for a
  given ``(scale, seed)``, so any drift is a real accounting change and
  is gated per graph;
* ``wall_seconds`` — measured vectorized-engine wall clock.  Machine
  dependent, so every document also records ``calibration_seconds``, the
  duration of a fixed NumPy micro-workload shaped like the hot path
  (sort, gather, segmented reduce, prefix sum).  Wall clocks are gated on
  the *calibration-normalised total*: ``sum(wall) / calibration`` is a
  machine-free throughput figure comparable across hosts.  Schema v3
  adds ``wall_seconds_hashtable`` (the ν-LPA hashtable engine) gated the
  same way, so regressions on the fused-sweep hot path fail CI too.

:func:`compare_to_baseline` returns a list of regression messages; an
empty list is a pass.  CI fails the ``perf-gate`` job on any message.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = [
    "measure_calibration",
    "compare_to_baseline",
    "compare_query_to_baseline",
]

#: Size of the calibration micro-workload (entries); large enough to be
#: memory-bound like a real wave, small enough to run in milliseconds.
_CALIBRATION_SIZE = 200_000


def _calibration_round(size: int) -> None:
    """One round of hot-path-shaped work on deterministic data."""
    rng = np.random.default_rng(12345)
    comp = rng.integers(0, size, size, dtype=np.int64)
    perm = np.empty(size, dtype=np.int64)
    vals = rng.random(size, dtype=np.float32)
    gathered = np.empty(size, dtype=np.float32)
    comp.sort()
    np.bitwise_and(comp, size - 1, out=perm)
    np.take(vals, perm, out=gathered, mode="clip")
    starts = np.arange(0, size, 64, dtype=np.int64)
    sums = np.empty(starts.shape[0], dtype=np.float32)
    np.add.reduceat(gathered, starts, out=sums)
    np.cumsum(comp, out=comp)


def measure_calibration(repeats: int = 5, size: int = _CALIBRATION_SIZE) -> float:
    """Best-of-``repeats`` seconds for the calibration workload.

    Best-of (not mean) so a background scheduling hiccup cannot inflate
    the figure; the first, cache-cold round is warm-up and never counted.
    """
    _calibration_round(size)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _calibration_round(size)
        best = min(best, time.perf_counter() - t0)
    return best


def _relative_increase(current: float, baseline: float) -> float:
    if baseline <= 0:
        return 0.0
    return current / baseline - 1.0


def compare_to_baseline(
    current: dict,
    baseline: dict,
    *,
    model_tolerance: float = 0.10,
    wall_tolerance: float = 0.10,
) -> list[str]:
    """Regressions of ``current`` vs ``baseline``; empty list = pass.

    Modelled seconds are compared per graph (deterministic, so the
    tolerance only absorbs float formatting); wall clock is compared on
    the calibration-normalised suite total (see module docstring).
    Improvements never fail the gate.
    """
    problems: list[str] = []
    for key in ("scale", "seed", "engine"):
        if current.get(key) != baseline.get(key):
            problems.append(
                f"baseline mismatch: {key} differs "
                f"(current {current.get(key)!r}, baseline {baseline.get(key)!r}); "
                f"refresh the baseline before gating"
            )
    if problems:
        return problems

    base_rows = {g["name"]: g for g in baseline["graphs"]}
    for g in current["graphs"]:
        ref = base_rows.get(g["name"])
        if ref is None:
            problems.append(f"{g['name']}: missing from baseline")
            continue
        inc = _relative_increase(g["modeled_seconds"], ref["modeled_seconds"])
        if inc > model_tolerance:
            problems.append(
                f"{g['name']}: modelled seconds regressed {inc:+.1%} "
                f"({ref['modeled_seconds']:.6f}s -> {g['modeled_seconds']:.6f}s)"
            )
    missing = set(base_rows) - {g["name"] for g in current["graphs"]}
    for name in sorted(missing):
        problems.append(f"{name}: present in baseline but not in current run")

    cur_cal = current.get("calibration_seconds")
    base_cal = baseline.get("calibration_seconds")
    if cur_cal and base_cal:
        cur_wall = sum(g.get("wall_seconds", 0.0) for g in current["graphs"])
        base_wall = sum(g.get("wall_seconds", 0.0) for g in base_rows.values())
        inc = _relative_increase(cur_wall / cur_cal, base_wall / base_cal)
        if inc > wall_tolerance:
            problems.append(
                f"suite wall clock regressed {inc:+.1%} "
                f"(calibration-normalised: "
                f"{base_wall / base_cal:.2f} -> {cur_wall / cur_cal:.2f})"
            )
        # Schema v3 adds the hashtable engine's wall clock; skip the gate
        # against pre-v3 baselines that never recorded it.
        cur_ht = sum(g.get("wall_seconds_hashtable", 0.0) for g in current["graphs"])
        base_ht = sum(
            g.get("wall_seconds_hashtable", 0.0) for g in base_rows.values()
        )
        if cur_ht and base_ht:
            inc = _relative_increase(cur_ht / cur_cal, base_ht / base_cal)
            if inc > wall_tolerance:
                problems.append(
                    f"hashtable suite wall clock regressed {inc:+.1%} "
                    f"(calibration-normalised: "
                    f"{base_ht / base_cal:.2f} -> {cur_ht / cur_cal:.2f})"
                )
    return problems


def compare_query_to_baseline(
    current: dict,
    baseline: dict,
    *,
    headroom: float = 4.0,
) -> list[str]:
    """Regressions of a query-bench run vs its baseline; empty = pass.

    Query latencies are raw wall clock, so cross-machine comparison needs
    slack: a graph's membership/roster p99 only fails when it exceeds
    *both* the absolute SLO budget and ``headroom`` times the baseline p99
    for the same (graph, op).  The SLO and flatness booleans of the
    current run are hard gates regardless of the baseline.
    """
    problems: list[str] = []
    for key in ("seed", "zipf_s", "op_mix"):
        if current.get(key) != baseline.get(key):
            problems.append(
                f"baseline mismatch: {key} differs "
                f"(current {current.get(key)!r}, baseline {baseline.get(key)!r}); "
                f"refresh the baseline before gating"
            )
    if problems:
        return problems

    if not current["slo"]["met"]:
        problems.append(
            f"membership p99 SLO missed: "
            f"{current['slo']['worst_membership_p99_us']:.2f}us over the "
            f"{current['slo']['membership_p99_us']:.2f}us budget"
        )
    if not current["flatness"]["met"]:
        problems.append(
            f"flatness missed: membership p50 ratio "
            f"{current['flatness']['membership_p50_ratio']:.2f} exceeds "
            f"bound {current['flatness']['bound']:.2f}"
        )

    budget = current["slo"]["membership_p99_us"]
    base_rows = {g["name"]: g for g in baseline["graphs"]}
    for g in current["graphs"]:
        ref = base_rows.get(g["name"])
        if ref is None:
            problems.append(f"{g['name']}: missing from baseline")
            continue
        for op in ("membership", "roster"):
            cur_p99 = g["ops"][op]["p99_us"]
            base_p99 = ref["ops"][op]["p99_us"]
            ceiling = max(budget, base_p99 * headroom)
            if cur_p99 > ceiling:
                problems.append(
                    f"{g['name']}/{op}: p99 regressed "
                    f"{base_p99:.2f}us -> {cur_p99:.2f}us "
                    f"(ceiling {ceiling:.2f}us = max(SLO, {headroom:.0f}x "
                    f"baseline))"
                )
    missing = set(base_rows) - {g["name"] for g in current["graphs"]}
    for name in sorted(missing):
        problems.append(f"{name}: present in baseline but not in current run")
    return problems
