"""Measurement harness: run an algorithm on a dataset, collect everything.

A :class:`Measurement` is one (algorithm, dataset) cell of a paper figure:
measured community quality, measured work counts, and the modelled
paper-scale runtime.  :func:`repeat_measure` averages over seeds the way the
paper averages over five runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean
from typing import Callable

import numpy as np

from repro.baselines import flpa, gunrock_lpa, gve_lpa, louvain, networkit_plp
from repro.core import LPAConfig, nu_lpa
from repro.core.result import LPAResult
from repro.graph.csr import CSRGraph
from repro.graph.datasets import get_dataset
from repro.metrics import modularity
from repro.perf import model as perf_model
from repro.perf.model import Ratios, extrapolation_ratios

__all__ = ["Measurement", "run_measurement", "repeat_measure", "ALGORITHMS"]


@dataclass
class Measurement:
    """One algorithm × dataset data point."""

    algorithm: str
    dataset: str
    modularity: float
    num_communities: int
    iterations: int
    converged: bool
    #: Modelled runtime at paper scale, seconds.
    modeled_seconds: float
    #: Wall-clock of the Python simulation (diagnostic only).
    wall_seconds: float
    #: Raw work counts for debugging/reporting.
    details: dict = field(default_factory=dict)


def _measure_nu_lpa(
    graph: CSRGraph, ratios: Ratios, *, config: LPAConfig | None = None,
    engine: str = "hashtable", seed: int = 0,
) -> tuple[np.ndarray, int, bool, float, dict]:
    result: LPAResult = nu_lpa(graph, config or LPAConfig(), engine=engine)
    secs = perf_model.estimate_lpa_result_seconds(result, ratios)
    details = result.total_counters.as_dict()
    return result.labels, result.num_iterations, result.converged, secs, details


def _measure_flpa(graph, ratios, *, seed=0, **_):
    r = flpa(graph, seed=seed)
    return r.labels, r.iterations, r.converged, perf_model.estimate_flpa_seconds(r, ratios), dict(r.extra)


def _measure_networkit(graph, ratios, *, seed=0, **_):
    r = networkit_plp(graph, seed=seed)
    return r.labels, r.iterations, r.converged, perf_model.estimate_networkit_seconds(r, ratios), dict(r.extra)


def _measure_gve(graph, ratios, *, seed=0, **_):
    r = gve_lpa(graph, seed=seed)
    return r.labels, r.iterations, r.converged, perf_model.estimate_gve_seconds(r, ratios), dict(r.extra)


def _measure_gunrock(graph, ratios, *, seed=0, **_):
    r = gunrock_lpa(graph, seed=seed)
    return r.labels, r.iterations, r.converged, perf_model.estimate_gunrock_seconds(r, ratios), dict(r.extra)


def _measure_louvain(graph, ratios, *, seed=0, **_):
    r = louvain(graph, seed=seed)
    return r.labels, r.iterations, r.converged, perf_model.estimate_louvain_seconds(r, ratios), dict(r.extra)


#: Algorithm registry used by the comparison experiments; names match the
#: paper's Figure 6 legend.
ALGORITHMS: dict[str, Callable] = {
    "nu-lpa": _measure_nu_lpa,
    "flpa": _measure_flpa,
    "networkit-lpa": _measure_networkit,
    "gve-lpa": _measure_gve,
    "gunrock-lpa": _measure_gunrock,
    "cugraph-louvain": _measure_louvain,
}


def run_measurement(
    algorithm: str,
    graph: CSRGraph,
    *,
    dataset: str | None = None,
    seed: int = 0,
    **kwargs,
) -> Measurement:
    """Run ``algorithm`` on ``graph`` and build its :class:`Measurement`.

    ``dataset`` (a Table-1 name) enables paper-scale extrapolation of the
    modelled runtime; without it, times are at stand-in scale.
    """
    if dataset is not None:
        spec = get_dataset(dataset)
        ratios = extrapolation_ratios(
            graph, spec.paper_num_vertices, spec.paper_num_edges
        )
    else:
        ratios = Ratios(edges=1.0, vertices=1.0)

    fn = ALGORITHMS[algorithm]
    t0 = time.perf_counter()
    labels, iterations, converged, secs, details = fn(
        graph, ratios, seed=seed, **kwargs
    )
    wall = time.perf_counter() - t0

    return Measurement(
        algorithm=algorithm,
        dataset=dataset or "custom",
        modularity=modularity(graph, labels),
        num_communities=int(np.unique(labels).shape[0]),
        iterations=iterations,
        converged=converged,
        modeled_seconds=secs,
        wall_seconds=wall,
        details=details,
    )


def repeat_measure(
    algorithm: str,
    graph: CSRGraph,
    *,
    repeats: int = 3,
    dataset: str | None = None,
    **kwargs,
) -> Measurement:
    """Average ``repeats`` runs with different seeds (paper: five runs)."""
    runs = [
        run_measurement(algorithm, graph, dataset=dataset, seed=s, **kwargs)
        for s in range(repeats)
    ]
    best = runs[0]
    return Measurement(
        algorithm=best.algorithm,
        dataset=best.dataset,
        modularity=mean(r.modularity for r in runs),
        num_communities=int(mean(r.num_communities for r in runs)),
        iterations=int(mean(r.iterations for r in runs)),
        converged=all(r.converged for r in runs),
        modeled_seconds=mean(r.modeled_seconds for r in runs),
        wall_seconds=mean(r.wall_seconds for r in runs),
        details=best.details,
    )
