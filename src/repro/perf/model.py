"""Cost models: counters → modelled seconds, with paper-scale extrapolation.

Two ingredients:

1. **Per-platform time formulae.**  For ν-LPA on the GPU,

   .. math:: t = n_{launch} c_{launch} + n_{wave} c_{wave}
                 + \\frac{B_{sector} (S_r + S_w)}{BW}
                 + P_{warp} c_{probe} + A_{conf} c_{atomic}

   — bandwidth for the streamed traffic, serialised latency for what
   lockstep cannot hide (per-warp max probes, conflicting atomics).  The
   CPU/GPU baselines use work-count formulae documented on each function.

2. **Extrapolation.**  Experiments run on laptop-scale stand-ins but report
   paper-scale times: every extensive counter is scaled by the paper/
   stand-in edge ratio (vertex-extensive ones by the vertex ratio) before
   the formula is applied.  Ratios come from :func:`extrapolation_ratios`.
   Counter *rates* (probes per edge, conflicts per atomic, ...) are the
   measured quantities that carry each experiment's signal; the ratios are
   a common factor inside one experiment and cancel in relative results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult
from repro.baselines.louvain import LouvainResult
from repro.core.result import LPAResult
from repro.gpu.metrics import KernelCounters
from repro.graph.csr import CSRGraph
from repro.perf.platforms import (
    A100_PLATFORM,
    XEON_MULTICORE,
    XEON_SEQUENTIAL,
    CpuPlatform,
    GpuPlatform,
)

__all__ = [
    "extrapolation_ratios",
    "scale_counters",
    "estimate_gpu_seconds",
    "estimate_flpa_seconds",
    "estimate_networkit_seconds",
    "estimate_gve_seconds",
    "estimate_gunrock_seconds",
    "estimate_louvain_seconds",
]

#: GVE-LPA's published advantage over NetworKit's std::map accounting.
_GVE_SPEEDUP_OVER_NETWORKIT = 40.0


@dataclass(frozen=True)
class Ratios:
    """Stand-in → paper scaling factors."""

    edges: float
    vertices: float


def extrapolation_ratios(
    standin: CSRGraph, paper_vertices: int | None, paper_edges: int | None
) -> Ratios:
    """Scaling ratios; identity when no paper-scale target is given."""
    if paper_vertices is None or paper_edges is None:
        return Ratios(edges=1.0, vertices=1.0)
    return Ratios(
        edges=paper_edges / max(standin.num_edges, 1),
        vertices=paper_vertices / max(standin.num_vertices, 1),
    )


def scale_counters(counters: KernelCounters, ratios: Ratios) -> KernelCounters:
    """Scale extensive counters to paper size.

    Edge-extensive quantities (traffic, probes, atomics) scale with |E|;
    vertex-extensive ones (vertices processed, waves) with |V|; launch
    counts are per-iteration constants and do not scale.
    """
    e, v = ratios.edges, ratios.vertices
    return KernelCounters(
        launches=counters.launches,
        waves=max(counters.waves, int(round(counters.waves * v))),
        sectors_read=int(counters.sectors_read * e),
        sectors_written=int(counters.sectors_written * e),
        edges_scanned=int(counters.edges_scanned * e),
        vertices_processed=int(counters.vertices_processed * v),
        probes=int(counters.probes * e),
        warp_serial_probes=int(counters.warp_serial_probes * e),
        atomic_cas=int(counters.atomic_cas * e),
        atomic_add=int(counters.atomic_add * e),
        atomic_conflicts=int(counters.atomic_conflicts * e),
        slots_cleared=int(counters.slots_cleared * e),
    )


def estimate_gpu_seconds(
    counters: KernelCounters,
    platform: GpuPlatform = A100_PLATFORM,
) -> float:
    """Modelled ν-LPA runtime from (possibly scaled) kernel counters.

    Launch overhead is charged per ``counters.launches``.  Under
    persistent-kernel mode (:attr:`~repro.core.config.LPAConfig.
    persistent_kernel`) the engines count only the *first* launch of each
    kernel kind — later dispatches are grid-resident and appear here only
    through their ``waves`` term, which is how the amortisation shows up
    in the model.
    """
    bandwidth_time = (
        counters.bytes_moved(platform.sector_bytes) / platform.effective_bandwidth
    )
    return (
        counters.launches * platform.launch_overhead
        + counters.waves * platform.wave_overhead
        + bandwidth_time
        + counters.warp_serial_probes * platform.probe_serial_cost
        + counters.atomic_conflicts * platform.atomic_conflict_cost
    )


def estimate_flpa_seconds(
    result: BaselineResult,
    ratios: Ratios,
    platform: CpuPlatform = XEON_SEQUENTIAL,
) -> float:
    """FLPA: sequential pops, each rescanning its adjacency list."""
    edges = result.edges_scanned * ratios.edges
    pops = result.vertices_processed * ratios.vertices
    return edges * platform.edge_cost + pops * platform.vertex_cost


def estimate_networkit_seconds(
    result: BaselineResult,
    ratios: Ratios,
    platform: CpuPlatform = XEON_MULTICORE,
) -> float:
    """NetworKit PLP: std::map edge accounting over ``cores`` threads."""
    edges = result.edges_scanned * ratios.edges
    vertices = result.vertices_processed * ratios.vertices
    per_core = (edges * platform.edge_cost + vertices * platform.vertex_cost) / platform.cores
    return per_core + result.iterations * platform.barrier_cost


def estimate_gve_seconds(
    result: BaselineResult,
    ratios: Ratios,
    platform: CpuPlatform = XEON_MULTICORE,
) -> float:
    """GVE-LPA: NetworKit's schedule with 40× cheaper label accounting."""
    edges = result.edges_scanned * ratios.edges
    vertices = result.vertices_processed * ratios.vertices
    per_core = (
        edges * platform.edge_cost / _GVE_SPEEDUP_OVER_NETWORKIT
        + vertices * platform.vertex_cost
    ) / platform.cores
    return per_core + result.iterations * platform.barrier_cost


def estimate_gunrock_seconds(
    result: BaselineResult,
    ratios: Ratios,
    platform: GpuPlatform = A100_PLATFORM,
) -> float:
    """Gunrock LPA: synchronous full-graph streaming, fixed iterations."""
    edges = result.edges_scanned * ratios.edges
    vertices = result.vertices_processed * ratios.vertices
    return (
        edges / platform.sync_lpa_edges_per_s
        + vertices * platform.sync_lpa_vertex_cost
        + result.iterations * platform.launch_overhead
    )


def estimate_louvain_seconds(
    result: LouvainResult,
    ratios: Ratios,
    platform: GpuPlatform = A100_PLATFORM,
) -> float:
    """cuGraph Louvain: move rounds plus per-pass aggregation."""
    edges = result.edges_scanned * ratios.edges
    move_time = edges / platform.louvain_edges_per_s
    # Each pass aggregates its working graph; pass sizes shrink
    # geometrically, so approximate the summed aggregation work by the
    # first pass's edge count.
    first_pass_edges = (
        result.edges_scanned / max(result.iterations, 1) * ratios.edges
    )
    aggregate_time = (
        len(result.pass_sizes) * first_pass_edges
        * platform.louvain_aggregate_s_per_edge
    )
    return move_time + aggregate_time


def estimate_lpa_result_seconds(
    result: LPAResult,
    ratios: Ratios,
    platform: GpuPlatform = A100_PLATFORM,
) -> float:
    """Convenience: scale an LPAResult's summed counters and price them."""
    return estimate_gpu_seconds(scale_counters(result.total_counters, ratios), platform)
