"""Platform constants for the cost models.

Every number here is fixed once, calibrated against the paper's published
anchors (Section 5), and shared by all experiments.  The calibration
targets, for the paper-scale it-2004 workload (|E| = 2.19 B):

* ν-LPA ≈ 1.6 s (3.0 B edges/s end-to-end) on the A100;
* FLPA ≈ 364× ν-LPA on one Xeon core — ~90 ns per scanned edge, the cost
  of igraph's pop-recompute loop with random tie-breaks;
* NetworKit PLP ≈ 62× ν-LPA on 32 cores — ~140 ns per scanned edge per
  core, dominated by ``std::map`` label-weight accounting;
* GVE-LPA ≈ NetworKit/40 — ~4 ns per edge per core with collision-free
  hashtables (the paper's stated 40× over NetworKit);
* Gunrock LPA ≈ 2.6× ν-LPA — a simple synchronous kernel streams ~5 B
  edges/s but runs fixed full-graph iterations with no pruning;
* cuGraph Louvain ≈ 37× ν-LPA — ~0.6 B edges/s effective over many
  move rounds plus per-pass aggregation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GpuPlatform",
    "CpuPlatform",
    "A100_PLATFORM",
    "XEON_SEQUENTIAL",
    "XEON_MULTICORE",
]


@dataclass(frozen=True)
class GpuPlatform:
    """Cost coefficients for a GPU platform."""

    name: str
    #: Blended DRAM+L2 bandwidth, bytes/second: ν-LPA's scattered traffic
    #: (labels, hashtable slots) is mostly L2-resident on an A100 (40 MB L2,
    #: ~7 TB/s), so the effective rate sits between DRAM's 1.9 TB/s and L2's;
    #: calibrated against the paper's 3.0 B-edges-per-second anchor.
    effective_bandwidth: float
    #: Fixed cost per kernel launch, seconds.
    launch_overhead: float
    #: Cost per wave of resident blocks/threads (scheduling + tail), seconds.
    wave_overhead: float
    #: Serialised latency per warp-max probe, seconds (latency divided by
    #: the warp-level parallelism that hides it).
    probe_serial_cost: float
    #: Extra serialisation per conflicting atomic, seconds.
    atomic_conflict_cost: float
    #: Transaction sector size used to price counter traffic in bytes; must
    #: match the ``DeviceSpec.sector_bytes`` of the simulated device whose
    #: counters are being priced (32 B on every current NVIDIA part).
    sector_bytes: int = 32

    # -- coefficients for the GPU *baselines* -------------------------- #
    #: Synchronous-LPA (Gunrock) streaming throughput, edges/second.
    sync_lpa_edges_per_s: float = 5.0e9
    #: Gunrock per-vertex frontier/segment overhead, seconds (its segmented
    #: reduce pays per-vertex setup that dominates on degree-2 graphs).
    sync_lpa_vertex_cost: float = 8.0e-10
    #: Louvain (cuGraph) effective move throughput, edges/second.
    louvain_edges_per_s: float = 0.25e9
    #: Per-pass aggregation overhead for Louvain, seconds per edge of the
    #: pass's working graph.
    louvain_aggregate_s_per_edge: float = 1.5e-9


@dataclass(frozen=True)
class CpuPlatform:
    """Cost coefficients for a CPU platform."""

    name: str
    cores: int
    #: Cost per scanned edge per core, seconds.
    edge_cost: float
    #: Fixed cost per vertex visit (queue pop / schedule step), seconds.
    vertex_cost: float
    #: Per-iteration synchronisation barrier, seconds.
    barrier_cost: float = 5.0e-6


#: The paper's A100, with ν-LPA coefficients calibrated to the 1.6 s /
#: 3.0 B-edges-per-second anchor (see perf.model.estimate_gpu_seconds).
A100_PLATFORM = GpuPlatform(
    name="A100",
    effective_bandwidth=4.0e12,
    launch_overhead=4.0e-6,
    wave_overhead=1.5e-6,
    probe_serial_cost=4.0e-10,
    atomic_conflict_cost=2.0e-10,
)

#: One Xeon Gold 6226R core (FLPA's world).
XEON_SEQUENTIAL = CpuPlatform(
    name="Xeon-1core",
    cores=1,
    edge_cost=1.4e-7,
    vertex_cost=2.0e-7,
)

#: Dual-socket 32-core Xeon (NetworKit / GVE-LPA's world); edge_cost here
#: is the NetworKit std::map cost — GVE-LPA divides it by its published 40×.
XEON_MULTICORE = CpuPlatform(
    name="Xeon-32core",
    cores=32,
    edge_cost=4.2e-7,
    vertex_cost=2.0e-8,
)
