"""Terminal rendering of the paper's figures as ASCII bar charts.

The experiments print tables; these helpers render the same data the way
the paper's figures read — one bar per variant, scaled to the worst — for
quick visual comparison in a terminal (``python -m repro.experiments F3
--plot``).  Pure string manipulation; no plotting dependencies.
"""

from __future__ import annotations

import math

__all__ = ["bar_chart", "log_bar_chart", "series_chart"]

_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A left-aligned bar filling ``fraction`` of ``width`` characters."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    full = int(cells)
    rem = cells - full
    partial = _PARTIAL[int(rem * 8)] if full < width else ""
    return _FULL * full + partial


def bar_chart(
    values: dict[str, float],
    *,
    width: int = 40,
    title: str | None = None,
    fmt: str = ".3f",
) -> str:
    """Horizontal bar chart, bars scaled linearly to the maximum value."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, val in values.items():
        frac = val / peak if peak > 0 else 0.0
        lines.append(f"{key.ljust(label_w)} |{_bar(frac, width)} {val:{fmt}}")
    return "\n".join(lines)


def log_bar_chart(
    values: dict[str, float],
    *,
    width: int = 40,
    title: str | None = None,
    fmt: str = ".3g",
) -> str:
    """Bar chart on a log scale — the paper's runtime figures are log-scale."""
    positive = {k: v for k, v in values.items() if v > 0}
    if not positive:
        return title or ""
    lo = min(positive.values())
    hi = max(positive.values())
    span = math.log10(hi / lo) if hi > lo else 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, val in values.items():
        if val <= 0:
            lines.append(f"{key.ljust(label_w)} | (non-positive: {val:{fmt}})")
            continue
        frac = (math.log10(val / lo) / span) if span > 0 else 1.0
        # Floor at one cell so the smallest value is still visible.
        frac = max(frac, 1.0 / width)
        lines.append(f"{key.ljust(label_w)} |{_bar(frac, width)} {val:{fmt}}")
    return "\n".join(lines)


def series_chart(
    series: dict[str, dict[str, float]],
    *,
    width: int = 30,
    title: str | None = None,
) -> str:
    """Grouped bars: one block per outer key, bars for the inner dict."""
    lines = [title] if title else []
    for group, values in series.items():
        lines.append(f"{group}:")
        chart = bar_chart(values, width=width)
        lines.extend("  " + line for line in chart.splitlines())
    return "\n".join(lines)
