"""Paper-style report formatting.

The benchmarks print the same row/series structure the paper's tables and
figures carry: per-dataset absolute numbers for Figure 6 and Table 1,
mean *relative* runtime / modularity for the optimisation figures
(Figures 1, 3-5, 7), where everything is normalised to a designated
reference configuration exactly as the paper normalises to its chosen
variant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["format_table", "format_series", "RelativeSeries", "geometric_mean"]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, the right average for runtime ratios."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


def format_table(
    headers: list[str],
    rows: list[list[str]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width text table (benchmark stdout / EXPERIMENTS.md blocks)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class RelativeSeries:
    """One bar group of a relative-runtime/modularity figure."""

    label: str
    #: Per-dataset absolute values, keyed by dataset name.
    values: dict[str, float]

    def relative_to(self, reference: "RelativeSeries") -> dict[str, float]:
        """Per-dataset ratio against ``reference`` (paper's normalisation)."""
        out = {}
        for key, val in self.values.items():
            ref = reference.values.get(key)
            if ref and ref > 0:
                out[key] = val / ref
        return out

    def mean_relative(self, reference: "RelativeSeries") -> float:
        """Geometric-mean ratio across datasets — the figures' bar height."""
        return geometric_mean(list(self.relative_to(reference).values()))


def format_series(
    series: list[RelativeSeries],
    reference_label: str,
    *,
    value_name: str = "runtime",
    title: str | None = None,
) -> str:
    """Render a relative figure as a text table with a mean column."""
    reference = next(s for s in series if s.label == reference_label)
    datasets = list(reference.values)
    headers = ["variant"] + datasets + [f"mean rel. {value_name}"]
    rows = []
    for s in series:
        rel = s.relative_to(reference)
        rows.append(
            [s.label]
            + [f"{rel.get(d, float('nan')):.3f}" for d in datasets]
            + [f"{s.mean_relative(reference):.3f}"]
        )
    return format_table(headers, rows, title=title)
