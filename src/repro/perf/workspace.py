"""Reusable scratch-buffer arena for the per-wave hot path.

Every ν-LPA iteration re-runs the same chain of vectorised kernels —
gather, compact, sort, segmented reduce — over wave-sized arrays whose
shapes change a little between waves but whose *roles* never do.  Before
this module existed each wave re-allocated every one of those arrays from
the heap; on a converging run that is thousands of multi-megabyte
``np.empty`` calls that all request the same dozen buffers.

A :class:`WorkspaceArena` keeps one grow-only backing array per
``(name, dtype)`` slot and hands out zero-copy views of the requested
length.  In steady state (after the first couple of iterations have grown
every slot to its high-water mark) a ``take`` is a dictionary lookup plus a
slice — no heap allocation at all, which is what the tracemalloc gate in
``tests/core/test_workspace_differential.py`` verifies.

Discipline (enforced by convention, checked by the differential tests):

* a ``take`` returns **uninitialised** memory, exactly like ``np.empty`` —
  callers must fully overwrite before reading;
* slot names are unique per call site (dotted prefixes: ``g.`` for
  gather, ``gb.`` group-by, ``pa.`` parallel accumulate, ``fr.``
  frontier, ...), so two buffers that are alive at the same time can never
  alias;
* a view is valid until the *next* ``take`` of the same slot — returning
  one across iterations requires a copy.

The module-level :func:`take` / :func:`iota` helpers accept ``arena=None``
and fall back to fresh allocation, so every hot-path function has a single
code path whose results are bit-identical with the arena on or off — the
only thing that changes is where the output buffer comes from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkspaceArena", "take", "iota", "compact"]

#: Minimum backing-buffer capacity; avoids churning on tiny waves.
_MIN_CAPACITY = 16


class WorkspaceArena:
    """Dtype-tagged, grow-only scratch buffers with zero-copy slicing."""

    __slots__ = ("_buffers", "_iota", "takes", "grows", "grown_bytes",
                 "governor", "charged_bytes")

    def __init__(self, *, governor=None) -> None:
        self._buffers: dict[tuple[str, object], np.ndarray] = {}
        self._iota: np.ndarray | None = None
        #: Total ``take`` calls served (steady-state hits + grows).
        self.takes = 0
        #: Backing-array (re)allocations performed.
        self.grows = 0
        #: Bytes currently held across all backing arrays.
        self.grown_bytes = 0
        #: Optional :class:`~repro.gpu.governor.MemoryGovernor`: grows
        #: charge their byte *delta* to the ``"arena"`` region, so the
        #: ledger carries the arena at its high-water mark — once per
        #: slot growth, never per ``take`` (steady-state hits stay a
        #: dict lookup plus a slice).
        self.governor = governor
        #: Bytes currently charged to the governor's ``"arena"`` region
        #: (``grown_bytes`` plus the iota ramp); what
        #: :meth:`release_charges` returns to the budget.
        self.charged_bytes = 0

    def _charge_grow(self, delta: int) -> None:
        """Reserve the growth delta *before* allocating the new backing
        array, so a failed reservation (typed
        :class:`~repro.errors.DeviceOomError`) leaves both the ledger
        and the slot table untouched and the retried take re-runs the
        same grow."""
        if self.governor is not None and delta > 0:
            self.governor.reserve("arena", delta)
            self.charged_bytes += delta

    def release_charges(self) -> int:
        """Return every byte this arena charged to the governor.

        Called when the arena's engine dies (supervisor fallback, end of
        run); returns the bytes released.  Idempotent — a second call
        releases nothing.
        """
        released = self.charged_bytes
        if self.governor is not None and released:
            self.governor.release("arena", released)
        self.charged_bytes = 0
        return released

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` view of the ``(name, dtype)`` slot.

        Contents are uninitialised (``np.empty`` semantics).  The backing
        array only ever grows — geometrically, so a slot reaches its
        high-water mark in O(log size) reallocations and then never
        allocates again.
        """
        # Key on the caller's dtype object directly: equal dtypes hash
        # equal, and skipping the np.dtype() canonicalisation on every
        # steady-state hit measurably shrinks per-take overhead.  A
        # class-vs-instance spelling difference at worst costs one extra
        # slot.
        key = (name, dtype)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < size:
            old = 0 if buf is None else buf.shape[0]
            capacity = max(size, 2 * old, _MIN_CAPACITY)
            dt = np.dtype(dtype)
            self._charge_grow(capacity * dt.itemsize
                              - (0 if buf is None else buf.nbytes))
            if buf is not None:
                self.grown_bytes -= buf.nbytes
            buf = np.empty(capacity, dtype=dt)
            self._buffers[key] = buf
            self.grows += 1
            self.grown_bytes += buf.nbytes
        self.takes += 1
        return buf[:size]

    def iota(self, size: int) -> np.ndarray:
        """A read-only-by-convention view of ``[0, size)`` as int64.

        One shared ramp serves every call site that needs positional
        indices (``np.arange`` equivalents); callers must never write to
        it.
        """
        if self._iota is None or self._iota.shape[0] < size:
            capacity = max(size, 2 * (0 if self._iota is None else self._iota.shape[0]),
                           _MIN_CAPACITY)
            self._charge_grow(
                8 * (capacity - (0 if self._iota is None
                                 else self._iota.shape[0]))
            )
            self._iota = np.arange(capacity, dtype=np.int64)
            self.grows += 1
        return self._iota[:size]

    def stats(self) -> dict[str, int]:
        """Counters for tests and observability."""
        return {
            "slots": len(self._buffers),
            "takes": self.takes,
            "grows": self.grows,
            "grown_bytes": self.grown_bytes,
        }


def take(arena: WorkspaceArena | None, name: str, size: int, dtype) -> np.ndarray:
    """Arena slot when ``arena`` is given, fresh ``np.empty`` otherwise.

    This is the single switch between the allocation-free and the
    allocating path: the caller's arithmetic is identical either way, so
    results are bit-for-bit equal by construction.
    """
    if arena is None:
        return np.empty(size, dtype=dtype)
    return arena.take(name, size, dtype)


def iota(arena: WorkspaceArena | None, size: int) -> np.ndarray:
    """Shared ``[0, size)`` int64 ramp (``np.arange`` when arena-less)."""
    if arena is None:
        return np.arange(size, dtype=np.int64)
    return arena.iota(size)


def compact(
    arena: WorkspaceArena | None,
    name: str,
    mask: np.ndarray,
    count: int,
    *sources: np.ndarray,
):
    """``np.compress(mask, source)`` for each source, without the heap.

    ``np.compress`` — even with ``out=`` — internally materialises the
    selected-index array (two mask-sized temporaries per call), which is
    the one NumPy primitive on the hot path that cannot be fed a scratch
    buffer.  This is the allocation-free equivalent: a running count gives
    every kept entry its 1-based output position, dropped entries all dump
    into a sacrificial slot 0, and a full forward scatter writes each
    source into a ``(count + 1)``-long slot whose tail view is returned.

    ``count`` must equal ``np.count_nonzero(mask)`` (every caller has it
    already).  Passing several sources shares the single mask scan.  The
    arithmetic is identical with or without an arena, so results are
    bit-identical either way.  Returns one view per source (a bare view
    for a single source); each is valid until the next take of its slot.
    """
    n = mask.shape[0]
    m = take(arena, name + ".m", n, np.int64)
    np.copyto(m, mask, casting="unsafe")
    pos = take(arena, name + ".pos", n, np.int64)
    np.cumsum(m, out=pos)
    np.multiply(pos, m, out=pos)  # kept -> 1-based rank, dropped -> 0
    views = []
    for i, src in enumerate(sources):
        buf = take(arena, f"{name}.{i}", count + 1, src.dtype)
        buf[pos] = src
        views.append(buf[1:])
    return views[0] if len(views) == 1 else tuple(views)
