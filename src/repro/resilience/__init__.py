"""Fault-tolerant execution layer for ν-LPA runs.

The paper assumes a hashtable "sized so overflow is avoided" and kernels
that always complete; this package removes those assumptions so the engine
survives injected device faults, degrades gracefully, and resumes long
runs mid-stream:

* :mod:`repro.resilience.faults` — deterministic fault injector wrapping
  the :mod:`repro.gpu` primitives (bit flips in the flat hashtable
  buffers, ``atomicCAS`` storms, watchdog timeouts, forced overflow);
* :mod:`repro.resilience.invariants` — post-kernel output validation;
* :mod:`repro.resilience.supervisor` — the kernel supervisor every
  supervised ``lpaMove`` flows through: retry with backoff → regrow the
  hashtables → fall back to the vectorized engine → abort with a report;
* :mod:`repro.resilience.checkpoint` — iteration-boundary snapshots with
  deterministic, bit-identical resume;
* :mod:`repro.resilience.report` — structured fault records.

Enable it by passing a :class:`~repro.core.config.ResilienceConfig` to
:func:`~repro.core.lpa.nu_lpa` (or the ``--inject-faults`` /
``--checkpoint-dir`` / ``--resume`` CLI flags).

Import note: the engines import :mod:`repro.resilience.faults` for the
hook context type, and the supervisor imports the engines — so this
``__init__`` loads only the leaf modules eagerly and resolves the
supervisor/checkpoint names lazily (PEP 562) to keep the graph acyclic.
"""

from __future__ import annotations

from repro.resilience.faults import FAULT_KINDS, FaultContext, FaultInjector, FaultSpec
from repro.resilience.invariants import (
    check_finite_values,
    check_label_range,
    check_pl_monotone,
)
from repro.resilience.report import FaultEvent, FaultReport
from repro.resilience.validate import (
    ValidationIssue,
    ValidationReport,
    validate_graph,
)

__all__ = [
    "FAULT_KINDS",
    "FaultContext",
    "FaultInjector",
    "FaultSpec",
    "FaultEvent",
    "FaultReport",
    "KernelSupervisor",
    "CheckpointManager",
    "CheckpointState",
    "FsckEntry",
    "fsck",
    "run_digest",
    "ValidationIssue",
    "ValidationReport",
    "validate_graph",
    "ChaosSchedule",
    "SoakRecord",
    "SoakReport",
    "run_chaos_soak",
    "MemorySoakRecord",
    "MemorySoakReport",
    "run_memory_soak",
    "check_finite_values",
    "check_label_range",
    "check_pl_monotone",
]

_LAZY = {
    "KernelSupervisor": "repro.resilience.supervisor",
    "CheckpointManager": "repro.resilience.checkpoint",
    "CheckpointState": "repro.resilience.checkpoint",
    "FsckEntry": "repro.resilience.checkpoint",
    "fsck": "repro.resilience.checkpoint",
    "run_digest": "repro.resilience.checkpoint",
    # chaos imports the driver (it runs full nu_lpa sessions), so it must
    # stay lazy for the same reason the supervisor does.
    "ChaosSchedule": "repro.resilience.chaos",
    "SoakRecord": "repro.resilience.chaos",
    "SoakReport": "repro.resilience.chaos",
    "run_chaos_soak": "repro.resilience.chaos",
    # memory_soak runs full nu_lpa sessions and the service, so it stays
    # lazy like chaos.
    "MemorySoakRecord": "repro.resilience.memory_soak",
    "MemorySoakReport": "repro.resilience.memory_soak",
    "run_memory_soak": "repro.resilience.memory_soak",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
