"""Chaos soak harness: randomized fault + crash schedules with differential
resume checks.

The correctness contract of the whole resilience stack is *strict-LPA
determinism* (Sahu, arXiv 2301.09125): state at an iteration boundary plus
the same configuration must reproduce the final communities bit for bit.
The supervisor's ladder, the checkpoint CRCs, and the fsync protocol all
exist to preserve that contract under fire — and this module is the fire.

One :class:`ChaosSchedule` describes one adversarial session, all derived
deterministically from a single seed: which device faults to inject (and
how often), the iteration boundary at which the process "crashes", whether
the crash lands before, in the middle of, or just after a checkpoint
write, and whether the newest on-disk checkpoint additionally gets
corrupted while the process is down (bit rot / torn sector).  The harness
then runs each schedule three ways:

1. **reference** — same faults, never crashed, no checkpointing;
2. **crashed** — same faults, checkpointing on, killed at the scheduled
   point by an :class:`InjectedCrash` raised from a crash-injecting
   :class:`CrashingCheckpointManager`;
3. **resumed** — restarted with ``resume=True`` against whatever the
   crash left on disk.

The differential assertion is that (3) ends bit-identical to (1) — the
resumed run may limp through retries and fallbacks, but it must not
drift.  ``benchmarks/bench_chaos_soak.py`` runs 25 schedules and writes
the machine-readable :class:`SoakReport` as a CI artifact.

:class:`InjectedCrash` deliberately derives from plain :class:`Exception`
rather than ``ReproError``: nothing in the library may catch it, exactly
like a SIGKILL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.graph.csr import CSRGraph
from repro.resilience.checkpoint import CheckpointManager, CheckpointState
from repro.resilience.faults import FAULT_KINDS, FaultSpec

__all__ = [
    "CRASH_MODES",
    "InjectedCrash",
    "CrashPoint",
    "CrashingCheckpointManager",
    "ChaosSchedule",
    "SoakRecord",
    "SoakReport",
    "corrupt_checkpoint",
    "make_schedule",
    "run_chaos_soak",
]

#: Where a crash may land relative to the checkpoint write at its boundary.
CRASH_MODES = ("before-write", "mid-write", "after-write")


class InjectedCrash(Exception):
    """A simulated hard process death (kill -9 / power loss).

    Not a ``ReproError`` on purpose: no recovery path in the library is
    allowed to observe it, just as none would observe a real SIGKILL.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Kill the process at checkpoint boundary ``iteration``."""

    #: The ``CheckpointState.iteration`` value whose save triggers the crash.
    iteration: int
    #: ``before-write`` (boundary reached, nothing persisted),
    #: ``mid-write`` (a partial temp file is left behind, the final name
    #: never appears — what fsync+rename guarantees a real torn write looks
    #: like), or ``after-write`` (the snapshot is durable, then death).
    mode: str = "after-write"


class CrashingCheckpointManager(CheckpointManager):
    """A :class:`CheckpointManager` that dies on cue.

    Bind it into a run via ``ResilienceConfig.checkpoint_factory``::

        crash = CrashPoint(iteration=3, mode="mid-write")
        cfg = ResilienceConfig(
            checkpoint_dir=d,
            checkpoint_factory=CrashingCheckpointManager.factory(crash),
        )
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 1,
        keep: int | None = None,
        crash: CrashPoint | None = None,
    ) -> None:
        super().__init__(directory, every=every, keep=keep)
        self.crash = crash

    @classmethod
    def factory(cls, crash: CrashPoint | None):
        """A ``checkpoint_factory`` callable binding ``crash``."""
        def build(directory, *, every: int = 1, keep: int | None = None):
            return cls(directory, every=every, keep=keep, crash=crash)

        return build

    def save(self, state: CheckpointState) -> Path:
        crash = self.crash
        if crash is None or state.iteration != crash.iteration:
            return super().save(state)
        if crash.mode == "before-write":
            raise InjectedCrash(
                f"killed at boundary {state.iteration} before the write"
            )
        if crash.mode == "mid-write":
            # A torn write under the fsync+rename protocol: a partial temp
            # file exists, the final name was never replaced.
            tmp = self.directory / f".tmp-torn-{state.iteration:06d}.npz"
            tmp.write_bytes(b"\x93NUMPY torn mid-write")
            raise InjectedCrash(
                f"killed mid-write at boundary {state.iteration}"
            )
        path = super().save(state)
        raise InjectedCrash(
            f"killed at boundary {state.iteration} after durable write to {path.name}"
        )


def corrupt_checkpoint(path: str | Path, rng: np.random.Generator) -> str:
    """Damage one checkpoint file in place; returns what was done.

    Half the time the file is truncated (unreadable container), half the
    time a run of bytes in its middle is bit-flipped (readable container,
    CRC32 mismatch) — the two corruption shapes ``latest()`` must survive.
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if rng.random() < 0.5 or len(blob) < 64:
        path.write_bytes(bytes(blob[: len(blob) // 2]))
        return "truncated"
    mid = len(blob) // 2
    for i in range(mid, min(mid + 32, len(blob))):
        blob[i] ^= 0xFF
    path.write_bytes(bytes(blob))
    return "bit-flipped"


# --------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChaosSchedule:
    """One deterministic adversarial session."""

    seed: int
    fault_kinds: tuple[str, ...]
    fault_rate: float
    fault_seed: int
    max_fires: int | None
    crash: CrashPoint
    #: Additionally corrupt the newest on-disk checkpoint after the crash.
    corrupt_newest: bool

    def fault_spec(self) -> FaultSpec:
        """The schedule's injection policy as a :class:`FaultSpec`."""
        return FaultSpec(
            kinds=self.fault_kinds,
            rate=self.fault_rate,
            seed=self.fault_seed,
            max_fires=self.max_fires,
        )

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "seed": self.seed,
            "fault_kinds": list(self.fault_kinds),
            "fault_rate": self.fault_rate,
            "fault_seed": self.fault_seed,
            "max_fires": self.max_fires,
            "crash_iteration": self.crash.iteration,
            "crash_mode": self.crash.mode,
            "corrupt_newest": self.corrupt_newest,
        }


def make_schedule(
    seed: int,
    *,
    kinds: tuple[str, ...] = FAULT_KINDS,
    max_crash_iteration: int = 4,
) -> ChaosSchedule:
    """Derive one schedule deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    n_kinds = int(rng.integers(1, len(kinds) + 1))
    picked = tuple(
        sorted(rng.choice(list(kinds), size=n_kinds, replace=False).tolist())
    )
    return ChaosSchedule(
        seed=seed,
        fault_kinds=picked,
        fault_rate=float(np.round(rng.uniform(0.2, 1.0), 3)),
        fault_seed=int(rng.integers(0, 2**31)),
        max_fires=None if rng.random() < 0.5 else int(rng.integers(1, 6)),
        crash=CrashPoint(
            iteration=int(rng.integers(1, max_crash_iteration + 1)),
            mode=CRASH_MODES[int(rng.integers(len(CRASH_MODES)))],
        ),
        corrupt_newest=bool(rng.random() < 0.3),
    )


# --------------------------------------------------------------------- #
# The soak
# --------------------------------------------------------------------- #


@dataclass
class SoakRecord:
    """Outcome of one schedule."""

    schedule: ChaosSchedule
    #: Whether the scheduled crash actually fired (it does not when the run
    #: converges before reaching the crash boundary).
    crash_fired: bool
    #: How the post-crash corruption damaged the newest checkpoint
    #: (``""`` when the schedule did not corrupt or nothing was on disk).
    corruption: str
    #: Iteration the resumed run continued from (``None`` = started fresh,
    #: e.g. every generation was lost).
    resumed_from: int | None
    #: The contract: resumed final communities == never-crashed final
    #: communities, bit for bit.
    identical: bool
    reference_iterations: int = 0
    final_iterations: int = 0
    fault_events: int = 0

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "schedule": self.schedule.as_dict(),
            "crash_fired": self.crash_fired,
            "corruption": self.corruption,
            "resumed_from": self.resumed_from,
            "identical": self.identical,
            "reference_iterations": self.reference_iterations,
            "final_iterations": self.final_iterations,
            "fault_events": self.fault_events,
        }


@dataclass
class SoakReport:
    """All schedules of one soak run."""

    engine: str
    num_vertices: int
    num_edges: int
    records: list[SoakRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every schedule resumed bit-identically."""
        return all(r.identical for r in self.records)

    @property
    def failures(self) -> list[SoakRecord]:
        """Schedules whose resume drifted from the reference."""
        return [r for r in self.records if not r.identical]

    def summary(self) -> str:
        """One-line digest."""
        fired = sum(r.crash_fired for r in self.records)
        corrupted = sum(bool(r.corruption) for r in self.records)
        return (
            f"{len(self.records)} schedule(s): {fired} crash(es) fired, "
            f"{corrupted} checkpoint(s) corrupted, "
            f"{len(self.failures)} divergence(s)"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (the CI artifact body)."""
        return {
            "engine": self.engine,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "ok": self.ok,
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
        }


def _run_one(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    schedule: ChaosSchedule,
    workdir: Path,
) -> SoakRecord:
    spec = schedule.fault_spec()
    reference = nu_lpa(
        graph, config, engine=engine, warn_on_no_convergence=False,
        resilience=ResilienceConfig(faults=spec),
    )

    ckpt_dir = workdir / f"schedule-{schedule.seed}"
    crash_cfg = ResilienceConfig(
        faults=spec,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=1,
        checkpoint_factory=CrashingCheckpointManager.factory(schedule.crash),
    )
    crash_fired = False
    try:
        final = nu_lpa(
            graph, config, engine=engine, warn_on_no_convergence=False,
            resilience=crash_cfg,
        )
    except InjectedCrash:
        crash_fired = True

    corruption = ""
    if crash_fired:
        if schedule.corrupt_newest:
            found = sorted(ckpt_dir.glob("ckpt-*.npz"))
            if found:
                corruption = corrupt_checkpoint(
                    found[-1], np.random.default_rng(schedule.seed + 1)
                )
        final = nu_lpa(
            graph, config, engine=engine, warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                faults=spec,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=1,
                resume=True,
            ),
        )

    return SoakRecord(
        schedule=schedule,
        crash_fired=crash_fired,
        corruption=corruption,
        resumed_from=final.resumed_from,
        identical=bool(np.array_equal(final.labels, reference.labels)),
        reference_iterations=reference.num_iterations,
        final_iterations=final.num_iterations,
        fault_events=len(final.fault_events),
    )


def run_chaos_soak(
    graph: CSRGraph,
    workdir: str | Path,
    *,
    schedules: int = 25,
    seed: int = 0,
    engine: str = "hashtable",
    config: LPAConfig | None = None,
    kinds: tuple[str, ...] = FAULT_KINDS,
    max_crash_iteration: int = 4,
) -> SoakReport:
    """Run ``schedules`` randomized crash/fault sessions against ``graph``.

    Schedule *i* derives from ``seed + i``, so a failing schedule can be
    replayed in isolation with ``make_schedule(seed + i)``.  ``workdir``
    holds one checkpoint directory per schedule (left on disk for
    post-mortem).
    """
    config = config or LPAConfig()
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = SoakReport(
        engine=engine,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
    for i in range(schedules):
        schedule = make_schedule(
            seed + i, kinds=kinds, max_crash_iteration=max_crash_iteration
        )
        report.records.append(_run_one(graph, config, engine, schedule, workdir))
    return report
