"""Checkpoint/resume for LPA runs.

A checkpoint is everything the driver loop needs to continue a run
bit-identically from an iteration boundary: the membership (label) vector,
the frontier's processed flags, the next iteration index, the per-iteration
statistics so far, and the supervisor's cross-iteration state (injector
fire count, last Pick-Less changed fraction).  Because the simulator is
deterministic, ``state at iteration k`` + ``same config`` =>
``bit-identical final communities`` — per-iteration state is a restartable
queue, not a monolithic pass.

Format
------
One ``ckpt-NNNNNN.npz`` per snapshot inside the checkpoint directory:
``labels`` and ``flags`` arrays plus a JSON ``meta`` blob (schema version,
run digest, iteration, convergence flag, serialized iteration stats,
supervisor state).  Writes go to a temporary file in the same directory
followed by an atomic :func:`os.replace`, so a run killed mid-write never
leaves a partial checkpoint that :meth:`CheckpointManager.latest` could
pick up.

The *run digest* binds a checkpoint to the (graph, engine, config) that
produced it; resuming against anything else raises
:class:`~repro.errors.CheckpointError` instead of silently computing
garbage.  ``max_iterations`` is deliberately excluded so a killed run can
be resumed with a different cap.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import LPAConfig
from repro.core.result import IterationStats
from repro.errors import CheckpointError
from repro.gpu.metrics import KernelCounters
from repro.graph.csr import CSRGraph
from repro.types import FLAG_DTYPE, VERTEX_DTYPE

__all__ = ["CheckpointState", "CheckpointManager", "run_digest"]

#: Bump when the on-disk schema changes incompatibly.
_SCHEMA_VERSION = 1

_PREFIX = "ckpt-"
_SUFFIX = ".npz"


def run_digest(graph: CSRGraph, config: LPAConfig, engine: str) -> str:
    """Fingerprint of everything that must match for a resume to be valid."""
    payload = "|".join(
        str(part)
        for part in (
            graph.num_vertices,
            graph.num_edges,
            engine,
            config.tolerance,
            config.pl_period,
            config.cc_period,
            config.switch_degree,
            config.probing.value,
            np.dtype(config.value_dtype).name,
            config.pruning,
            config.shared_memory_tables,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CheckpointState:
    """In-memory image of one checkpoint."""

    labels: np.ndarray
    flags: np.ndarray
    #: Next iteration the driver loop should execute.
    iteration: int
    digest: str
    converged: bool = False
    stats: list[IterationStats] = field(default_factory=list)
    #: Fault-injector fires so far (keeps a resumed injection budget exact).
    injector_fires: int = 0
    #: Supervisor's last Pick-Less changed fraction, if any.
    last_pl_fraction: float | None = None


def _stats_to_json(stats: list[IterationStats]) -> list[dict]:
    return [
        {
            "iteration": s.iteration,
            "changed": s.changed,
            "processed": s.processed,
            "pick_less": s.pick_less,
            "cross_check": s.cross_check,
            "reverted": s.reverted,
            "counters": s.counters.as_dict(),
        }
        for s in stats
    ]


def _stats_from_json(raw: list[dict]) -> list[IterationStats]:
    return [
        IterationStats(
            iteration=int(item["iteration"]),
            changed=int(item["changed"]),
            processed=int(item["processed"]),
            pick_less=bool(item["pick_less"]),
            cross_check=bool(item["cross_check"]),
            reverted=int(item["reverted"]),
            counters=KernelCounters(**{k: int(v) for k, v in item["counters"].items()}),
        )
        for item in raw
    ]


class CheckpointManager:
    """Writes and restores iteration-boundary snapshots of one run."""

    def __init__(self, directory: str | Path, *, every: int = 1) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1; got {every}")
        self.directory = Path(directory)
        self.every = every
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Paths written by this manager instance, in order.
        self.written: list[Path] = []

    # ------------------------------------------------------------------ #

    def due(self, iteration: int) -> bool:
        """Whether the boundary after ``iteration`` completed is a snapshot point."""
        return iteration % self.every == 0

    def save(self, state: CheckpointState) -> Path:
        """Atomically persist ``state``; returns the checkpoint path."""
        meta = {
            "version": _SCHEMA_VERSION,
            "iteration": state.iteration,
            "digest": state.digest,
            "converged": state.converged,
            "injector_fires": state.injector_fires,
            "last_pl_fraction": state.last_pl_fraction,
            "stats": _stats_to_json(state.stats),
        }
        final = self.directory / f"{_PREFIX}{state.iteration:06d}{_SUFFIX}"
        tmp = self.directory / f".tmp-{os.getpid()}-{state.iteration:06d}{_SUFFIX}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    labels=state.labels,
                    flags=state.flags,
                    meta=np.array(json.dumps(meta)),
                )
            os.replace(tmp, final)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint {final}: {exc}") from exc
        self.written.append(final)
        return final

    # ------------------------------------------------------------------ #

    def checkpoints(self) -> list[Path]:
        """All well-named checkpoints in the directory, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def latest(self) -> CheckpointState | None:
        """Load the newest checkpoint, or ``None`` when the dir is empty."""
        found = self.checkpoints()
        if not found:
            return None
        return self.load(found[-1])

    @staticmethod
    def load(path: str | Path) -> CheckpointState:
        """Load one checkpoint file."""
        try:
            with np.load(path, allow_pickle=False) as data:
                labels = data["labels"].astype(VERTEX_DTYPE)
                flags = data["flags"].astype(FLAG_DTYPE)
                meta = json.loads(str(data["meta"]))
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if meta.get("version") != _SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has schema version {meta.get('version')}; "
                f"this build reads version {_SCHEMA_VERSION}"
            )
        last_pl = meta.get("last_pl_fraction")
        return CheckpointState(
            labels=labels,
            flags=flags,
            iteration=int(meta["iteration"]),
            digest=str(meta["digest"]),
            converged=bool(meta.get("converged", False)),
            stats=_stats_from_json(meta.get("stats", [])),
            injector_fires=int(meta.get("injector_fires", 0)),
            last_pl_fraction=None if last_pl is None else float(last_pl),
        )
