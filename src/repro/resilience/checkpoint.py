"""Checkpoint/resume for LPA runs.

A checkpoint is everything the driver loop needs to continue a run
bit-identically from an iteration boundary: the membership (label) vector,
the frontier's processed flags, the next iteration index, the per-iteration
statistics so far, and the supervisor's cross-iteration state (injector
fire count, last Pick-Less changed fraction).  Because the simulator is
deterministic, ``state at iteration k`` + ``same config`` =>
``bit-identical final communities`` — per-iteration state is a restartable
queue, not a monolithic pass.

Format
------
One ``ckpt-NNNNNN.npz`` per snapshot inside the checkpoint directory:
``labels`` and ``flags`` arrays plus a JSON ``meta`` blob (schema version,
run digest, iteration, convergence flag, serialized iteration stats,
supervisor state, and a CRC32 per array).

Durability
----------
Writes are crash-consistent: the snapshot goes to a temporary file in the
same directory, the temp file is fsynced *before* the atomic
:func:`os.replace`, and the directory is fsynced *after* it — so a power
loss at any instant leaves either the previous generation or the new one,
never a zero-length or torn "latest".  :meth:`CheckpointManager.load`
verifies the per-array CRC32s, so corruption that slips past the npz
container (bit rot, a torn sector) is detected instead of resumed from;
:meth:`CheckpointManager.latest` then falls back generation-by-generation
past corrupt or unreadable files rather than raising.  A ``keep=N``
retention ring prunes superseded generations after every successful save.
``repro ckpt fsck`` exposes :func:`fsck` for offline inspection.

The *run digest* binds a checkpoint to the (graph, engine, config) that
produced it; resuming against anything else raises
:class:`~repro.errors.CheckpointError` instead of silently computing
garbage.  ``max_iterations`` is deliberately excluded so a killed run can
be resumed with a different cap.
"""

from __future__ import annotations

import hashlib
import json
import os
import tokenize
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import LPAConfig
from repro.core.result import IterationStats
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
)
from repro.gpu.metrics import KernelCounters
from repro.graph.csr import CSRGraph
from repro.types import FLAG_DTYPE, VERTEX_DTYPE

__all__ = [
    "CheckpointState",
    "CheckpointManager",
    "FsckEntry",
    "fsck",
    "preflight_resume",
    "run_digest",
]

#: Bump when the on-disk schema changes incompatibly.
#: v2 adds mandatory per-array CRC32 checksums to the meta blob.
_SCHEMA_VERSION = 2

_PREFIX = "ckpt-"
_SUFFIX = ".npz"


def run_digest(graph: CSRGraph, config: LPAConfig, engine: str) -> str:
    """Fingerprint of everything that must match for a resume to be valid."""
    payload = "|".join(
        str(part)
        for part in (
            graph.num_vertices,
            graph.num_edges,
            engine,
            config.tolerance,
            config.pl_period,
            config.cc_period,
            config.switch_degree,
            config.probing.value,
            np.dtype(config.value_dtype).name,
            config.pruning,
            config.shared_memory_tables,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CheckpointState:
    """In-memory image of one checkpoint."""

    labels: np.ndarray
    flags: np.ndarray
    #: Next iteration the driver loop should execute.
    iteration: int
    digest: str
    converged: bool = False
    stats: list[IterationStats] = field(default_factory=list)
    #: Fault-injector fires so far (keeps a resumed injection budget exact).
    injector_fires: int = 0
    #: Supervisor's last Pick-Less changed fraction, if any.
    last_pl_fraction: float | None = None


def _stats_to_json(stats: list[IterationStats]) -> list[dict]:
    return [
        {
            "iteration": s.iteration,
            "changed": s.changed,
            "processed": s.processed,
            "pick_less": s.pick_less,
            "cross_check": s.cross_check,
            "reverted": s.reverted,
            "counters": s.counters.as_dict(),
        }
        for s in stats
    ]


def _stats_from_json(raw: list[dict]) -> list[IterationStats]:
    return [
        IterationStats(
            iteration=int(item["iteration"]),
            changed=int(item["changed"]),
            processed=int(item["processed"]),
            pick_less=bool(item["pick_less"]),
            cross_check=bool(item["cross_check"]),
            reverted=int(item["reverted"]),
            counters=KernelCounters(**{k: int(v) for k, v in item["counters"].items()}),
        )
        for item in raw
    ]


def _fsync_dir(directory: Path) -> None:
    """Flush directory metadata (the rename) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; nothing more we can do
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse; the data fsync already happened
    finally:
        os.close(fd)


class CheckpointManager:
    """Writes and restores iteration-boundary snapshots of one run.

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    every:
        Snapshot every this many iterations.
    keep:
        Retention ring size: after each successful save, delete all but the
        newest ``keep`` generations.  ``None`` (default) keeps everything.
    """

    def __init__(
        self, directory: str | Path, *, every: int = 1, keep: int | None = None
    ) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1; got {every}")
        if keep is not None and keep < 1:
            raise CheckpointError(f"checkpoint keep must be >= 1 or None; got {keep}")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Paths written by this manager instance, in order (pruned entries
        #: included — this is a log of writes, not a directory listing).
        self.written: list[Path] = []
        #: ``(path, reason)`` of checkpoints :meth:`latest` skipped as
        #: corrupt or unreadable, newest first.
        self.skipped: list[tuple[Path, str]] = []

    # ------------------------------------------------------------------ #

    def due(self, iteration: int) -> bool:
        """Whether the boundary after ``iteration`` completed is a snapshot point."""
        return iteration % self.every == 0

    def save(self, state: CheckpointState) -> Path:
        """Crash-consistently persist ``state``; returns the checkpoint path.

        The temp file is fsynced before the atomic rename and the directory
        is fsynced after it, so a crash at any point leaves either the
        previous generation or this one — never a torn file under the
        final name.
        """
        # Canonical on-disk dtypes, whatever the engine ran internally
        # (compact-layout runs carry int32 labels): the load-side CRC is
        # verified after widening, so the save-side CRC must cover the
        # same canonical bytes.
        labels = np.ascontiguousarray(state.labels, dtype=VERTEX_DTYPE)
        flags = np.ascontiguousarray(state.flags, dtype=FLAG_DTYPE)
        meta = {
            "version": _SCHEMA_VERSION,
            "iteration": state.iteration,
            "digest": state.digest,
            "converged": state.converged,
            "injector_fires": state.injector_fires,
            "last_pl_fraction": state.last_pl_fraction,
            "stats": _stats_to_json(state.stats),
            "crc32": {
                "labels": zlib.crc32(labels.tobytes()),
                "flags": zlib.crc32(flags.tobytes()),
            },
        }
        final = self.directory / f"{_PREFIX}{state.iteration:06d}{_SUFFIX}"
        tmp = self.directory / f".tmp-{os.getpid()}-{state.iteration:06d}{_SUFFIX}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    labels=labels,
                    flags=flags,
                    meta=np.array(json.dumps(meta)),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
            _fsync_dir(self.directory)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint {final}: {exc}") from exc
        self.written.append(final)
        self._prune(protect=final)
        return final

    def _prune(self, protect: Path) -> None:
        """Enforce the ``keep=N`` retention ring after a successful save."""
        if self.keep is None:
            return
        found = self.checkpoints()
        for stale in found[: max(0, len(found) - self.keep)]:
            if stale != protect:
                stale.unlink(missing_ok=True)
        _fsync_dir(self.directory)

    # ------------------------------------------------------------------ #

    def checkpoints(self) -> list[Path]:
        """All well-named checkpoints in the directory, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def latest(self) -> CheckpointState | None:
        """Load the newest *readable* checkpoint, or ``None`` if there is none.

        Corrupt or unreadable generations (torn write that beat the fsync,
        bit rot caught by the CRC32s, truncation) are skipped newest-first
        and recorded in :attr:`skipped` — losing one generation of progress
        beats losing the run.
        """
        self.skipped = []
        for path in reversed(self.checkpoints()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                self.skipped.append((path, str(exc)))
        return None

    @staticmethod
    def load(path: str | Path) -> CheckpointState:
        """Load and checksum-verify one checkpoint file."""
        try:
            with np.load(path, allow_pickle=False) as data:
                labels = data["labels"].astype(VERTEX_DTYPE)
                flags = data["flags"].astype(FLAG_DTYPE)
                meta = json.loads(str(data["meta"]))
        except (
            OSError,
            KeyError,
            ValueError,
            EOFError,
            SyntaxError,
            tokenize.TokenError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
        ) as exc:
            # BadZipFile and EOFError subclass Exception directly, not
            # OSError — a truncated container raises them from np.load.
            # A bit flip inside an npy member's own header escapes numpy's
            # parser as SyntaxError (ast.literal_eval) or tokenize.TokenError.
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if meta.get("version") != _SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has schema version {meta.get('version')}; "
                f"this build reads version {_SCHEMA_VERSION}"
            )
        crcs = meta.get("crc32", {})
        for name, array in (("labels", labels), ("flags", flags)):
            expected = crcs.get(name)
            actual = zlib.crc32(np.ascontiguousarray(array).tobytes())
            if expected is None or int(expected) != actual:
                raise CheckpointError(
                    f"checkpoint {path}: CRC32 mismatch on {name!r} "
                    f"(stored {expected}, computed {actual}) — corrupt snapshot"
                )
        last_pl = meta.get("last_pl_fraction")
        return CheckpointState(
            labels=labels,
            flags=flags,
            iteration=int(meta["iteration"]),
            digest=str(meta["digest"]),
            converged=bool(meta.get("converged", False)),
            stats=_stats_from_json(meta.get("stats", [])),
            injector_fires=int(meta.get("injector_fires", 0)),
            last_pl_fraction=None if last_pl is None else float(last_pl),
        )


def preflight_resume(directory: str | Path) -> CheckpointState:
    """Verify an explicit resume request *can* succeed before starting.

    ``nu_lpa``'s resume path is deliberately lenient — ``latest()`` falls
    back past corrupt generations and silently starts fresh when nothing
    is on disk, because a crash-recovering caller (the chaos harness, the
    job service) prefers recomputing to dying.  But when a *user* types
    ``--resume``, a silent fresh start hides a real problem.  This helper
    gives that case sharp edges:

    * missing directory or no ``ckpt-*.npz`` files at all →
      :class:`~repro.errors.CheckpointNotFoundError`;
    * files exist but every generation fails verification →
      :class:`~repro.errors.CheckpointCorruptError` carrying the
      per-generation reasons (newest first).

    Returns the newest readable :class:`CheckpointState` on success.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise CheckpointNotFoundError(
            f"cannot resume: checkpoint directory {directory} does not exist"
        )
    found = sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}"))
    if not found:
        raise CheckpointNotFoundError(
            f"cannot resume: no checkpoint in {directory} "
            f"(expected {_PREFIX}NNNNNN{_SUFFIX} files)"
        )
    reasons: list[str] = []
    for path in reversed(found):
        try:
            return CheckpointManager.load(path)
        except CheckpointError as exc:
            reasons.append(f"{path.name}: {exc}")
    raise CheckpointCorruptError(
        f"cannot resume: all {len(found)} checkpoint generation(s) in "
        f"{directory} are damaged (newest: {reasons[0]}); "
        f"run `repro ckpt fsck {directory}` to inspect",
        reasons=reasons,
    )


# --------------------------------------------------------------------- #
# Offline inspection (`repro ckpt fsck`)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FsckEntry:
    """Verdict on one file in a checkpoint directory."""

    path: Path
    #: ``"ok"`` | ``"corrupt"`` | ``"stale-tmp"``.
    status: str
    #: Next iteration encoded in the checkpoint (``None`` unless ``ok``).
    iteration: int | None = None
    digest: str = ""
    detail: str = ""


def fsck(directory: str | Path) -> list[FsckEntry]:
    """Verify every checkpoint (and flag stale temp files) in ``directory``.

    Returns one :class:`FsckEntry` per file, oldest first; raises
    :class:`CheckpointError` if the directory itself is missing.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise CheckpointError(f"checkpoint directory {directory} does not exist")
    entries: list[FsckEntry] = []
    for tmp in sorted(directory.glob(".tmp-*")):
        entries.append(FsckEntry(
            path=tmp, status="stale-tmp",
            detail="partial write left by an interrupted save; safe to delete",
        ))
    for path in sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}")):
        try:
            state = CheckpointManager.load(path)
        except CheckpointError as exc:
            entries.append(FsckEntry(path=path, status="corrupt", detail=str(exc)))
        else:
            entries.append(FsckEntry(
                path=path, status="ok",
                iteration=state.iteration, digest=state.digest,
                detail=f"{state.labels.shape[0]} vertices"
                       f"{', converged' if state.converged else ''}",
            ))
    return entries
