"""Configurable fault injection for the simulated GPU.

The injector wraps the :mod:`repro.gpu` primitives *from the outside*: the
engines expose a single ``fault_hook`` called at deterministic points of
every wave (see :class:`FaultContext`), and an armed injector either raises
a device-fault exception there or corrupts the flat hashtable buffers in
place, exactly where a real A100 fault would surface.

Fault classes
-------------
``overflow``
    Forced hashtable overflow: the insert path reports ``failed`` at the
    configured probe depth, raising
    :class:`~repro.errors.HashtableFullError` — the paper assumes this
    "is avoided by ensuring the hashtable has sufficient capacity"; the
    injector violates that assumption on purpose.
``bitflip``
    Flips a high bit in a sector-aligned run of occupied hashtable key
    slots (or, for the vectorized engine, of the gathered label keys), and
    optionally the exponent bit of value slots.  Key flips are either
    harmless (the corrupt key loses the max-reduce) or detected by the
    supervisor's label-range invariant; value flips model *silent* data
    corruption and are only caught when they produce non-finite values.
``cas-storm``
    A transient ``atomicCAS`` retry storm
    (:class:`~repro.errors.TransientKernelError`); clears on re-execution.
``timeout``
    The driver watchdog kills the kernel
    (:class:`~repro.errors.KernelTimeoutError`).
``sdc``
    Post-ECC silent data corruption: writes *valid-range but wrong*
    values — a label replaced by a different live label, a hashtable key
    overwritten with another plausible label, a value doubled — so every
    cheap invariant (label range, finiteness) still passes.  Models the
    ≥3-bit upsets and addressing faults that slip past SEC-DED; only the
    ABFT guards in :mod:`repro.integrity` can catch it.
``oom``
    Device memory pressure: a co-tenant (or the driver) grabs a chunk of
    global memory mid-run.  With a
    :class:`~repro.gpu.governor.MemoryGovernor` attached the injector
    deterministically *shrinks the effective budget* to half the current
    ledger total — leaving the run over budget — and raises the typed
    :class:`~repro.errors.DeviceOomError`; the supervisor's memory rungs
    (shrink tables, fall back to the table-less engine) must then free
    real ledger bytes to recover.  Without a governor the error is
    raised alone, exercising the retry path.

Determinism: whether an attempt fires, the fault class chosen, and the
corrupted slots are all derived from ``(seed, iteration, attempt)`` — a
retried attempt re-rolls, a resumed run re-derives the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeviceOomError,
    HashtableFullError,
    KernelTimeoutError,
    TransientKernelError,
)
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelKind
from repro.gpu.memory import MemoryModel
from repro.types import EMPTY_KEY

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultContext", "FaultInjector"]

#: The injectable fault classes, in canonical order.
FAULT_KINDS = ("overflow", "bitflip", "cas-storm", "timeout", "sdc", "oom")


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, how often, and with which deterministic stream."""

    #: Fault classes to draw from (uniformly) when an attempt fires.
    kinds: tuple[str, ...] = ("overflow",)
    #: Per-move-attempt probability of firing.
    rate: float = 1.0
    #: Seed of the deterministic injection stream.
    seed: int = 0
    #: Total injection budget; ``None`` = unlimited (persistent fault).
    max_fires: int | None = None
    #: Probe depth at which a forced overflow reports ``failed``.
    probe_depth: int = 8
    #: Which bit of an int64 key a ``bitflip`` toggles.  The default sits
    #: far above any realistic vertex count, so a corrupt key that wins the
    #: max-reduce is guaranteed to violate the label-range invariant.
    key_bit: int = 41
    #: Buffers a ``bitflip``/``sdc`` may target: ``"keys"``, ``"values"``,
    #: and/or (``sdc`` only) ``"labels"``.
    targets: tuple[str, ...] = ("keys",)

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown fault kinds {sorted(unknown)}; choose from {FAULT_KINDS}"
            )
        if not self.kinds:
            raise ConfigurationError("FaultSpec.kinds must not be empty")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"fault rate must be in [0, 1]; got {self.rate}")
        if self.probe_depth < 1:
            raise ConfigurationError(
                f"probe_depth must be >= 1; got {self.probe_depth}"
            )
        bad_targets = set(self.targets) - {"keys", "values", "labels"}
        if bad_targets:
            raise ConfigurationError(
                f"unknown bitflip targets {sorted(bad_targets)}"
            )


@dataclass
class FaultContext:
    """Where in a wave the engine is when it calls the fault hook.

    ``phase`` is ``"accumulate"`` (before the hashtable accumulation — the
    point where overflow/timeout/storm faults surface) or ``"reduce"``
    (after accumulation, before the max-reduce — the point where buffer
    corruption is visible to the reduction).  The vectorized engine has no
    accumulation step and calls the hook once with ``phase="reduce"``.
    """

    phase: str
    engine: str
    kernel: KernelKind
    device: DeviceSpec
    #: Vertex ids of the wave being processed.
    wave: np.ndarray
    #: The run's label vector (read-only by convention).
    labels: np.ndarray
    #: Hashtable engine: the flat key buffer.  Vectorized engine: the
    #: wave's gathered label keys.  Mutated in place by ``bitflip``.
    keys: np.ndarray | None = None
    #: Flat value buffer (hashtable engine only).
    values: np.ndarray | None = None
    #: Live-region layout of the wave's tables (hashtable engine only).
    base: np.ndarray | None = None
    p1: np.ndarray | None = None


@dataclass
class FaultInjector:
    """Deterministic fault source; engines call it via their fault hook."""

    spec: FaultSpec
    #: Injections performed so far (persisted across checkpoint/resume).
    fires: int = 0
    #: Optional :class:`~repro.gpu.governor.MemoryGovernor`: the ``oom``
    #: fault kind shrinks its effective budget (attached by the driver
    #: alongside the supervisor; ``None`` = raise the error alone).
    governor: object | None = None
    _armed: str | None = field(default=None, repr=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def arm(self, iteration: int, attempt: int) -> str | None:
        """Roll the deterministic dice for one move attempt.

        Returns the armed fault kind (or ``None``).  The supervisor calls
        this before every supervised move so that retries re-roll and a
        bounded ``max_fires`` budget eventually lets a retry through.
        """
        self._armed = None
        self._rng = None
        if self.spec.max_fires is not None and self.fires >= self.spec.max_fires:
            return None
        rng = np.random.default_rng([self.spec.seed, iteration, attempt])
        if rng.random() >= self.spec.rate:
            return None
        self._armed = self.spec.kinds[int(rng.integers(len(self.spec.kinds)))]
        self._rng = rng
        return self._armed

    def disarm(self) -> None:
        """Drop any armed fault (used when a move completes cleanly)."""
        self._armed = None
        self._rng = None

    # ------------------------------------------------------------------ #

    def __call__(self, ctx: FaultContext) -> None:
        """The engine-facing hook: fire the armed fault, if any."""
        kind = self._armed
        if kind is None:
            return
        if kind in ("bitflip", "sdc") and ctx.phase != "reduce":
            return  # wait until the buffers hold this wave's entries
        rng = self._rng
        self._armed = None
        self._rng = None
        self.fires += 1

        if kind == "timeout":
            raise KernelTimeoutError(
                f"injected: watchdog killed {ctx.kernel.value} kernel mid-wave "
                f"({ctx.wave.shape[0]} vertices resident)"
            )
        if kind == "cas-storm":
            raise TransientKernelError(
                f"injected: atomicCAS retry storm in {ctx.kernel.value} kernel"
            )
        if kind == "overflow":
            raise HashtableFullError(
                f"injected: hashtable overflow forced at probe depth "
                f"{self.spec.probe_depth} ({ctx.engine} engine, "
                f"{ctx.kernel.value} kernel)"
            )
        if kind == "oom":
            governor = self.governor
            if governor is not None:
                budget = governor.shrink_budget()
                raise DeviceOomError(
                    f"injected: device memory pressure — co-tenant "
                    f"allocation shrank the effective budget to "
                    f"{budget:,} bytes with "
                    f"{governor.in_use_bytes:,} in use "
                    f"({ctx.engine} engine, {ctx.kernel.value} kernel)",
                    in_use_bytes=governor.in_use_bytes,
                    budget_bytes=budget,
                )
            raise DeviceOomError(
                f"injected: device allocation failed mid-run "
                f"({ctx.engine} engine, {ctx.kernel.value} kernel)"
            )
        if kind == "sdc":
            self._write_sdc(ctx, rng)
            return
        self._flip_bits(ctx, rng)

    # ------------------------------------------------------------------ #

    def _write_sdc(self, ctx: FaultContext, rng: np.random.Generator | None) -> None:
        """Write valid-range-but-wrong data: the corruption no cheap
        invariant can see.

        Unlike :meth:`_flip_bits` (whose high-bit key flips violate the
        label-range check on purpose), every value written here is
        plausible — a live label, a finite positive weight — so the range
        and finiteness invariants pass and only an ABFT audit or shadow
        replay can tell the move went wrong.
        """
        if rng is None:
            return
        n = ctx.labels.shape[0]
        if n == 0:
            return
        targets = self.spec.targets

        if "labels" in targets:
            victim = int(rng.integers(n))
            current = ctx.labels[victim]
            wrong = ctx.labels[int(rng.integers(n))]
            if wrong == current:
                different = np.flatnonzero(ctx.labels != current)
                if different.shape[0]:
                    wrong = ctx.labels[different[int(rng.integers(different.shape[0]))]]
            ctx.labels[victim] = wrong

        if ctx.keys is None:
            return
        if ctx.base is not None and ctx.p1 is not None:
            flat = _live_slots(ctx.base, ctx.p1)
            occupied = flat[ctx.keys[flat] != EMPTY_KEY]
        else:
            occupied = np.arange(ctx.keys.shape[0], dtype=np.int64)
        if occupied.shape[0] == 0:
            return
        slot = int(occupied[int(rng.integers(occupied.shape[0]))])

        if "keys" in targets:
            wrong = np.int64(ctx.labels[int(rng.integers(n))])
            if wrong == ctx.keys[slot]:
                wrong = np.int64((int(wrong) + 1) % n)  # in range, maybe dead
            ctx.keys[slot] = wrong
        if "values" in targets and ctx.values is not None:
            # Double the accumulated weight: finite, positive, plausible —
            # but enough to swing the max-reduce toward the wrong label.
            ctx.values[slot] = ctx.values[slot] * 2 + 1

    def _flip_bits(self, ctx: FaultContext, rng: np.random.Generator | None) -> None:
        """Corrupt a sector-aligned run of slots in the wave's buffers."""
        if ctx.keys is None or rng is None:
            return
        if ctx.base is not None and ctx.p1 is not None:
            flat = _live_slots(ctx.base, ctx.p1)
            occupied = flat[ctx.keys[flat] != EMPTY_KEY]
        else:
            occupied = np.arange(ctx.keys.shape[0], dtype=np.int64)
        if occupied.shape[0] == 0:
            return

        mem = MemoryModel(ctx.device)
        start = int(occupied[int(rng.integers(occupied.shape[0]))])
        if "keys" in self.spec.targets:
            span = mem.slots_per_sector(ctx.keys.itemsize)
            sector_lo = (start // span) * span
            hit = occupied[(occupied >= sector_lo) & (occupied < sector_lo + span)]
            ctx.keys[hit] ^= np.int64(1) << np.int64(self.spec.key_bit)
        if "values" in self.spec.targets and ctx.values is not None:
            width = ctx.values.itemsize
            uint = np.uint32 if width == 4 else np.uint64
            exp_bit = 30 if width == 4 else 62
            view = ctx.values.view(uint)
            view[start] ^= uint(1) << uint(exp_bit)


def _live_slots(base: np.ndarray, p1: np.ndarray) -> np.ndarray:
    """Flat indices of every live slot of the wave's tables."""
    p1 = p1.astype(np.int64, copy=False)
    total = int(p1.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg = np.repeat(np.arange(base.shape[0], dtype=np.int64), p1)
    starts = np.zeros(base.shape[0], dtype=np.int64)
    np.cumsum(p1[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - starts[seg]
    return base[seg] + within
