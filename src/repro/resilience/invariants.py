"""Post-kernel invariant checks for supervised LPA moves.

Silent corruption — a flipped bit that survives the max-reduce — does not
raise; it has to be *caught*.  After every supervised move the supervisor
runs these checks against the engine's output:

* **label range** — every label lies in ``[0, |V|)``.  A corrupt key that
  wins a max-reduce lands outside the vertex-id space (the injector flips
  bit 41; real upsets hit high bits just as happily).
* **finite values** — no NaN/Inf in the fp32/fp64 hashtable value buffer.
  Accumulated edge weights are finite by construction, so a non-finite
  value proves buffer corruption.
* **Pick-Less monotonicity** — across successive Pick-Less rounds the
  changed-vertex fraction should not increase: PL only permits moves to
  *smaller* labels, so the set of vertices that can still move shrinks as
  labels settle.  This is a strong heuristic rather than a theorem, so by
  default a violation is *flagged* in the fault report instead of
  triggering the retry ladder (``ResilienceConfig.strict_pl_monotone``
  escalates it).

The first two checks are cheap relative to a move (O(|V|) and O(|E|)) and
deterministic, so a retry after a clean restore either passes them or
proves the fault persistent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantViolation

__all__ = [
    "check_label_range",
    "check_finite_values",
    "check_pl_monotone",
]


def check_label_range(labels: np.ndarray, num_vertices: int) -> None:
    """Raise :class:`InvariantViolation` unless all labels are in range."""
    if labels.shape[0] == 0:
        return
    lo = int(labels.min())
    hi = int(labels.max())
    if lo < 0 or hi >= num_vertices:
        bad = np.flatnonzero((labels < 0) | (labels >= num_vertices))
        raise InvariantViolation(
            f"label-range: {bad.shape[0]} label(s) outside [0, {num_vertices}) "
            f"(min={lo}, max={hi}, first bad vertex={int(bad[0])})"
        )


def check_finite_values(values: np.ndarray) -> None:
    """Raise :class:`InvariantViolation` if the value buffer holds NaN/Inf."""
    if values.shape[0] == 0:
        return
    if not np.isfinite(values).all():
        bad = np.flatnonzero(~np.isfinite(values))
        raise InvariantViolation(
            f"finite-values: {bad.shape[0]} non-finite hashtable value(s) "
            f"(first at slot {int(bad[0])})"
        )


def check_pl_monotone(
    previous_fraction: float | None, fraction: float, *, slack: float = 0.0
) -> str | None:
    """Return a violation description if the PL changed-fraction grew.

    ``None`` means the invariant holds (or there is no previous PL round
    to compare against).  Returning a string rather than raising lets the
    supervisor decide between flagging and escalating.
    """
    if previous_fraction is None:
        return None
    if fraction > previous_fraction + slack:
        return (
            f"pl-monotone: changed fraction rose across Pick-Less rounds "
            f"({previous_fraction:.4f} -> {fraction:.4f})"
        )
    return None
