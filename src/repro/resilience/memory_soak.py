"""The memory-pressure chaos soak: OOM storms, oversized jobs, budget shrinks.

The corruption soak attacks *truth* and the kill/restart soaks attack
*availability*; this one attacks *capacity*.  Each seeded schedule
pressures the same graph three ways and asserts every out-of-memory
event is either **absorbed by a degradation rung with valid labels** or
**rejected with a typed error** — never a silent wrong result:

1. **live** — ``"oom"`` device faults fire mid-run under a tight memory
   budget; every fire shrinks the modelled budget and raises a typed
   :class:`~repro.errors.DeviceOomError`, which the supervisor must
   absorb through its memory rungs (table shrink → retry → fallback).
2. **admission** — a :class:`~repro.service.DetectionService` with a
   budget *below* the job's analytic footprint must refuse the
   submission with a typed :class:`~repro.errors.MemoryPressure`
   carrying both sides of the comparison, instead of admitting a
   guaranteed OOM.
3. **shrink** — a single injected OOM mid-run under a *generous* budget:
   the fire halves the effective budget, and the rest of the run must
   live inside the shrunken ceiling or degrade loudly.

Every schedule also **reconciles** the allocation ledger against the
analytic estimator: a clean governed run's high-water mark must stay
inside the estimator's band — at least the exact-size regions
(CSR + labels + hashtables, which the estimator prices to the byte)
and at most :func:`~repro.gpu.governor.footprint_for`'s total plus
:data:`~repro.gpu.governor.ESTIMATE_TOLERANCE`.  The estimator is an
*admission upper bound*: the arena component is deliberately
conservative, so actual usage below the total is safe headroom, while
usage **above** it would mean admission control under-prices jobs —
the dangerous direction, and the one the tolerance bounds.

``benchmarks/bench_memory_soak.py`` runs ≥ 20 schedules and writes the
report as the ``BENCH_memory_soak.json`` CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import DeviceOomError, MemoryPressure, ReproError
from repro.gpu.governor import ESTIMATE_TOLERANCE, footprint_for
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultSpec

__all__ = [
    "MemorySoakRecord",
    "MemorySoakReport",
    "run_memory_soak",
]


def _valid_labels(labels, graph: CSRGraph) -> bool:
    """Structural validity: one in-range label per vertex."""
    if labels is None:
        return False
    arr = np.asarray(labels)
    return (
        arr.shape == (graph.num_vertices,)
        and (graph.num_vertices == 0
             or (int(arr.min()) >= 0 and int(arr.max()) < graph.num_vertices))
    )


@dataclass
class MemorySoakRecord:
    """Outcome of one seeded memory-pressure schedule (three legs)."""

    seed: int
    #: Live leg: injected-OOM storm under a tight budget.
    live_ooms: int
    live_absorbed: bool
    live_valid: bool
    live_identical: bool
    #: Admission leg: oversized job vs the service's analytic estimate.
    admission_rejected: bool
    admission_estimate_bytes: int
    admission_budget_bytes: int
    #: Shrink leg: one mid-run budget shrink under a generous budget.
    shrink_ooms: int
    shrink_absorbed: bool
    shrink_valid: bool
    #: Ledger-vs-estimator reconciliation of a clean governed run.
    #: ``deviation`` is one-sided: how far the ledger left the
    #: estimator's band (overrun past the total, or shortfall below the
    #: exact-size regions), as a fraction of the estimate.  A high-water
    #: mark anywhere inside the band is deviation 0.0 — the estimator is
    #: an admission *upper bound*, so headroom under it is by design.
    reconcile_estimate_bytes: int
    reconcile_high_water_bytes: int
    reconcile_deviation: float
    #: Raw high-water / estimate ratio, for observability (how much of
    #: the conservative estimate a real run actually used).
    reconcile_utilization: float
    #: A governed run that never left the "full" rung must be
    #: bit-identical to the unconstrained reference.
    reconcile_identical: bool = True
    #: Governor stats of the live run (ledger counters, rungs).
    memory: dict = field(default_factory=dict)

    @property
    def reconcile_within_tolerance(self) -> bool:
        return self.reconcile_deviation <= ESTIMATE_TOLERANCE

    @property
    def silent(self) -> int:
        """Pressure events that corrupted the answer without any signal."""
        count = 0
        if self.live_absorbed and not self.live_valid:
            count += 1
        if self.shrink_absorbed and not self.shrink_valid:
            count += 1
        return count

    @property
    def ok(self) -> bool:
        """Absorbed-with-valid-labels or typed rejection, on every leg."""
        live_ok = self.live_valid if self.live_absorbed else True
        shrink_ok = self.shrink_valid if self.shrink_absorbed else True
        return (
            live_ok
            and shrink_ok
            and self.admission_rejected
            and self.reconcile_within_tolerance
            and self.reconcile_identical
        )

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "silent": self.silent,
            "live": {
                "ooms": self.live_ooms,
                "absorbed": self.live_absorbed,
                "valid": self.live_valid,
                "identical": self.live_identical,
            },
            "admission": {
                "rejected": self.admission_rejected,
                "estimate_bytes": self.admission_estimate_bytes,
                "budget_bytes": self.admission_budget_bytes,
            },
            "shrink": {
                "ooms": self.shrink_ooms,
                "absorbed": self.shrink_absorbed,
                "valid": self.shrink_valid,
            },
            "reconcile": {
                "estimate_bytes": self.reconcile_estimate_bytes,
                "high_water_bytes": self.reconcile_high_water_bytes,
                "deviation": self.reconcile_deviation,
                "utilization": self.reconcile_utilization,
                "within_tolerance": self.reconcile_within_tolerance,
                "identical": self.reconcile_identical,
            },
            "memory": dict(self.memory),
        }


@dataclass
class MemorySoakReport:
    """All schedules of one memory-pressure soak."""

    engine: str
    num_vertices: int
    num_edges: int
    records: list[MemorySoakRecord] = field(default_factory=list)

    @property
    def silent(self) -> int:
        """Total silent wrong answers across every schedule (must be 0)."""
        return sum(r.silent for r in self.records)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records) and self.silent == 0

    def summary(self) -> str:
        """One-line digest."""
        ooms = sum(r.live_ooms + r.shrink_ooms for r in self.records)
        rejected = sum(r.admission_rejected for r in self.records)
        wrong = sum(not r.ok for r in self.records)
        return (
            f"{len(self.records)} schedule(s): {ooms} OOM(s) absorbed, "
            f"{rejected} typed rejection(s), {self.silent} silent, "
            f"{wrong} wrong"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (the CI artifact body)."""
        return {
            "schema": "repro.observe/memory-soak",
            "version": 1,
            "engine": self.engine,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_seeds": len(self.records),
            "ok": self.ok,
            "silent": self.silent,
            "tolerance": ESTIMATE_TOLERANCE,
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
        }


# --------------------------------------------------------------------- #


def _count_ooms(result) -> int:
    return sum(
        1 for ev in result.fault_events if ev.fault == "DeviceOomError"
    )


def _run_live(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    reference: np.ndarray,
    footprint: int,
    rng: np.random.Generator,
) -> tuple[int, bool, bool, bool, dict]:
    """Leg 1: an OOM storm under a tight (but feasible) budget."""
    spec = FaultSpec(
        kinds=("oom",),
        rate=float(rng.uniform(0.2, 0.7)),
        seed=int(rng.integers(0, 2**31)),
        max_fires=int(rng.integers(1, 4)),
    )
    cfg = config.with_(
        # Tight: real headroom above the analytic estimate, so the run
        # starts, but every injected shrink bites.
        memory_budget_bytes=int(footprint * float(rng.uniform(1.2, 2.0))),
    )
    try:
        result = nu_lpa(
            graph, cfg, engine=engine, warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec, max_retries=8),
        )
    except DeviceOomError:
        # Every rung exhausted: a *typed* refusal, which the contract
        # allows — just never a silent wrong answer.
        return (spec.max_fires, False, True, False, {})
    return (
        _count_ooms(result),
        True,
        _valid_labels(result.labels, graph),
        bool(np.array_equal(result.labels, reference)),
        result.memory or {},
    )


def _run_admission(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    footprint: int,
    seed: int,
) -> tuple[bool, int, int]:
    """Leg 2: an oversized job must bounce off admission control."""
    from repro.service.service import DetectionService, ServiceConfig

    service = DetectionService(ServiceConfig(
        lpa=config,
        memory_budget_bytes=max(1, footprint // 2),
    ))
    try:
        service.submit_graph(graph, f"memsoak-{seed}", engine=engine)
    except MemoryPressure as exc:
        return (True, int(exc.estimate_bytes), int(exc.budget_bytes))
    return (False, footprint, max(1, footprint // 2))


def _run_shrink(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    footprint: int,
    rng: np.random.Generator,
) -> tuple[int, bool, bool]:
    """Leg 3: a single mid-run budget shrink under a generous budget."""
    spec = FaultSpec(
        kinds=("oom",),
        rate=float(rng.uniform(0.1, 0.4)),
        seed=int(rng.integers(0, 2**31)),
        max_fires=1,
    )
    cfg = config.with_(memory_budget_bytes=int(footprint * 4))
    try:
        result = nu_lpa(
            graph, cfg, engine=engine, warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec, max_retries=8),
        )
    except DeviceOomError:
        return (1, False, True)
    return (
        _count_ooms(result),
        True,
        _valid_labels(result.labels, graph),
    )


def _run_reconcile(
    graph: CSRGraph,
    config: LPAConfig,
    engine: str,
    estimate: dict,
    reference: np.ndarray,
) -> tuple[int, int, float, float, bool]:
    """A clean governed run: ledger high-water vs the analytic estimate.

    No pressure, no faults, no rung below "full" — so the governor must
    be invisible: labels bit-identical to the unconstrained reference,
    and the ledger's high-water mark inside the estimator's band.  The
    band's floor is the exact-size regions (CSR + labels + hashtables,
    priced to the byte — below it the ledger failed to meter the run);
    its ceiling is the estimate's total (above it admission control
    under-prices jobs, the unsafe direction).  ``deviation`` is the
    one-sided distance outside that band as a fraction of the total.
    """
    total = int(estimate["total"])
    floor = int(estimate["csr"] + estimate["labels"] + estimate["hashtable"])
    cfg = config.with_(memory_budget_bytes=total * 4)
    result = nu_lpa(graph, cfg, engine=engine, warn_on_no_convergence=False)
    high_water = int((result.memory or {}).get("high_water_bytes", 0))
    overrun = max(0, high_water - total)
    shortfall = max(0, floor - high_water)
    deviation = max(overrun, shortfall) / max(1, total)
    return (
        total,
        high_water,
        float(deviation),
        float(high_water / max(1, total)),
        bool(np.array_equal(result.labels, reference)),
    )


def run_memory_soak(
    graph: CSRGraph,
    *,
    seeds: int = 20,
    seed: int = 0,
    engine: str = "hashtable",
    config: LPAConfig | None = None,
) -> MemorySoakReport:
    """Run ``seeds`` memory-pressure schedules against ``graph``.

    Schedule *i* derives every random choice from
    ``default_rng([seed, i])``, so any failure replays in isolation.
    """
    config = config or LPAConfig()
    report = MemorySoakReport(
        engine=engine,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
    estimate = footprint_for(
        graph, config, engine=engine, integrity=False, checkpointing=False,
    )
    footprint = int(estimate["total"])
    # The pressure-free reference the live leg compares against.
    try:
        reference = nu_lpa(
            graph, config, engine=engine, warn_on_no_convergence=False,
        ).labels
    except ReproError:  # pragma: no cover - reference must not fail
        raise
    for i in range(seeds):
        rng = np.random.default_rng([seed, i])
        live_ooms, live_abs, live_valid, live_id, memory = _run_live(
            graph, config, engine, reference, footprint, rng
        )
        adm_rej, adm_est, adm_budget = _run_admission(
            graph, config, engine, footprint, seed + i
        )
        shr_ooms, shr_abs, shr_valid = _run_shrink(
            graph, config, engine, footprint, rng
        )
        rec_est, rec_hw, rec_dev, rec_util, rec_id = _run_reconcile(
            graph, config, engine, estimate, reference
        )
        report.records.append(MemorySoakRecord(
            seed=seed + i,
            live_ooms=live_ooms,
            live_absorbed=live_abs,
            live_valid=live_valid,
            live_identical=live_id,
            admission_rejected=adm_rej,
            admission_estimate_bytes=adm_est,
            admission_budget_bytes=adm_budget,
            shrink_ooms=shr_ooms,
            shrink_absorbed=shr_abs,
            shrink_valid=shr_valid,
            reconcile_estimate_bytes=rec_est,
            reconcile_high_water_bytes=rec_hw,
            reconcile_deviation=rec_dev,
            reconcile_utilization=rec_util,
            reconcile_identical=rec_id,
            memory=memory,
        ))
    return report
