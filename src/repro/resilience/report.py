"""Structured fault records produced by the kernel supervisor.

Every fault the supervisor observes — an injected or genuine exception, or
an invariant check tripping on a kernel's output — becomes one
:class:`FaultEvent` stating what failed and which rung of the degradation
ladder handled it.  A :class:`FaultReport` aggregates the events of one run
(or, on abort, of the iteration that exhausted the ladder) so operators and
tests can ask "what happened" without parsing log text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    HashtableFullError,
    InvariantViolation,
    KernelTimeoutError,
    TransientKernelError,
)
from repro.gpu.kernel import LaunchStatus

__all__ = ["FaultEvent", "FaultReport", "classify_fault"]

#: Ladder actions, in descending order of preference.
ACTIONS = ("retry", "regrow", "fallback", "flagged", "abort")


def classify_fault(exc: BaseException) -> LaunchStatus:
    """Map a supervised exception to the launch status it implies."""
    if isinstance(exc, KernelTimeoutError):
        return LaunchStatus.TIMEOUT
    if isinstance(exc, InvariantViolation):
        return LaunchStatus.CORRUPTED
    if isinstance(exc, (HashtableFullError, TransientKernelError)):
        return LaunchStatus.FAULTED
    return LaunchStatus.FAULTED


@dataclass(frozen=True)
class FaultEvent:
    """One fault observation and the supervisor's response to it."""

    #: LPA iteration during which the fault surfaced.
    iteration: int
    #: Which attempt of that iteration's move failed (0 = first try).
    attempt: int
    #: Exception class name, or the invariant tag for flagged checks.
    fault: str
    #: Human-readable detail (exception message / check description).
    detail: str
    #: Ladder rung taken: ``retry``, ``regrow``, ``fallback``, ``flagged``
    #: (recorded without intervention), or ``abort``.
    action: str
    #: Name of the engine whose move failed.
    engine: str
    #: Launch status the fault implies.
    status: LaunchStatus
    #: Backoff applied before the next attempt, in seconds.
    backoff_s: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"iter {self.iteration} attempt {self.attempt}: {self.fault} "
            f"-> {self.action} ({self.detail})"
        )


@dataclass
class FaultReport:
    """All fault events of a supervised run, with aggregation helpers."""

    events: list[FaultEvent] = field(default_factory=list)
    #: Iteration at which the run aborted; ``None`` if it survived.
    aborted_at: int | None = None
    #: Primary engine of the supervised run.
    engine: str = ""

    def append(self, event: FaultEvent) -> None:
        """Record one event."""
        self.events.append(event)

    def by_action(self) -> dict[str, int]:
        """Event counts keyed by ladder action."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.action] = counts.get(ev.action, 0) + 1
        return counts

    def by_fault(self) -> dict[str, int]:
        """Event counts keyed by fault class."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.fault] = counts.get(ev.fault, 0) + 1
        return counts

    @property
    def degraded_iterations(self) -> set[int]:
        """Iterations that were completed by the fallback engine."""
        return {ev.iteration for ev in self.events if ev.action == "fallback"}

    def summary(self) -> str:
        """One-line digest for logs and the CLI."""
        if not self.events:
            return "no faults observed"
        actions = ", ".join(
            f"{name}={count}" for name, count in sorted(self.by_action().items())
        )
        tail = f"; aborted at iteration {self.aborted_at}" if self.aborted_at is not None else ""
        return f"{len(self.events)} fault event(s): {actions}{tail}"
