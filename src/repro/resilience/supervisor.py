"""The kernel supervisor: every supervised ``lpaMove`` flows through here.

One :meth:`KernelSupervisor.move` call is one *supervised* iteration: the
pre-move state (labels + frontier flags) is snapshotted, the engine runs,
and the output is validated against the invariants in
:mod:`repro.resilience.invariants`.  Any device fault or invariant failure
restores the snapshot and descends the degradation ladder:

1. **retry** the move with exponential backoff (transient faults — CAS
   storms, watchdog timeouts, one-shot corruption — clear on re-run);
2. **regrow** the per-vertex hashtables to the next power of two
   (:meth:`~repro.core.engine_hashtable.HashtableEngine.grow_tables`) —
   rebuilding the flat buffers both fixes genuine capacity overflow and
   scrubs persistent buffer corruption, like an ECC scrub cycle;
3. **fall back** to a fresh, unsupervised
   :class:`~repro.core.engine_vectorized.VectorizedEngine` for the
   affected move (the fallback engine has no fault hook, so injected
   faults cannot reach it);
4. **abort** with :class:`~repro.errors.ResilienceExhaustedError` carrying
   a structured :class:`~repro.resilience.report.FaultReport`.

A memory-specific rung sits in front of the ladder: when a typed
:class:`~repro.errors.DeviceOomError` leaves the wired
:class:`~repro.gpu.governor.MemoryGovernor` over budget, **shrink-tables**
rungs halve the hashtable ``capacity_scale`` (floor 1) until the ledger
fits again and the move is re-attempted without consuming a retry.  The
fallback rung also releases the supervised engine's ledger regions and
runs unmetered, so an OOM storm is always absorbed rather than aborted.

Because every rung restarts from the restored snapshot, a fault-free rung
produces exactly the move an unfaulted engine would have produced — which
is what makes "forced overflow every iteration" converge to the same
communities as a clean vectorized run (see ``tests/resilience``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.engine_vectorized import VectorizedEngine
from repro.core.pruning import Frontier
from repro.errors import (
    DeviceOomError,
    HashtableFullError,
    InvariantViolation,
    KernelLaunchError,
    KernelTimeoutError,
    ResilienceExhaustedError,
    TransientKernelError,
)
from repro.gpu.kernel import LaunchStatus
from repro.graph.csr import CSRGraph
from repro.observe.trace import FaultRungEvent
from repro.resilience.faults import FaultInjector
from repro.resilience.invariants import (
    check_finite_values,
    check_label_range,
    check_pl_monotone,
)
from repro.resilience.report import FaultEvent, FaultReport, classify_fault

__all__ = ["KernelSupervisor", "SUPERVISED_FAULTS"]

#: Exception classes the ladder handles; anything else propagates (it is a
#: programming error, not a device fault).
SUPERVISED_FAULTS = (
    HashtableFullError,
    KernelTimeoutError,
    TransientKernelError,
    KernelLaunchError,
    InvariantViolation,
)


class KernelSupervisor:
    """Wraps an engine's ``move`` with checks, retries, and fallback."""

    def __init__(
        self,
        engine,
        graph: CSRGraph,
        config: LPAConfig,
        resilience: ResilienceConfig,
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.config = config
        self.resilience = resilience
        self.report = FaultReport(engine=engine.name)
        self.injector: FaultInjector | None = None
        if resilience.faults is not None:
            self.injector = FaultInjector(resilience.faults)
            engine.fault_hook = self.injector
        self._fallback: VectorizedEngine | None = None
        #: Changed fraction of the last completed Pick-Less round.
        self.last_pl_fraction: float | None = None
        #: Optional :class:`~repro.integrity.guard.IntegrityGuard` run on
        #: every accepted move (wired by the driver; ``None`` = no ABFT).
        self.guard = None
        #: Optional :class:`~repro.gpu.governor.MemoryGovernor` (wired by
        #: the driver).  When a :class:`~repro.errors.DeviceOomError`
        #: leaves the ledger over budget, the ladder inserts
        #: ``shrink-tables`` rungs — halving the hashtable
        #: ``capacity_scale`` down to its floor of 1 — before retrying.
        self.governor = None

    # ------------------------------------------------------------------ #

    @property
    def events(self) -> list[FaultEvent]:
        """All fault events recorded so far."""
        return self.report.events

    def restore_state(self, *, injector_fires: int, last_pl_fraction: float | None) -> None:
        """Reinstate cross-iteration supervisor state from a checkpoint."""
        if self.injector is not None:
            self.injector.fires = injector_fires
        self.last_pl_fraction = last_pl_fraction

    # ------------------------------------------------------------------ #

    def move(
        self,
        labels: np.ndarray,
        frontier: Frontier,
        *,
        pick_less: bool,
        iteration: int,
    ):
        """One supervised ``lpaMove``; returns the engine's ``MoveOutcome``."""
        snapshot_labels = labels.copy()
        snapshot_flags = frontier.flags.copy()

        def restore() -> None:
            labels[:] = snapshot_labels
            frontier.flags[:] = snapshot_flags

        attempt = 0
        regrown = False
        while True:
            if self.injector is not None:
                self.injector.arm(iteration, attempt)
            try:
                outcome = self.engine.move(
                    labels, frontier, pick_less=pick_less, iteration=iteration
                )
                self._validate(labels, self.engine, pick_less, iteration)
                if self.guard is not None:
                    # ABFT audits run inside the try block so a detection
                    # (IntegrityError/EccError) restores the snapshot and
                    # descends the same ladder as any device fault.
                    self.guard.validate_move(
                        labels, self.engine,
                        snapshot_labels=snapshot_labels,
                        snapshot_flags=snapshot_flags,
                        pick_less=pick_less,
                        iteration=iteration,
                    )
            except SUPERVISED_FAULTS as exc:
                restore()
                if self.injector is not None:
                    self.injector.disarm()
                if self._shrink_for_oom(exc, iteration, attempt):
                    # The shrink rungs freed device memory without
                    # consuming a retry: re-attempt the move at the same
                    # attempt number (the capacity-scale floor of 1
                    # bounds how often this branch can fire).
                    continue
                if attempt < self.resilience.max_retries:
                    backoff = self._backoff(attempt)
                    self._record(iteration, attempt, exc, "retry", backoff)
                    attempt += 1
                    continue
                if (
                    not regrown
                    and self.resilience.allow_regrow
                    and isinstance(exc, (HashtableFullError, InvariantViolation))
                    and hasattr(self.engine, "grow_tables")
                ):
                    self._record(iteration, attempt, exc, "regrow", 0.0)
                    self.engine.grow_tables()
                    regrown = True
                    attempt += 1
                    continue
                return self._fall_back(
                    labels, frontier, restore, exc,
                    pick_less=pick_less, iteration=iteration, attempt=attempt,
                )
            else:
                self._note_pick_less(pick_less, outcome, iteration)
                return outcome

    # ------------------------------------------------------------------ #

    def _shrink_for_oom(self, exc: BaseException, iteration: int, attempt: int) -> bool:
        """Memory rung: halve the hashtable ``capacity_scale`` until the
        ledger fits the (possibly fault-shrunken) budget again.

        Only fires for :class:`DeviceOomError` when a governor is wired
        and reports ``over_budget()``.  Each halving is recorded as a
        ``shrink-tables`` rung; returns ``True`` if at least one fired so
        the caller re-attempts the move with the smaller tables.
        """
        if (
            not isinstance(exc, DeviceOomError)
            or self.governor is None
            or not hasattr(self.engine, "shrink_tables")
        ):
            return False
        shrunk = False
        while (
            self.governor.over_budget()
            and getattr(getattr(self.engine, "tables", None), "capacity_scale", 1) > 1
        ):
            self._record(iteration, attempt, exc, "shrink-tables", 0.0)
            self.engine.shrink_tables()
            shrunk = True
        return shrunk

    def _fall_back(
        self,
        labels: np.ndarray,
        frontier: Frontier,
        restore,
        cause: BaseException,
        *,
        pick_less: bool,
        iteration: int,
        attempt: int,
    ):
        """Ladder rung 3: recompute the move on the unsupervised fallback."""
        if not self.resilience.allow_fallback:
            return self._abort(iteration, attempt, cause)
        self._record(iteration, attempt, cause, "fallback", 0.0)
        if self._fallback is None:
            # Return the supervised engine's device regions (hashtables,
            # arena high-water charges) to the governor before standing
            # up the fallback: the fallback engine is deliberately
            # unmetered — just as it has no fault hook, modeled memory
            # pressure cannot reach it, which is what makes this rung a
            # guaranteed absorber for injected OOM storms.
            release = getattr(self.engine, "release_memory", None)
            if release is not None and self.governor is not None:
                release()
            self._fallback = VectorizedEngine(self.graph, self.config)
        # The fallback move belongs to the same run: route its kernel/wave
        # events into the supervised engine's tracer (if any) so the trace
        # shows which iterations were completed by the degraded path.
        self._fallback.tracer = getattr(self.engine, "tracer", None)
        try:
            outcome = self._fallback.move(
                labels, frontier, pick_less=pick_less, iteration=iteration
            )
            check_label_range(labels, self.graph.num_vertices)
        except SUPERVISED_FAULTS as exc:
            restore()
            return self._abort(iteration, attempt + 1, exc)
        self._note_pick_less(pick_less, outcome, iteration)
        return outcome

    def _abort(self, iteration: int, attempt: int, cause: BaseException):
        self._record(iteration, attempt, cause, "abort", 0.0)
        self.report.aborted_at = iteration
        raise ResilienceExhaustedError(
            f"degradation ladder exhausted at iteration {iteration}: "
            f"{type(cause).__name__}: {cause} ({self.report.summary()})",
            report=self.report,
        ) from cause

    # ------------------------------------------------------------------ #

    def _validate(self, labels, engine, pick_less: bool, iteration: int) -> None:
        """Hard invariants; raises :class:`InvariantViolation` on failure."""
        if not self.resilience.validate_invariants:
            return
        check_label_range(labels, self.graph.num_vertices)
        tables = getattr(engine, "tables", None)
        if tables is not None and self.resilience.deep_checks:
            check_finite_values(tables.values)

    def _note_pick_less(self, pick_less: bool, outcome, iteration: int) -> None:
        """Track the PL changed-fraction invariant on successful moves."""
        n = self.graph.num_vertices
        if not pick_less or n == 0:
            return
        fraction = outcome.changed / n
        message = check_pl_monotone(self.last_pl_fraction, fraction)
        if message is not None:
            if self.resilience.strict_pl_monotone:
                self.last_pl_fraction = fraction
                raise InvariantViolation(message)
            self.report.append(
                FaultEvent(
                    iteration=iteration,
                    attempt=0,
                    fault="pl-monotone",
                    detail=message,
                    action="flagged",
                    engine=self.engine.name,
                    status=LaunchStatus.COMPLETED,
                )
            )
        self.last_pl_fraction = fraction

    # ------------------------------------------------------------------ #

    def _backoff(self, attempt: int) -> float:
        delay = self.resilience.backoff_base_s * (2.0 ** attempt)
        if delay > 0:
            time.sleep(delay)
        return delay

    def _record(
        self,
        iteration: int,
        attempt: int,
        exc: BaseException,
        action: str,
        backoff: float,
    ) -> None:
        self.report.append(
            FaultEvent(
                iteration=iteration,
                attempt=attempt,
                fault=type(exc).__name__,
                detail=str(exc),
                action=action,
                engine=self.engine.name,
                status=classify_fault(exc),
                backoff_s=backoff,
            )
        )
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.emit(FaultRungEvent(
                iteration=iteration,
                attempt=attempt,
                fault=type(exc).__name__,
                action=action,
            ))
