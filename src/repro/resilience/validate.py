"""Input validation & repair: the ingestion gate of the hardening layer.

The paper's fp32 hashtable values make weight hygiene load-bearing: a
single NaN edge weight poisons every scored-label accumulation it touches,
an Inf weight saturates them, and a negative weight silently inverts the
max-reduce's preference — none of which any kernel detects.  Structural
defects (non-monotone offsets, out-of-range neighbour ids, duplicate arcs,
asymmetric arcs in a nominally undirected graph) are equally silent and
strictly worse: they corrupt memory accounting and determinism, not just
quality.

:func:`validate_graph` sweeps a :class:`~repro.graph.csr.CSRGraph` for
both defect families and applies one of three policies:

``strict``
    Report every issue, then raise
    :class:`~repro.errors.GraphValidationError` if any *error*-severity
    issue was found.  The exception carries the full
    :class:`ValidationReport`.
``repair``
    Fix what has a value-preserving fix — NaN weights become the default
    weight 1.0, overflowing/Inf weights clamp to the fp32 maximum,
    negative weights clamp to 0, duplicate arcs merge (``max``, matching
    the build pipeline), missing reverse arcs are added, weight-asymmetric
    pairs take the pair maximum — and return the repaired graph.
``quarantine``
    Drop every offending arc instead of rewriting it (out-of-range
    targets, invalid weights, duplicate extras, unmatched arcs) and return
    the cleaned graph.  The report records how many arcs were quarantined.

Degenerate shapes (empty graph, isolated vertices) and fp32 accumulation
overflow (per-vertex weighted degree exceeding the fp32 maximum — the
scored-labels table saturates even though every individual weight is
finite) are *info*/*warning* issues: always reported, never fatal.

Every sweep returns a machine-readable :class:`ValidationReport`
(``as_dict()`` serialises to JSON without custom encoders), which
:func:`~repro.core.lpa.nu_lpa` attaches as ``result.validation`` and the
CLI prints with ``--validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, GraphValidationError
from repro.graph.build import coo_to_csr
from repro.graph.csr import CSRGraph, structural_issues
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "POLICIES",
    "FP32_MAX",
    "ValidationIssue",
    "ValidationReport",
    "WeightDefects",
    "check_policy",
    "classify_weights",
    "repair_weight_values",
    "validate_graph",
]

#: Validation policies, in increasing order of permissiveness.
POLICIES = ("strict", "repair", "quarantine")

#: Largest finite fp32 value; weights beyond it overflow the paper's
#: hashtable value dtype.
FP32_MAX = float(np.finfo(np.float32).max)

#: Issue severities: ``error`` fails ``strict``; ``warning``/``info`` never do.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class ValidationIssue:
    """One defect class found by a validation sweep."""

    #: Stable machine-readable code, e.g. ``"nan-weight"``.
    code: str
    #: ``"error"`` | ``"warning"`` | ``"info"``.
    severity: str
    #: How many arcs/vertices/rows exhibit the defect.
    count: int
    #: Human-readable description of the defect.
    detail: str
    #: What the policy did: ``"reported"``, ``"repaired"``, ``"quarantined"``.
    action: str = "reported"

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "severity": self.severity,
            "count": self.count,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass
class ValidationReport:
    """Machine-readable outcome of one validation sweep."""

    policy: str
    num_vertices: int = 0
    #: Directed arcs before / after the sweep (differ when arcs were dropped
    #: or reverse arcs added).
    arcs_in: int = 0
    arcs_out: int = 0
    #: Arcs whose weight was rewritten or whose reverse was synthesised.
    repaired_arcs: int = 0
    #: Arcs dropped by the ``quarantine`` policy (or unrecoverable arcs
    #: dropped under ``repair``, e.g. out-of-range targets).
    quarantined_arcs: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    def append(self, issue: ValidationIssue) -> None:
        """Record one issue."""
        self.issues.append(issue)

    @property
    def errors(self) -> list[ValidationIssue]:
        """Issues of ``error`` severity."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def unresolved_errors(self) -> list[ValidationIssue]:
        """Error issues the policy did not repair or quarantine."""
        return [i for i in self.errors if i.action == "reported"]

    @property
    def ok(self) -> bool:
        """Whether the (possibly repaired) graph is safe to run."""
        return not self.unresolved_errors

    @property
    def modified(self) -> bool:
        """Whether the sweep produced a different graph than it was given."""
        return self.repaired_arcs > 0 or self.arcs_in != self.arcs_out

    def by_code(self) -> dict[str, int]:
        """Defect counts keyed by issue code."""
        return {i.code: i.count for i in self.issues}

    def summary(self) -> str:
        """One-line digest for logs and the CLI."""
        if not self.issues:
            return f"clean ({self.policy}): {self.arcs_in} arcs, no issues"
        parts = ", ".join(f"{i.code}={i.count}[{i.action}]" for i in self.issues)
        delta = ""
        if self.modified:
            delta = (f"; arcs {self.arcs_in} -> {self.arcs_out}, "
                     f"{self.repaired_arcs} repaired, "
                     f"{self.quarantined_arcs} quarantined")
        return f"{self.policy}: {parts}{delta}"

    def as_dict(self) -> dict:
        """JSON-ready representation of the whole report."""
        return {
            "policy": self.policy,
            "ok": self.ok,
            "num_vertices": self.num_vertices,
            "arcs_in": self.arcs_in,
            "arcs_out": self.arcs_out,
            "repaired_arcs": self.repaired_arcs,
            "quarantined_arcs": self.quarantined_arcs,
            "issues": [i.as_dict() for i in self.issues],
        }


# --------------------------------------------------------------------- #
# Weight hygiene (shared with the file readers)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WeightDefects:
    """Boolean masks over a weight array, one per defect class."""

    nan: np.ndarray
    #: +Inf or a finite value that would overflow fp32.
    overflow: np.ndarray
    #: Strictly negative, including -Inf.
    negative: np.ndarray

    @property
    def any_mask(self) -> np.ndarray:
        """Union of all defect masks."""
        return self.nan | self.overflow | self.negative

    @property
    def total(self) -> int:
        """Number of defective entries."""
        return int(np.count_nonzero(self.any_mask))


def classify_weights(w: np.ndarray) -> WeightDefects:
    """Classify every weight as NaN / fp32-overflowing / negative.

    Works on float64 arrays (file readers, pre-cast: finite values beyond
    the fp32 range count as overflow) as well as on a graph's own float32
    weights (where overflow already shows up as +Inf).
    """
    w = np.asarray(w)
    nan = np.isnan(w)
    overflow = (w > FP32_MAX) & ~nan
    negative = (w < 0) & ~nan
    return WeightDefects(nan=nan, overflow=overflow, negative=negative)


def repair_weight_values(
    w: np.ndarray, defects: WeightDefects | None = None
) -> tuple[np.ndarray, int]:
    """Return a repaired copy of ``w`` and the number of entries rewritten.

    NaN becomes the library's default weight 1.0, overflowing/+Inf values
    clamp to the fp32 maximum, and negative values (including -Inf) clamp
    to 0 — a zero-weight arc contributes nothing to any label score, which
    is the least surprising reading of a nonsensical weight.
    """
    if defects is None:
        defects = classify_weights(w)
    fixed = np.array(w, copy=True)
    fixed[defects.nan] = 1.0
    fixed[defects.overflow] = FP32_MAX
    fixed[defects.negative] = 0.0
    return fixed, defects.total


# --------------------------------------------------------------------- #
# The sweep
# --------------------------------------------------------------------- #


def check_policy(policy: str) -> None:
    """Raise :class:`ConfigurationError` unless ``policy`` is one of
    :data:`POLICIES`.  Shared with the delta-batch validation in
    :mod:`repro.stream.delta`, which applies the same three policies to
    streamed mutations."""
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown validation policy {policy!r}; choose from {POLICIES}"
        )


#: Backwards-compatible private alias.
_check_policy = check_policy


_UNRECOVERABLE = {
    "bad-offsets-shape",
    "bad-offsets-origin",
    "nonmonotone-offsets",
    "bad-targets-shape",
    "offsets-targets-mismatch",
    "weights-targets-mismatch",
}


def validate_graph(
    graph: CSRGraph,
    policy: str = "strict",
    *,
    undirected: bool = True,
) -> tuple[CSRGraph, ValidationReport]:
    """Sweep ``graph`` for structural and numeric defects under ``policy``.

    Returns ``(graph, report)``; under ``repair``/``quarantine`` the
    returned graph is a rebuilt, cleaned instance whenever anything had to
    change (otherwise the input object itself).  Under ``strict`` any
    error-severity issue raises :class:`GraphValidationError` carrying the
    report; defects no policy can fix (a non-monotone offsets array has no
    unambiguous reading) raise under every policy.

    ``undirected=False`` skips the symmetry checks for callers validating
    a directed intermediate before reverse arcs are added.
    """
    _check_policy(policy)
    report = ValidationReport(policy=policy)

    # ---- structural gate ------------------------------------------------
    raw = structural_issues(graph.offsets, graph.targets, graph.weights)
    unrecoverable = [i for i in raw if i[0] in _UNRECOVERABLE]
    for code, count, detail in unrecoverable:
        report.append(ValidationIssue(code, "error", count, detail))
    if unrecoverable:
        raise GraphValidationError(
            f"graph is structurally unrecoverable: {report.summary()}",
            report=report,
        )

    n = graph.num_vertices
    report.num_vertices = n
    report.arcs_in = graph.num_edges
    src = graph.source_ids()
    dst = graph.targets.astype(VERTEX_DTYPE, copy=True)
    w = graph.weights.astype(np.float64, copy=True)

    dropped = np.zeros(dst.shape[0], dtype=bool)
    repaired = 0
    changed = False

    # Out-of-range targets: recoverable only by dropping the arc.
    oor = [i for i in raw if i[0] == "out-of-range-target"]
    if oor:
        code, count, detail = oor[0]
        mask = (dst < 0) | (dst >= n)
        action = "reported" if policy == "strict" else "quarantined"
        report.append(ValidationIssue(code, "error", count, detail, action))
        if policy != "strict":
            dropped |= mask
            changed = True

    # ---- numeric weight hygiene -----------------------------------------
    defects = classify_weights(w)
    for code, mask, noun in (
        ("nan-weight", defects.nan, "NaN"),
        ("inf-weight", defects.overflow, "Inf/fp32-overflowing"),
        ("negative-weight", defects.negative, "negative"),
    ):
        count = int(np.count_nonzero(mask & ~dropped))
        if not count:
            continue
        where = int(np.flatnonzero(mask & ~dropped)[0])
        detail = (f"{count} arc(s) with {noun} weight "
                  f"(first: arc {where}, {int(src[where])}->{int(dst[where])})")
        if policy == "repair":
            report.append(ValidationIssue(code, "error", count, detail, "repaired"))
        elif policy == "quarantine":
            report.append(ValidationIssue(code, "error", count, detail, "quarantined"))
        else:
            report.append(ValidationIssue(code, "error", count, detail))
    if defects.total:
        if policy == "repair":
            w, fixed = repair_weight_values(w, defects)
            repaired += fixed
            changed = True
        elif policy == "quarantine":
            dropped |= defects.any_mask
            changed = True

    # Work on the surviving arcs from here on.
    if changed and dropped.any():
        keep = ~dropped
        report.quarantined_arcs += int(np.count_nonzero(dropped))
        src, dst, w = src[keep], dst[keep], w[keep]

    # ---- duplicate arcs --------------------------------------------------
    # (guarded keys: every surviving dst is in [0, n) by now)
    if src.shape[0]:
        keys = src * np.int64(max(n, 1)) + dst
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        dup_mask_sorted = np.zeros(skeys.shape[0], dtype=bool)
        dup_mask_sorted[1:] = skeys[1:] == skeys[:-1]
        n_dup = int(np.count_nonzero(dup_mask_sorted))
    else:
        keys = src.astype(np.int64)
        order = np.arange(0)
        dup_mask_sorted = np.zeros(0, dtype=bool)
        n_dup = 0
    if n_dup:
        detail = f"{n_dup} duplicate arc(s) (same source and target)"
        if policy == "strict":
            report.append(ValidationIssue("duplicate-edges", "error", n_dup, detail))
        else:
            action = "repaired" if policy == "repair" else "quarantined"
            report.append(
                ValidationIssue("duplicate-edges", "error", n_dup, detail, action)
            )
            if policy == "repair":
                # Merge groups with max, matching build.deduplicate_edges.
                starts = np.flatnonzero(~dup_mask_sorted)
                merged_w = np.maximum.reduceat(w[order], starts)
                firsts = order[starts]
                src, dst = src[firsts], dst[firsts]
                w = merged_w
                repaired += n_dup
            else:
                keep = np.ones(src.shape[0], dtype=bool)
                keep[order[dup_mask_sorted]] = False
                src, dst, w = src[keep], dst[keep], w[keep]
                report.quarantined_arcs += n_dup
            changed = True

    # ---- symmetry of undirected graphs ----------------------------------
    if undirected and src.shape[0]:
        keys = src * np.int64(max(n, 1)) + dst
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        rkeys = dst * np.int64(max(n, 1)) + src
        pos = np.searchsorted(skeys, rkeys)
        pos_c = np.minimum(pos, skeys.shape[0] - 1)
        has_rev = skeys[pos_c] == rkeys
        unmatched = ~has_rev
        n_unmatched = int(np.count_nonzero(unmatched))
        if n_unmatched:
            first = int(np.flatnonzero(unmatched)[0])
            detail = (f"{n_unmatched} arc(s) without a reverse arc in an "
                      f"undirected graph (first: "
                      f"{int(src[first])}->{int(dst[first])})")
            if policy == "strict":
                report.append(
                    ValidationIssue("asymmetric-arcs", "error", n_unmatched, detail)
                )
            elif policy == "repair":
                report.append(ValidationIssue(
                    "asymmetric-arcs", "error", n_unmatched, detail, "repaired"
                ))
                add_src, add_dst, add_w = dst[unmatched], src[unmatched], w[unmatched]
                src = np.concatenate([src, add_src])
                dst = np.concatenate([dst, add_dst])
                w = np.concatenate([w, add_w])
                repaired += n_unmatched
                changed = True
            else:
                report.append(ValidationIssue(
                    "asymmetric-arcs", "error", n_unmatched, detail, "quarantined"
                ))
                src, dst, w = src[has_rev], dst[has_rev], w[has_rev]
                report.quarantined_arcs += n_unmatched
                changed = True
        elif src.shape[0]:
            # Every arc has a mate; compare pair weights.
            w_rev = w[order[pos_c]]
            # NaN pairs are already reported as nan-weight; != on NaN would
            # double-report them here.
            mismatch = (
                has_rev & (w != w_rev) & ~np.isnan(w) & ~np.isnan(w_rev)
            )
            n_mismatch = int(np.count_nonzero(mismatch))
            if n_mismatch:
                detail = (f"{n_mismatch} arc(s) whose weight differs from "
                          f"the reverse arc's")
                action = "reported" if policy == "strict" else "repaired"
                report.append(ValidationIssue(
                    "asymmetric-weights", "error", n_mismatch, detail, action
                ))
                if policy != "strict":
                    w = np.maximum(w, w_rev)
                    repaired += n_mismatch
                    changed = True

    # ---- degenerate shapes (informational) -------------------------------
    if n == 0:
        report.append(ValidationIssue(
            "empty-graph", "info", 1, "graph has no vertices"
        ))
    else:
        present = np.zeros(n, dtype=bool)
        present[src] = True
        present[dst[(dst >= 0) & (dst < n)]] = True
        isolated = int(n - np.count_nonzero(present))
        if isolated:
            report.append(ValidationIssue(
                "isolated-vertices", "info", isolated,
                f"{isolated} vertex/vertices have no incident arcs"
            ))

    # fp32 accumulation overflow: a vertex's total incident weight (or the
    # graph total) saturates the fp32 scored-labels table even though every
    # individual weight is finite.
    if src.shape[0] and n:
        wdeg = np.zeros(n, dtype=np.float64)
        np.add.at(wdeg, src, w)
        n_over = int(np.count_nonzero(wdeg > FP32_MAX))
        if n_over:
            report.append(ValidationIssue(
                "fp32-accumulation-overflow", "warning", n_over,
                f"{n_over} vertex/vertices accumulate incident weight beyond "
                f"the fp32 maximum ({FP32_MAX:.3e}); scored-label values will "
                f"saturate — consider rescaling weights or value_dtype=float64"
            ))

    # ---- outcome ---------------------------------------------------------
    report.repaired_arcs = repaired
    report.arcs_out = src.shape[0]
    if policy == "strict" and report.errors:
        raise GraphValidationError(
            f"graph failed strict validation: {report.summary()}", report=report
        )
    if changed:
        graph = coo_to_csr(
            src.astype(VERTEX_DTYPE),
            dst.astype(VERTEX_DTYPE),
            np.clip(w, -FP32_MAX, FP32_MAX).astype(WEIGHT_DTYPE),
            n,
        )
    return graph, report
