"""Resilient multi-run job service over the ν-LPA engines.

Public surface::

    from repro.service import (
        DetectionService, ServiceConfig,       # the service
        JobSpec, JobRecord, JobOutcome,        # jobs
        JobState, GraphRef, RUNGS,
        AdmissionQueue,                        # admission control
        BackoffPolicy, is_retryable,           # retries
        BreakerConfig, CircuitBreaker,         # circuit breakers
        ServiceJournal,                        # durability
        run_service_soak, ServiceSoakOutcome,  # kill/restart soak
        SnapshotCatalog, Snapshot,             # query read path
        QueryEngine, SnapshotDiff, diff_snapshots,
        batch_key, amortize_launches,          # wave batching
        BatchSavings,
    )

Modules import lazily (PEP 562) so ``import repro`` stays light.
"""

from __future__ import annotations

_EXPORTS = {
    "DetectionService": "repro.service.service",
    "ServiceConfig": "repro.service.service",
    "JobSpec": "repro.service.job",
    "JobRecord": "repro.service.job",
    "JobOutcome": "repro.service.job",
    "JobState": "repro.service.job",
    "GraphRef": "repro.service.job",
    "RUNGS": "repro.service.job",
    "AdmissionQueue": "repro.service.queue",
    "BackoffPolicy": "repro.service.backoff",
    "RETRYABLE_FAULTS": "repro.service.backoff",
    "is_retryable": "repro.service.backoff",
    "BreakerConfig": "repro.service.breaker",
    "CircuitBreaker": "repro.service.breaker",
    "ServiceJournal": "repro.service.journal",
    "run_service_soak": "repro.service.soak",
    "ServiceSoakOutcome": "repro.service.soak",
    "SnapshotCatalog": "repro.service.read",
    "Snapshot": "repro.service.read",
    "QueryEngine": "repro.service.read",
    "SnapshotDiff": "repro.service.read",
    "diff_snapshots": "repro.service.read",
    "write_snapshot": "repro.service.read",
    "read_header": "repro.service.read",
    "batch_key": "repro.service.batch",
    "amortize_launches": "repro.service.batch",
    "BatchSavings": "repro.service.batch",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
