"""Retry policy: capped exponential backoff with deterministic jitter.

Two decisions live here, both of which a fleet operator must be able to
reason about exactly:

* **whether** a failed attempt is worth retrying — only device-fault
  classes the supervisor itself considers transient (its ``retry`` /
  ``regrow`` rungs handle the same set) and an exhausted degradation
  ladder.  Input problems (validation, format, configuration) are
  permanent: retrying them burns deadline on a guaranteed repeat failure;
* **when** to retry — ``base * factor**attempt`` capped at ``cap_s``,
  plus *deterministic* proportional jitter derived from
  ``(seed, job_id, attempt)``.  Deterministic jitter keeps the whole
  service replayable (the kill/restart soak depends on it) while still
  decorrelating retry storms across jobs, which is all jitter is for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    ConfigurationError,
    HashtableFullError,
    InvariantViolation,
    KernelLaunchError,
    KernelTimeoutError,
    ResilienceExhaustedError,
    TransientKernelError,
)

__all__ = ["RETRYABLE_FAULTS", "BackoffPolicy", "is_retryable"]

#: Exception classes a job-level retry may clear: the supervisor's own
#: transient set plus an exhausted ladder (the next attempt re-rolls the
#: injector stream and may draw a survivable schedule).
RETRYABLE_FAULTS = (
    HashtableFullError,
    KernelTimeoutError,
    TransientKernelError,
    KernelLaunchError,
    InvariantViolation,
    ResilienceExhaustedError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether a job-level retry can plausibly change the outcome.

    Validation errors, format errors, configuration errors — anything that
    is a property of the *input* rather than of the device — are never
    retryable; the same bytes produce the same rejection.  Unknown
    exception classes default to non-retryable for the same reason.
    """
    return isinstance(exc, RETRYABLE_FAULTS)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``delay(job_id, attempt)`` returns the raw (pre-jitter) delay —
    monotonically non-decreasing in ``attempt`` and never above ``cap_s``.
    ``jittered_delay`` adds the deterministic jitter: up to
    ``jitter * delay`` extra, derived from ``(seed, job_id, attempt)``
    so the same job retries on the same schedule in every replay.
    """

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 2.0
    #: Proportional jitter amplitude in [0, 1]: the jittered delay lies in
    #: ``[delay, delay * (1 + jitter))``.
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ConfigurationError(f"base_s must be >= 0; got {self.base_s}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1; got {self.factor}")
        if self.cap_s < self.base_s:
            raise ConfigurationError(
                f"cap_s ({self.cap_s}) must be >= base_s ({self.base_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1]; got {self.jitter}"
            )

    def delay(self, attempt: int) -> float:
        """Raw delay before attempt ``attempt`` (0-based), jitter excluded."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0; got {attempt}")
        # Guard the exponent: factor**attempt overflows float64 around
        # attempt ~ 1024 for factor 2; the cap makes the true value moot.
        if self.base_s == 0.0:
            return 0.0
        exponent = min(attempt, 64)
        return min(self.base_s * self.factor**exponent, self.cap_s)

    def jittered_delay(self, job_id: str, attempt: int) -> float:
        """Delay with the deterministic per-(job, attempt) jitter applied."""
        delay = self.delay(attempt)
        if delay == 0.0 or self.jitter == 0.0:
            return delay
        rng = np.random.default_rng(
            [self.seed & 0x7FFFFFFF, zlib.crc32(job_id.encode()), attempt]
        )
        return delay * (1.0 + self.jitter * float(rng.random()))
