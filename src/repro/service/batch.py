"""Wave batching: compatible jobs share kernel launches on the GPU clock.

The perf model charges every run ``launches × launch_overhead`` — for
small multi-tenant jobs the launch term dominates, exactly the overhead a
real serving stack amortises by batching compatible work into shared
kernel launches.  This module is the *accounting* half of that: given the
per-iteration launch counts of the jobs coalesced into one wave, it
computes how much modelled launch overhead the shared schedule saves and
attributes the saving to each job.

The model: jobs in a batch execute their iterations in lockstep.  At
iteration slot *i*, a sequential schedule pays one launch set per job
(``sum_j l_ij`` launches); the batched schedule launches each kernel once
with the widest member's grid and the other jobs ride along
(``max_j l_ij`` launches).  Jobs with fewer iterations simply drop out of
later slots.  Each job's share of a slot's batched launches is
proportional to its own launch count in that slot, so per-job attribution
sums exactly to the batched total and a job that contributed nothing to a
slot is charged nothing.

Label results are untouched — batching is a scheduling/pricing concern;
each job still runs the exact same deterministic detection, which is how
the service keeps its bit-identical-to-unbatched guarantee.

Batch *compatibility* is a config-class key: same engine, same LPA
overrides, same validation policy, one-shot ``detect`` kind.  Jobs that
would run different kernel sequences cannot share launches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.job import JobSpec

__all__ = ["batch_key", "amortize_launches", "BatchSavings"]


def batch_key(spec: JobSpec) -> tuple | None:
    """The compatibility class of one job, or ``None`` if unbatchable.

    Only one-shot ``detect`` jobs batch (a subscription's epoch loop has
    its own cadence); members must agree on engine and on every knob that
    changes the kernel sequence.
    """
    if spec.kind != "detect":
        return None
    return (
        spec.engine,
        spec.max_iterations,
        spec.tolerance,
        spec.validate,
    )


@dataclass(frozen=True)
class BatchSavings:
    """Amortisation result for one batch."""

    #: Total launches a sequential schedule would pay.
    launches_sequential: int
    #: Total launches of the shared (batched) schedule.
    launches_batched: int
    #: Modelled seconds saved, total and attributed per job (same order
    #: as the input).
    saved_seconds: float
    per_job_saved_s: tuple[float, ...]

    @property
    def launches_saved(self) -> int:
        return self.launches_sequential - self.launches_batched


def amortize_launches(
    per_job_iteration_launches: list[tuple[int, ...]],
    launch_overhead: float,
) -> BatchSavings:
    """Launch-overhead savings of batching jobs with the given schedules.

    Parameters
    ----------
    per_job_iteration_launches:
        For each job, its per-iteration kernel launch counts (job *j*'s
        iteration *i* launched ``l[j][i]`` kernels).
    launch_overhead:
        The platform's modelled seconds per kernel launch.

    Attribution at slot *i*: job *j* is charged
    ``batched_i × l_ij / sum_j l_ij`` launches, so per-job savings sum to
    the slot's total saving and every job's saving is non-negative (a
    job's share of the batched cost never exceeds its sequential cost,
    because ``batched_i <= sum_j l_ij``).
    """
    jobs = len(per_job_iteration_launches)
    if jobs == 0:
        return BatchSavings(0, 0, 0.0, ())
    depth = max(len(l) for l in per_job_iteration_launches)
    sequential = 0
    batched = 0
    saved = [0.0] * jobs
    for i in range(depth):
        slot = [
            l[i] if i < len(l) else 0
            for l in per_job_iteration_launches
        ]
        slot_seq = sum(slot)
        slot_max = max(slot)
        sequential += slot_seq
        batched += slot_max
        if slot_seq == 0:
            continue
        for j, l_ij in enumerate(slot):
            share = slot_max * (l_ij / slot_seq)
            saved[j] += (l_ij - share) * launch_overhead
    return BatchSavings(
        launches_sequential=sequential,
        launches_batched=batched,
        saved_seconds=(sequential - batched) * launch_overhead,
        per_job_saved_s=tuple(saved),
    )
