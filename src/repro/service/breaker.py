"""Per-engine circuit breakers (closed → open → half-open → closed).

A persistently failing engine makes every job routed at it pay the full
retry + degradation-ladder latency before the fallback finally answers.
The breaker converts that per-job cost into a per-*window* cost: once the
failure rate over the sliding outcome window crosses the threshold, the
breaker opens and the service routes jobs straight to the healthy engine —
no doomed attempt, no retry storm.  After ``cooldown_s`` of service clock
the breaker half-opens and admits a bounded number of probe jobs; a clean
probe closes it, a failed probe re-opens it for another cooldown.

Time here is the *service clock* (modelled seconds advanced by completed
work), not the host's wall clock, so breaker behaviour is deterministic
and replayable — the same property the checkpoint layer relies on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BreakerConfig", "BreakerOpen", "CircuitBreaker"]

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class BreakerOpen(Exception):
    """Internal routing signal: the engine's breaker refused the call.

    Never escapes the service — callers reroute to the healthy engine or
    descend the degradation ladder.  Not a ``ReproError`` on purpose, so a
    bug that *does* leak it fails loudly instead of being swallowed by a
    broad ``except ReproError``.
    """


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one engine's breaker (see docs/service.md)."""

    #: Sliding window length, in recorded call outcomes.
    window: int = 8
    #: Minimum outcomes in the window before the rate is trusted.
    min_calls: int = 4
    #: Open when ``failures / len(window) >= failure_threshold``.
    failure_threshold: float = 0.5
    #: Service-clock seconds an open breaker waits before half-opening.
    cooldown_s: float = 5.0
    #: Probe calls admitted while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1; got {self.window}")
        if not 1 <= self.min_calls <= self.window:
            raise ConfigurationError(
                f"min_calls must be in [1, window={self.window}]; "
                f"got {self.min_calls}"
            )
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1]; "
                f"got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0; got {self.cooldown_s}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1; got {self.half_open_probes}"
            )


class CircuitBreaker:
    """State machine guarding one engine.

    The owner drives it with two calls: :meth:`allow` before routing a job
    at the engine, and :meth:`record` with the outcome afterwards.  State
    transitions are returned (and exposed via ``transitions``) so the
    service can mirror them into the trace.
    """

    def __init__(self, engine: str, config: BreakerConfig | None = None) -> None:
        self.engine = engine
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: Times the breaker tripped closed→open or half-open→open.
        self.opened_count = 0
        #: ``(clock_s, transition, failure_rate)`` log, oldest first.
        self.transitions: list[tuple[float, str, float]] = []

    # ------------------------------------------------------------------ #

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    @property
    def calls_in_window(self) -> int:
        return len(self._outcomes)

    def allow(self, now_s: float) -> bool:
        """Whether a job may be routed at this engine right now.

        An open breaker half-opens automatically once the cooldown has
        elapsed on the service clock; a half-open breaker admits at most
        ``half_open_probes`` concurrent probes.
        """
        if self.state == OPEN:
            if now_s - self._opened_at >= self.config.cooldown_s:
                self._transition(now_s, HALF_OPEN)
            else:
                return False
        if self.state == HALF_OPEN:
            if self._probes_in_flight >= self.config.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True
        return True

    def record(self, success: bool, now_s: float) -> None:
        """Record one call outcome and advance the state machine."""
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if success:
                self._outcomes.clear()
                self._outcomes.append(True)
                self._transition(now_s, CLOSED)
            else:
                self.opened_count += 1
                self._opened_at = now_s
                self._transition(now_s, OPEN)
            return
        self._outcomes.append(success)
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.config.min_calls
            and self.failure_rate >= self.config.failure_threshold
        ):
            self.opened_count += 1
            self._opened_at = now_s
            self._transition(now_s, OPEN)

    # ------------------------------------------------------------------ #

    def _transition(self, now_s: float, new_state: str) -> None:
        old = self.state
        self.state = new_state
        if new_state != HALF_OPEN:
            self._probes_in_flight = 0
        self.transitions.append(
            (now_s, f"{old}->{new_state}", self.failure_rate)
        )

    def snapshot(self) -> dict:
        """JSON-ready health snapshot of this breaker."""
        return {
            "engine": self.engine,
            "state": self.state,
            "failure_rate": self.failure_rate,
            "calls_in_window": self.calls_in_window,
            "opened_count": self.opened_count,
        }
