"""Job descriptions and lifecycle records for the detection service.

A :class:`JobSpec` is everything the service needs to (re)run one
community-detection job: a *journalable* reference to the input graph, the
requested engine, tenant/priority metadata for admission control, and the
job's deadline.  Specs are immutable and JSON-serialisable, because crash
recovery replays them from the journal — a job whose graph only ever lived
in the dead process's memory cannot be recovered, so in-memory graphs are
explicitly marked non-recoverable.

A :class:`JobRecord` is the service-side mutable state of one admitted job:
its state machine position, attempt count, degradation rung, clocks, and
(once finished) the :class:`JobOutcome`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

__all__ = ["GraphRef", "JobSpec", "JobState", "JobOutcome", "JobRecord", "RUNGS"]

#: Degradation-ladder rungs, cheapest last; the order is the ladder.
RUNGS = ("full", "fallback-engine", "coarsened", "checkpoint-labels")


@dataclass(frozen=True)
class GraphRef:
    """A journalable reference to a job's input graph.

    ``kind`` is one of:

    * ``"dataset"`` — a Table-1 stand-in by name: regenerated
      deterministically from ``(name, scale, seed)``, fully recoverable;
    * ``"file"`` — a graph file on disk, recoverable while the file lives;
    * ``"memory"`` — a :class:`~repro.graph.csr.CSRGraph` held only by the
      submitting process.  Not crash-recoverable: a restarted service fails
      such a job with a clear error instead of silently dropping it.
    """

    kind: str
    name: str = ""
    scale: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.kind not in ("dataset", "file", "memory"):
            raise ConfigurationError(
                f"unknown GraphRef kind {self.kind!r}; "
                f"choose dataset, file, or memory"
            )

    @property
    def recoverable(self) -> bool:
        """Whether a restarted service can reload this graph."""
        return self.kind != "memory"

    def load(self, memory_graphs: dict[str, CSRGraph] | None = None) -> CSRGraph:
        """Materialise the graph this reference points at."""
        if self.kind == "dataset":
            from repro.graph.datasets import generate_standin

            return generate_standin(self.name, scale=self.scale, seed=self.seed)
        if self.kind == "file":
            from repro.graph.io import load_graph

            return load_graph(Path(self.name))
        graph = (memory_graphs or {}).get(self.name)
        if graph is None:
            raise ConfigurationError(
                f"in-memory graph {self.name!r} is gone (it died with the "
                f"process that submitted it); resubmit the job"
            )
        return graph

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "kind": self.kind,
            "name": self.name,
            "scale": self.scale,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "GraphRef":
        return cls(
            kind=str(raw["kind"]),
            name=str(raw["name"]),
            scale=float(raw["scale"]),
            seed=int(raw["seed"]),
        )


@dataclass(frozen=True)
class JobSpec:
    """One community-detection job as submitted.

    Attributes
    ----------
    job_id:
        Caller-chosen idempotency key; resubmitting an id the service
        already knows raises :class:`~repro.errors.DuplicateJobError`.
    graph:
        :class:`GraphRef` to the input graph.
    engine:
        Requested engine (``"vectorized"`` or ``"hashtable"``); the
        breaker may reroute to the other one.
    tenant:
        Admission-control bucket for the per-tenant in-flight cap.
    priority:
        Smaller runs earlier; ties break by submission order.
    deadline_s:
        Wall-clock budget for the *whole job* including retries (deadline
        propagation shrinks what each attempt gets); ``None`` = unlimited.
    gpu_budget_s:
        Modelled GPU-seconds budget, propagated the same way.
    max_iterations / tolerance:
        Per-job LPA overrides (``None`` = service defaults).  Only these
        two are exposed because they must survive a journal round-trip.
    validate:
        Input-validation policy forwarded to ``nu_lpa`` (``"strict"`` /
        ``"repair"`` / ``"quarantine"``; ``None`` skips validation).
    kind:
        ``"detect"`` (default) is a one-shot detection; ``"subscription"``
        follows a durable delta log (:mod:`repro.stream`): the job
        completes when every acknowledged batch has become an epoch, and
        a restarted service replays the log past the last journaled
        epoch and resumes bit-identically.
    stream_dir:
        Delta-log directory of a subscription job (required for
        ``kind="subscription"``); the graph ref is the stream's *base*
        (epoch-0) graph.
    hops:
        Subscription warm-start frontier radius (forwarded to
        ``nu_lpa_incremental``).
    delta_policy:
        Subscription delta-validation policy (``strict`` / ``repair`` /
        ``quarantine``).
    """

    job_id: str
    graph: GraphRef
    engine: str = "vectorized"
    tenant: str = "default"
    priority: int = 0
    deadline_s: float | None = None
    gpu_budget_s: float | None = None
    max_iterations: int | None = None
    tolerance: float | None = None
    validate: str | None = None
    kind: str = "detect"
    stream_dir: str | None = None
    hops: int = 1
    delta_policy: str = "strict"

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be a non-empty string")
        if self.engine not in ("vectorized", "hashtable"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"choose vectorized or hashtable"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0; got {self.deadline_s}"
            )
        if self.gpu_budget_s is not None and self.gpu_budget_s <= 0:
            raise ConfigurationError(
                f"gpu_budget_s must be > 0; got {self.gpu_budget_s}"
            )
        if self.kind not in ("detect", "subscription"):
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; "
                f"choose detect or subscription"
            )
        if self.kind == "subscription" and not self.stream_dir:
            raise ConfigurationError(
                "subscription jobs require stream_dir (the delta log "
                "directory)"
            )
        if self.hops < 0:
            raise ConfigurationError(f"hops must be >= 0; got {self.hops}")
        if self.delta_policy not in ("strict", "repair", "quarantine"):
            raise ConfigurationError(
                f"unknown delta_policy {self.delta_policy!r}; "
                f"choose strict, repair, or quarantine"
            )

    @classmethod
    def dataset(cls, job_id: str, name: str, *, scale: float = 1.0,
                seed: int = 42, **kwargs) -> "JobSpec":
        """Convenience constructor for a Table-1 stand-in job."""
        return cls(
            job_id=job_id,
            graph=GraphRef(kind="dataset", name=name, scale=scale, seed=seed),
            **kwargs,
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (the journal's admission record)."""
        return {
            "job_id": self.job_id,
            "graph": self.graph.as_dict(),
            "engine": self.engine,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "gpu_budget_s": self.gpu_budget_s,
            "max_iterations": self.max_iterations,
            "tolerance": self.tolerance,
            "validate": self.validate,
            "kind": self.kind,
            "stream_dir": self.stream_dir,
            "hops": self.hops,
            "delta_policy": self.delta_policy,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "JobSpec":
        # Stream fields default for records journaled before they existed.
        return cls(
            job_id=str(raw["job_id"]),
            graph=GraphRef.from_dict(raw["graph"]),
            engine=str(raw["engine"]),
            tenant=str(raw["tenant"]),
            priority=int(raw["priority"]),
            deadline_s=raw["deadline_s"],
            gpu_budget_s=raw["gpu_budget_s"],
            max_iterations=raw["max_iterations"],
            tolerance=raw["tolerance"],
            validate=raw["validate"],
            kind=str(raw.get("kind", "detect")),
            stream_dir=raw.get("stream_dir"),
            hops=int(raw.get("hops", 1)),
            delta_policy=str(raw.get("delta_policy", "strict")),
        )


class JobState(enum.Enum):
    """Lifecycle of an admitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobOutcome:
    """What a finished job produced."""

    #: Final community label per vertex (``None`` for failed jobs).
    labels: np.ndarray | None = None
    #: Degradation rung that produced the labels (one of :data:`RUNGS`).
    rung: str = "full"
    converged: bool = False
    iterations: int = 0
    #: ``result.degraded_reason`` of the producing run, or the service's
    #: rung annotation (e.g. ``"breaker:hashtable->vectorized"``).
    degraded_reason: str | None = None
    #: Why an unconverged run stopped, e.g.
    #: ``"max-iterations (final changed fraction 0.0712 > tol 0.05)"``.
    stop_detail: str = ""
    #: Terminal error string for failed jobs.
    error: str = ""
    #: Modelled GPU seconds of the *successful* run (failed attempts are
    #: accounted in the record's totals, not here).
    modeled_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Kernel launches per LPA iteration of the producing run (transient,
    #: not journaled — it only feeds wave-batching amortisation in the
    #: scheduling step that completed the job).
    iteration_launches: tuple = ()

    @property
    def degraded(self) -> bool:
        """Whether the labels came from anything but a clean full run."""
        return self.rung != "full" or self.degraded_reason is not None


@dataclass
class JobRecord:
    """Service-side mutable state of one admitted job."""

    spec: JobSpec
    state: JobState = JobState.PENDING
    #: Admission order (the priority queue's tie-breaker, preserved across
    #: restarts so recovery replays in the original order).
    seq: int = 0
    attempts: int = 0
    #: Per-attempt backoff delays actually applied (seconds).
    backoffs: list[float] = field(default_factory=list)
    #: Service modelled clock at admission / completion.
    admitted_clock_s: float = 0.0
    finished_clock_s: float = 0.0
    #: Wall seconds burned by every attempt (feeds deadline propagation).
    wall_spent_s: float = 0.0
    #: Modelled GPU seconds burned by every attempt, failed ones included.
    gpu_spent_s: float = 0.0
    outcome: JobOutcome | None = None
    #: True when this record was replayed from the journal after a restart.
    recovered: bool = False
    #: Admission-time analytic peak-footprint estimate in bytes (from
    #: :func:`repro.gpu.governor.footprint_for`); ``None`` when the service
    #: has no memory budget configured.  Not journaled — a recovered
    #: service re-estimates lazily at claim time.
    footprint_bytes: int | None = None
    #: Exception of the most recent failed attempt (transient, not
    #: journaled — it only steers the retry/ladder decision in-process).
    last_error: BaseException | None = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def latency_s(self) -> float:
        """Modelled-clock latency from admission to completion."""
        return max(0.0, self.finished_clock_s - self.admitted_clock_s)

    def remaining_budget(self):
        """The job's propagated deadline as a RunBudget (or ``None``)."""
        from repro.core.budget import RunBudget

        if self.spec.deadline_s is None and self.spec.gpu_budget_s is None:
            return None
        return RunBudget(
            wall_seconds=self.spec.deadline_s,
            gpu_seconds=self.spec.gpu_budget_s,
        ).shrunk(wall_spent=self.wall_spent_s, gpu_spent=self.gpu_spent_s)
