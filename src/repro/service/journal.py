"""Crash-consistent job journal: the service's durable source of truth.

Every job-state transition the service must not forget — admitted,
running, completed, failed — is persisted as one JSON file per job under
``<journal>/jobs/``, written with the same fsync + atomic-rename protocol
the checkpoint layer uses (temp file fsynced before ``os.replace``, parent
directory fsynced after), so a crash at any instant leaves either the
previous record or the new one, never a torn file.  Completed labels go to
``<journal>/labels/<job>.npz`` with a CRC32 recorded in the job file, so a
restarted service can *prove* it still has the answer instead of
re-running the job (that is the "no duplicated work" half of the recovery
contract; replaying pending/running specs from their journal records is
the "no lost work" half).

Per-job checkpoint directories live under ``<journal>/ckpt/<job>/`` and
are managed by the normal :mod:`repro.resilience.checkpoint` machinery —
the journal only hands out the paths.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.resilience.checkpoint import _fsync_dir
from repro.service.job import JobOutcome, JobRecord, JobSpec, JobState
from repro.types import VERTEX_DTYPE

__all__ = ["ServiceJournal"]

_VERSION = 1


def _safe_name(job_id: str) -> str:
    """Filesystem-safe, collision-free file stem for a job id."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in job_id)
    return f"{safe[:80]}-{zlib.crc32(job_id.encode()):08x}"


def _atomic_write(path: Path, payload: bytes) -> None:
    """fsync + atomic-rename write (the checkpoint layer's durability)."""
    tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot write journal record {path}: {exc}") from exc


class ServiceJournal:
    """Durable per-job state under one journal directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.labels_dir = self.directory / "labels"
        self.ckpt_root = self.directory / "ckpt"
        self.stream_root = self.directory / "streams"
        for d in (self.jobs_dir, self.labels_dir, self.ckpt_root):
            d.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{_safe_name(job_id)}.json"

    def labels_path(self, job_id: str) -> Path:
        return self.labels_dir / f"{_safe_name(job_id)}.npz"

    def checkpoint_dir(self, job_id: str) -> Path:
        """Per-job checkpoint directory (created on demand by the manager)."""
        return self.ckpt_root / _safe_name(job_id)

    def stream_dir(self, job_id: str) -> Path:
        """Per-subscription epoch-journal directory (created on demand by
        the :class:`~repro.stream.epoch.EpochJournal`)."""
        return self.stream_root / _safe_name(job_id)

    # ------------------------------------------------------------------ #

    def record(self, record: JobRecord) -> None:
        """Persist one job's current state (atomic, durable)."""
        doc: dict = {
            "version": _VERSION,
            "spec": record.spec.as_dict(),
            "state": record.state.value,
            "seq": record.seq,
            "attempts": record.attempts,
            "wall_spent_s": record.wall_spent_s,
            "gpu_spent_s": record.gpu_spent_s,
            "admitted_clock_s": record.admitted_clock_s,
            "finished_clock_s": record.finished_clock_s,
            "outcome": None,
            "labels_crc32": None,
        }
        if record.outcome is not None:
            out = record.outcome
            doc["outcome"] = {
                "rung": out.rung,
                "converged": out.converged,
                "iterations": out.iterations,
                "degraded_reason": out.degraded_reason,
                "stop_detail": out.stop_detail,
                "error": out.error,
                "modeled_seconds": out.modeled_seconds,
                "wall_seconds": out.wall_seconds,
            }
            if out.labels is not None:
                doc["labels_crc32"] = self._write_labels(
                    record.job_id, out.labels
                )
        _atomic_write(
            self.job_path(record.job_id),
            (json.dumps(doc, indent=2) + "\n").encode(),
        )

    def _write_labels(self, job_id: str, labels: np.ndarray) -> int:
        path = self.labels_path(job_id)
        crc = zlib.crc32(np.ascontiguousarray(labels).tobytes())
        tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, labels=labels)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write labels {path}: {exc}") from exc
        return crc

    # ------------------------------------------------------------------ #

    def load(self, path: Path) -> JobRecord | None:
        """Rehydrate one job record; ``None`` for unreadable files.

        Unreadable journal records are skipped (and reported by the
        caller) rather than fatal: one torn record must not block
        recovery of every other job.
        """
        try:
            doc = json.loads(path.read_text())
            if doc.get("version") != _VERSION:
                return None
            spec = JobSpec.from_dict(doc["spec"])
            record = JobRecord(
                spec=spec,
                state=JobState(doc["state"]),
                seq=int(doc["seq"]),
                attempts=int(doc["attempts"]),
                wall_spent_s=float(doc["wall_spent_s"]),
                gpu_spent_s=float(doc["gpu_spent_s"]),
                admitted_clock_s=float(doc["admitted_clock_s"]),
                finished_clock_s=float(doc["finished_clock_s"]),
                recovered=True,
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
        raw_outcome = doc.get("outcome")
        if raw_outcome is not None:
            labels = None
            if doc.get("labels_crc32") is not None:
                labels = self._load_labels(
                    record.job_id, int(doc["labels_crc32"])
                )
                if labels is None and record.state is JobState.COMPLETED:
                    # The completion record survived but its labels did
                    # not: demote to pending so the job re-runs (the
                    # deterministic re-run reproduces the same labels).
                    record.state = JobState.PENDING
                    record.outcome = None
                    return record
            record.outcome = JobOutcome(
                labels=labels,
                rung=str(raw_outcome["rung"]),
                converged=bool(raw_outcome["converged"]),
                iterations=int(raw_outcome["iterations"]),
                degraded_reason=raw_outcome["degraded_reason"],
                stop_detail=str(raw_outcome["stop_detail"] or ""),
                error=str(raw_outcome["error"] or ""),
                modeled_seconds=float(raw_outcome["modeled_seconds"]),
                wall_seconds=float(raw_outcome["wall_seconds"]),
            )
        return record

    def _load_labels(self, job_id: str, expected_crc: int) -> np.ndarray | None:
        path = self.labels_path(job_id)
        try:
            with np.load(path, allow_pickle=False) as data:
                labels = data["labels"].astype(VERTEX_DTYPE)
        except Exception:
            return None
        if zlib.crc32(np.ascontiguousarray(labels).tobytes()) != expected_crc:
            return None
        return labels

    def load_all(self) -> tuple[list[JobRecord], list[Path]]:
        """All readable records (by seq order) plus the skipped paths."""
        records: list[JobRecord] = []
        skipped: list[Path] = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            record = self.load(path)
            if record is None:
                skipped.append(path)
            else:
                records.append(record)
        records.sort(key=lambda r: r.seq)
        return records, skipped
