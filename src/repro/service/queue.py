"""Bounded priority admission queue with per-tenant in-flight caps.

Admission control is the service's first line of defence: a queue that
grows without bound converts overload into unbounded latency for
*everyone*, while a bounded queue converts it into fast, typed
:class:`~repro.errors.ServiceOverloaded` rejections that tell each client
exactly when to come back (``retry_after_s``).  The per-tenant cap stops a
single noisy tenant from occupying the whole queue — the classic
multi-tenant fairness failure.

Ordering is (priority, admission sequence): strictly smaller ``priority``
runs first, ties run in submission order.  The sequence number survives
journal replay, so a recovered service drains in the original order.
"""

from __future__ import annotations

import heapq

from repro.errors import ServiceOverloaded

from repro.service.job import JobRecord

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Bounded priority queue of :class:`~repro.service.job.JobRecord`.

    Parameters
    ----------
    capacity:
        Maximum *pending* jobs; a push past this raises
        :class:`~repro.errors.ServiceOverloaded` (``reason="queue-full"``).
    tenant_inflight:
        Per-tenant cap on pending + running jobs; ``None`` disables the
        cap.  Exceeding it raises ``ServiceOverloaded``
        (``reason="tenant-cap"``) even while the queue itself has room.
    """

    def __init__(
        self, capacity: int = 64, tenant_inflight: int | None = None
    ) -> None:
        self.capacity = capacity
        self.tenant_inflight = tenant_inflight
        self._heap: list[tuple[int, int, JobRecord]] = []
        #: pending + running count per tenant (the in-flight gauge).
        self._tenant_inflight_now: dict[str, int] = {}
        self.rejected_queue_full = 0
        self.rejected_tenant_cap = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        """Pending jobs right now."""
        return len(self._heap)

    def tenant_load(self, tenant: str) -> int:
        """Pending + running jobs of one tenant."""
        return self._tenant_inflight_now.get(tenant, 0)

    def tenant_loads(self) -> dict[str, int]:
        """In-flight count per tenant (zero-entry tenants dropped)."""
        return {t: n for t, n in self._tenant_inflight_now.items() if n > 0}

    # ------------------------------------------------------------------ #

    def push(self, record: JobRecord, *, retry_after_s: float = 1.0) -> None:
        """Admit one job or raise :class:`ServiceOverloaded`.

        ``retry_after_s`` is the hint carried on the rejection; the
        service derives it from observed job latency and backlog depth.
        """
        tenant = record.spec.tenant
        if (
            self.tenant_inflight is not None
            and self.tenant_load(tenant) >= self.tenant_inflight
        ):
            self.rejected_tenant_cap += 1
            raise ServiceOverloaded(
                f"tenant {tenant!r} is at its in-flight cap "
                f"({self.tenant_inflight}); retry in ~{retry_after_s:.2f}s",
                reason="tenant-cap",
                retry_after_s=retry_after_s,
                queue_depth=self.depth,
            )
        if self.depth >= self.capacity:
            self.rejected_queue_full += 1
            raise ServiceOverloaded(
                f"admission queue is full ({self.capacity} pending); "
                f"retry in ~{retry_after_s:.2f}s",
                reason="queue-full",
                retry_after_s=retry_after_s,
                queue_depth=self.depth,
            )
        heapq.heappush(
            self._heap, (record.spec.priority, record.seq, record)
        )
        self._tenant_inflight_now[tenant] = self.tenant_load(tenant) + 1

    def requeue(self, record: JobRecord) -> None:
        """Put a popped-but-unclaimed job back at its original position.

        Used by memory-aware admission: a job popped by the scheduler but
        not claimed (its footprint would not fit next to the running set)
        goes back with the same ``(priority, seq)`` key, so it stays the
        front job and runs as soon as memory frees.  The tenant in-flight
        slot was never released by :meth:`pop`, so no accounting changes —
        this deliberately bypasses the capacity check.
        """
        heapq.heappush(self._heap, (record.spec.priority, record.seq, record))

    def pop(self) -> JobRecord:
        """Remove and return the front job (still counted in-flight).

        The tenant's in-flight slot is only released by :meth:`release`
        when the job *finishes* — popping just moves it from pending to
        running.
        """
        if not self._heap:
            raise IndexError("pop from an empty admission queue")
        return heapq.heappop(self._heap)[2]

    def release(self, record: JobRecord) -> None:
        """Free the tenant in-flight slot of a finished job."""
        tenant = record.spec.tenant
        current = self.tenant_load(tenant)
        if current <= 1:
            self._tenant_inflight_now.pop(tenant, None)
        else:
            self._tenant_inflight_now[tenant] = current - 1
