"""The versioned snapshot read path: published labels served as queries.

The write side of the repo (service jobs, streaming epochs) produces label
arrays; this module is the read side that makes them *queryable* under
load.  Three layers:

* :class:`Snapshot` — one immutable, mmap-backed snapshot file.  The
  ``.snap`` format stores the labels plus a precomputed CSR-style
  community index (members grouped by community with an offsets array and
  a dense label→row map), so ``membership(v)`` is one O(1) array read and
  ``roster(c)`` is an O(|C|) slice copy — no scan, no sort, no hash at
  query time.  Every array section carries a CRC32 in the header and is
  verified on open.
* :class:`SnapshotCatalog` — job_id → ordered versions on disk.
  :meth:`~SnapshotCatalog.publish` builds the index and writes it with
  the checkpoint layer's durability protocol (temp file fsynced before
  ``os.replace``, parent directory fsynced after), so a crash at any
  instant leaves either the previous version set or the new one — never
  a torn file that :meth:`~SnapshotCatalog.latest` could serve.
  ``latest()`` falls back generation-by-generation past corrupt files,
  CRC-verified, recording each skip.
* :class:`QueryEngine` — the serving front end: caches one open snapshot
  per job, exposes ``membership`` / ``roster`` / ``community_sizes`` /
  ``diff``, counts ops, and emits
  :class:`~repro.observe.trace.QueryEvent` /
  :class:`~repro.observe.trace.QueryStatsEvent` observability.

Publishers: :class:`~repro.service.service.DetectionService` publishes
one snapshot per completed job (``source="job"``) and one per streaming
epoch (``source="epoch"``) when configured with a ``snapshot_dir``; see
docs/query.md for the format and the atomicity guarantees.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    ConfigurationError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotNotFoundError,
)
from repro.observe.trace import (
    QueryEvent,
    QueryStatsEvent,
    SnapshotSkipEvent,
    Tracer,
)
from repro.resilience.checkpoint import _fsync_dir
from repro.service.journal import _safe_name

__all__ = [
    "Snapshot",
    "SnapshotCatalog",
    "SnapshotDiff",
    "QueryEngine",
    "diff_snapshots",
    "write_snapshot",
    "read_header",
]

#: File magic: 8 bytes at offset 0 of every ``.snap`` file.
MAGIC = b"RPSNAP01"

#: Bump when the snapshot layout changes incompatibly.
#: v2: a CRC32 of the JSON header follows the header-length word, so a
#: bit-flip anywhere in the header (not just the array sections) is
#: detected at open time.
FORMAT = "repro.service/snapshot"
FORMAT_VERSION = 2

#: Array sections are aligned to this many bytes (mmap-friendly).
_ALIGN = 64

_PREFIX = "v"
_SUFFIX = ".snap"

#: Section order in the file; also the required set at open time.
_ARRAY_NAMES = ("labels", "comm_ids", "comm_offsets", "comm_members", "label_rows")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _build_index(labels: np.ndarray) -> dict[str, np.ndarray]:
    """Precompute the CSR-style community index for one label array.

    ``comm_members`` holds vertex ids grouped by community (stable order
    within each group), ``comm_offsets`` delimits the groups, ``comm_ids``
    names them, and ``label_rows`` is the dense label→group-row map that
    makes ``roster`` O(1) + output size.
    """
    labels = np.ascontiguousarray(np.asarray(labels), dtype=np.int64)
    if labels.ndim != 1:
        raise SnapshotError(f"labels must be 1-D; got shape {labels.shape}")
    n = labels.shape[0]
    if n and int(labels.min()) < 0:
        raise SnapshotError("labels must be non-negative")
    order = np.argsort(labels, kind="stable").astype(np.int64)
    comm_ids, counts = np.unique(labels, return_counts=True)
    comm_offsets = np.zeros(comm_ids.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=comm_offsets[1:])
    rows = int(labels.max()) + 1 if n else 0
    label_rows = np.full(rows, -1, dtype=np.int64)
    label_rows[comm_ids] = np.arange(comm_ids.shape[0], dtype=np.int64)
    return {
        "labels": labels,
        "comm_ids": comm_ids.astype(np.int64),
        "comm_offsets": comm_offsets,
        "comm_members": order,
        "label_rows": label_rows,
    }


def write_snapshot(
    path: str | Path,
    labels: np.ndarray,
    *,
    job_id: str,
    snapshot_version: int,
    source: str = "job",
    epoch: int | None = None,
) -> Path:
    """Atomically write one snapshot file (used by the catalog).

    Durability protocol: the whole file is written to a temp sibling,
    fsynced, renamed over the final name with ``os.replace``, and the
    directory fsynced — a reader (or a crash) can never observe a
    half-written snapshot under the published name.
    """
    if source not in ("job", "epoch"):
        raise SnapshotError(f"unknown snapshot source {source!r}")
    path = Path(path)
    arrays = _build_index(labels)

    data_offset = 0
    meta_arrays: dict[str, dict] = {}
    for name in _ARRAY_NAMES:
        arr = arrays[name]
        data_offset = _align(data_offset)
        meta_arrays[name] = {
            "offset": data_offset,
            "dtype": arr.dtype.name,
            "shape": list(arr.shape),
            "crc32": zlib.crc32(arr),
        }
        data_offset += arr.nbytes

    header = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "job_id": job_id,
        "snapshot_version": int(snapshot_version),
        "source": source,
        "epoch": None if epoch is None else int(epoch),
        "num_vertices": int(arrays["labels"].shape[0]),
        "num_communities": int(arrays["comm_ids"].shape[0]),
        "labels_crc32": meta_arrays["labels"]["crc32"],
        "arrays": meta_arrays,
    }
    header_bytes = json.dumps(header).encode()
    # Layout: MAGIC + u32 header_len + u32 header_crc32 + header + sections.
    data_start = _align(len(MAGIC) + 8 + len(header_bytes))

    tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<I", len(header_bytes)))
            fh.write(struct.pack("<I", zlib.crc32(header_bytes)))
            fh.write(header_bytes)
            for name in _ARRAY_NAMES:
                fh.write(b"\0" * (data_start + meta_arrays[name]["offset"] - fh.tell()))
                fh.write(arrays[name].tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
    return path


class Snapshot:
    """One open, mmap-backed, CRC-verified snapshot file.

    All query methods read straight out of the memory map; nothing is
    deserialised up front beyond the JSON header, so opening a snapshot
    is O(header) + one CRC pass (skippable with ``verify=False`` for
    callers that already trust the file, e.g. re-opens of a version that
    verified earlier in the process).
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        arrays: dict[str, np.ndarray],
    ) -> None:
        self.path = path
        self.job_id: str = header["job_id"]
        self.snapshot_version: int = int(header["snapshot_version"])
        self.source: str = header["source"]
        self.epoch: int | None = (
            None if header["epoch"] is None else int(header["epoch"])
        )
        self.num_vertices: int = int(header["num_vertices"])
        self.num_communities: int = int(header["num_communities"])
        self._labels = arrays["labels"]
        self._comm_ids = arrays["comm_ids"]
        self._comm_offsets = arrays["comm_offsets"]
        self._comm_members = arrays["comm_members"]
        self._label_rows = arrays["label_rows"]

    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = True) -> "Snapshot":
        """Map one snapshot file; raises :class:`SnapshotCorruptError` on
        any structural or (with ``verify=True``) CRC damage."""
        path = Path(path)
        header = read_header(path)
        size = path.stat().st_size
        # data_start is derived, not stored: align(magic + 2×u32 + header).
        # Re-deriving it from the *parsed* header would be fragile (JSON
        # round-trips are not byte-stable), so re-read the raw length.
        with open(path, "rb") as fh:
            fh.seek(len(MAGIC))
            (header_len,) = struct.unpack("<I", fh.read(4))
        data_start = _align(len(MAGIC) + 8 + header_len)
        arrays: dict[str, np.ndarray] = {}
        for name in _ARRAY_NAMES:
            meta = header["arrays"].get(name)
            if meta is None:
                raise SnapshotCorruptError(
                    f"snapshot {path}: missing array section {name!r}"
                )
            try:
                dtype = np.dtype(meta["dtype"])
                shape = tuple(int(s) for s in meta["shape"])
            except (TypeError, KeyError, ValueError) as exc:
                raise SnapshotCorruptError(
                    f"snapshot {path}: bad metadata for {name!r}: {exc}"
                ) from exc
            offset = data_start + int(meta["offset"])
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if offset + nbytes > size:
                raise SnapshotCorruptError(
                    f"snapshot {path}: section {name!r} extends past EOF "
                    f"(needs {offset + nbytes} bytes, file has {size}) — "
                    f"truncated file"
                )
            if nbytes:
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r", offset=offset, shape=shape
                )
            else:
                arrays[name] = np.empty(shape, dtype=dtype)
            if verify:
                actual = zlib.crc32(np.ascontiguousarray(arrays[name]))
                if actual != int(meta["crc32"]):
                    raise SnapshotCorruptError(
                        f"snapshot {path}: CRC32 mismatch on {name!r} "
                        f"(stored {meta['crc32']}, computed {actual}) — "
                        f"corrupt snapshot"
                    )
        snap = cls(path, header, arrays)
        if snap._comm_offsets.shape[0] != snap.num_communities + 1:
            raise SnapshotCorruptError(
                f"snapshot {path}: community offsets length "
                f"{snap._comm_offsets.shape[0]} != num_communities + 1"
            )
        return snap

    def verify(self) -> None:
        """Re-run the CRC pass over every mapped section."""
        Snapshot.open(self.path, verify=True)

    def close(self) -> None:
        """Drop the memory maps (queries after close are undefined)."""
        for name in ("_labels", "_comm_ids", "_comm_offsets",
                     "_comm_members", "_label_rows"):
            arr = getattr(self, name)
            if isinstance(arr, np.memmap):
                setattr(self, name, np.empty(0, dtype=arr.dtype))

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def labels(self) -> np.ndarray:
        """The label array (read-only memory map)."""
        return self._labels

    def membership(self, vertex: int) -> int:
        """Community label of one vertex — one O(1) array read."""
        if not 0 <= vertex < self.num_vertices:
            raise ConfigurationError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )
        return int(self._labels[vertex])

    def has_community(self, label: int) -> bool:
        """Whether any vertex carries ``label`` in this snapshot."""
        return (
            0 <= label < self._label_rows.shape[0]
            and int(self._label_rows[label]) >= 0
        )

    def roster(self, label: int) -> np.ndarray:
        """All vertices in community ``label`` — O(|C|) via the index.

        Unknown labels return an empty array (a community that churned
        away between epochs is a normal query, not an error).
        """
        if not self.has_community(label):
            return np.empty(0, dtype=np.int64)
        row = int(self._label_rows[label])
        lo = int(self._comm_offsets[row])
        hi = int(self._comm_offsets[row + 1])
        return np.asarray(self._comm_members[lo:hi]).copy()

    def community_sizes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(community_ids, sizes)`` — O(num_communities)."""
        offsets = np.asarray(self._comm_offsets)
        return np.asarray(self._comm_ids).copy(), np.diff(offsets)


def read_header(path: str | Path) -> dict:
    """Parse and structurally check one snapshot header.

    The header's own CRC32 (format v2) is always verified — only the
    array sections have a skippable CRC pass.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise SnapshotCorruptError(
                    f"snapshot {path}: bad magic {magic!r} (want {MAGIC!r})"
                )
            raw_words = fh.read(8)
            if len(raw_words) != 8:
                raise SnapshotCorruptError(f"snapshot {path}: truncated header")
            header_len, header_crc = struct.unpack("<II", raw_words)
            raw = fh.read(header_len)
            if len(raw) != header_len:
                raise SnapshotCorruptError(f"snapshot {path}: truncated header")
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if zlib.crc32(raw) != header_crc:
        raise SnapshotCorruptError(
            f"snapshot {path}: header CRC {zlib.crc32(raw)} != recorded "
            f"{header_crc}"
        )
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SnapshotCorruptError(
            f"snapshot {path}: header is not valid JSON: {exc}"
        ) from exc
    if header.get("format") != FORMAT:
        raise SnapshotCorruptError(
            f"snapshot {path}: unknown format {header.get('format')!r}"
        )
    if header.get("version") != FORMAT_VERSION:
        raise SnapshotCorruptError(
            f"snapshot {path}: format version {header.get('version')} "
            f"unsupported (this build reads {FORMAT_VERSION})"
        )
    for key in ("job_id", "snapshot_version", "source", "num_vertices",
                "num_communities", "labels_crc32", "arrays"):
        if key not in header:
            raise SnapshotCorruptError(
                f"snapshot {path}: header missing {key!r}"
            )
    header.setdefault("epoch", None)
    return header


# --------------------------------------------------------------------- #
# Diff
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SnapshotDiff:
    """Epoch-over-epoch churn between two snapshots of one job."""

    from_version: int
    to_version: int
    from_epoch: int | None
    to_epoch: int | None
    #: Vertices (present in both snapshots) whose label changed.
    changed: np.ndarray
    #: Vertices present in only the larger snapshot (graph growth).
    grown: np.ndarray
    #: ``(|changed| + |grown|) / max(num_vertices)`` — the churn fraction.
    fraction: float

    @property
    def total(self) -> int:
        return int(self.changed.shape[0] + self.grown.shape[0])


def diff_snapshots(a: Snapshot, b: Snapshot) -> SnapshotDiff:
    """Label churn from snapshot ``a`` to snapshot ``b`` (one O(N) pass)."""
    la = np.asarray(a.labels)
    lb = np.asarray(b.labels)
    common = min(la.shape[0], lb.shape[0])
    larger = max(la.shape[0], lb.shape[0])
    changed = np.flatnonzero(la[:common] != lb[:common]).astype(np.int64)
    grown = np.arange(common, larger, dtype=np.int64)
    return SnapshotDiff(
        from_version=a.snapshot_version,
        to_version=b.snapshot_version,
        from_epoch=a.epoch,
        to_epoch=b.epoch,
        changed=changed,
        grown=grown,
        fraction=(changed.shape[0] + grown.shape[0]) / max(larger, 1),
    )


# --------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------- #


class SnapshotCatalog:
    """job_id → ordered snapshot versions under one root directory.

    Layout: ``<root>/<safe-job-id>/v00000001.snap`` — version numbers are
    monotone per job and never reused, even past unreadable files (a
    corrupt ``v7`` still burns the number; the next publish is ``v8``).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        keep: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if keep is not None and keep < 1:
            raise SnapshotError(f"keep must be >= 1 or None; got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        #: Emits a :class:`~repro.observe.trace.SnapshotSkipEvent` whenever
        #: :meth:`latest` steps past a damaged version file.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: ``(path, reason)`` of snapshots :meth:`latest` skipped.
        self.skipped: list[tuple[Path, str]] = []

    # ------------------------------------------------------------------ #

    def job_dir(self, job_id: str) -> Path:
        return self.root / _safe_name(job_id)

    def job_ids_on_disk(self) -> list[str]:
        """Sanitised per-job directory names present under the root."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def versions(self, job_id: str) -> list[Path]:
        """All well-named snapshot files of one job, oldest first."""
        directory = self.job_dir(job_id)
        if not directory.is_dir():
            return []
        return sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    @staticmethod
    def version_of(path: Path) -> int:
        """Version number encoded in a snapshot filename (-1 if malformed)."""
        stem = path.name[len(_PREFIX):-len(_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return -1

    # ------------------------------------------------------------------ #

    def publish(
        self,
        job_id: str,
        labels: np.ndarray,
        *,
        source: str = "job",
        epoch: int | None = None,
        dedupe: bool = True,
    ) -> Path:
        """Atomically publish the next snapshot version for one job.

        With ``dedupe=True`` (the default) a publish whose labels, source,
        and epoch match the newest existing version's header is a no-op
        returning that version's path — which makes the recovery path's
        re-publish after a crash idempotent instead of version-inflating.
        """
        labels = np.ascontiguousarray(np.asarray(labels), dtype=np.int64)
        directory = self.job_dir(job_id)
        directory.mkdir(parents=True, exist_ok=True)
        existing = self.versions(job_id)
        if dedupe and existing:
            try:
                head = read_header(existing[-1])
            except SnapshotError:
                head = None
            if (
                head is not None
                and int(head["labels_crc32"]) == zlib.crc32(labels)
                and head["source"] == source
                and head["epoch"] == (None if epoch is None else int(epoch))
            ):
                return existing[-1]
        next_version = 1 + max(
            [self.version_of(p) for p in existing], default=0
        )
        path = directory / f"{_PREFIX}{next_version:08d}{_SUFFIX}"
        write_snapshot(
            path, labels,
            job_id=job_id, snapshot_version=next_version,
            source=source, epoch=epoch,
        )
        self._prune(job_id, protect=path)
        return path

    def _prune(self, job_id: str, protect: Path) -> None:
        if self.keep is None:
            return
        found = self.versions(job_id)
        for stale in found[: max(0, len(found) - self.keep)]:
            if stale != protect:
                stale.unlink(missing_ok=True)
        _fsync_dir(self.job_dir(job_id))

    # ------------------------------------------------------------------ #

    def latest(self, job_id: str, *, verify: bool = True) -> Snapshot:
        """Newest *readable* snapshot of one job, CRC-verified.

        Falls back generation-by-generation past damaged files (recorded
        in :attr:`skipped`); raises :class:`SnapshotNotFoundError` when
        nothing was ever published or everything published is damaged.
        """
        self.skipped = []
        paths = self.versions(job_id)
        for path in reversed(paths):
            try:
                return Snapshot.open(path, verify=verify)
            except SnapshotError as exc:
                self.skipped.append((path, str(exc)))
                if self.tracer.enabled:
                    self.tracer.emit(SnapshotSkipEvent(
                        iteration=self.version_of(path),
                        job_id=job_id,
                        path=path.name,
                        reason=str(exc),
                    ))
        if self.skipped:
            raise SnapshotNotFoundError(
                f"job {job_id!r}: all {len(self.skipped)} published "
                f"snapshot(s) are damaged (newest: {self.skipped[0][1]})"
            )
        raise SnapshotNotFoundError(
            f"job {job_id!r} has no published snapshot under {self.root}"
        )

    def latest_or_none(self, job_id: str) -> Snapshot | None:
        """Like :meth:`latest` but ``None`` instead of raising."""
        try:
            return self.latest(job_id)
        except SnapshotNotFoundError:
            return None

    def open_version(self, job_id: str, version: int) -> Snapshot:
        """Open one specific version, CRC-verified."""
        for path in self.versions(job_id):
            if self.version_of(path) == version:
                return Snapshot.open(path)
        raise SnapshotNotFoundError(
            f"job {job_id!r} has no snapshot version {version}"
        )


# --------------------------------------------------------------------- #
# Query engine
# --------------------------------------------------------------------- #


class QueryEngine:
    """The serving front end over a :class:`SnapshotCatalog`.

    Keeps one open snapshot per job (explicitly refreshed — the hot path
    never stats the directory), counts every op, and emits
    :class:`~repro.observe.trace.QueryEvent` per query when a tracer is
    enabled plus :class:`~repro.observe.trace.QueryStatsEvent` from
    :meth:`snapshot_stats`.
    """

    def __init__(
        self,
        catalog: SnapshotCatalog | str | Path,
        *,
        tracer: Tracer | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.catalog = (
            catalog if isinstance(catalog, SnapshotCatalog)
            else SnapshotCatalog(catalog, tracer=self.tracer)
        )
        if not self.catalog.tracer.enabled:
            # Skip events from refresh() surface in the engine's trace.
            self.catalog.tracer = self.tracer
        self._cache: dict[str, Snapshot] = {}
        self.op_counts = {
            "membership": 0, "roster": 0, "community_sizes": 0,
            "diff": 0, "refresh": 0,
        }
        self._stats_seq = 0

    # ------------------------------------------------------------------ #

    def refresh(self, job_id: str) -> Snapshot:
        """(Re)load the newest readable snapshot of one job."""
        snap = self.catalog.latest(job_id)
        old = self._cache.get(job_id)
        if old is not None and old.path != snap.path:
            old.close()
        self._cache[job_id] = snap
        self.op_counts["refresh"] += 1
        return snap

    def snapshot_for(self, job_id: str) -> Snapshot:
        """The cached snapshot of one job (loading it on first use)."""
        snap = self._cache.get(job_id)
        if snap is None:
            snap = self.refresh(job_id)
        return snap

    def close(self) -> None:
        for snap in self._cache.values():
            snap.close()
        self._cache.clear()

    # ------------------------------------------------------------------ #

    def membership(self, job_id: str, vertex: int) -> int:
        """O(1): community label of ``vertex`` in the served snapshot."""
        snap = self.snapshot_for(job_id)
        label = snap.membership(vertex)
        self.op_counts["membership"] += 1
        if self.tracer.enabled:
            self.tracer.emit(QueryEvent(
                iteration=self._total_ops(), job_id=job_id, op="membership",
                key=vertex, result_size=1,
                snapshot_version=snap.snapshot_version,
            ))
        return label

    def roster(self, job_id: str, label: int) -> np.ndarray:
        """O(|C|): every vertex in community ``label``."""
        snap = self.snapshot_for(job_id)
        members = snap.roster(label)
        self.op_counts["roster"] += 1
        if self.tracer.enabled:
            self.tracer.emit(QueryEvent(
                iteration=self._total_ops(), job_id=job_id, op="roster",
                key=label, result_size=int(members.shape[0]),
                snapshot_version=snap.snapshot_version,
            ))
        return members

    def community_sizes(self, job_id: str) -> tuple[np.ndarray, np.ndarray]:
        """``(community_ids, sizes)`` of the served snapshot."""
        snap = self.snapshot_for(job_id)
        ids, sizes = snap.community_sizes()
        self.op_counts["community_sizes"] += 1
        if self.tracer.enabled:
            self.tracer.emit(QueryEvent(
                iteration=self._total_ops(), job_id=job_id,
                op="community_sizes", key=-1,
                result_size=int(ids.shape[0]),
                snapshot_version=snap.snapshot_version,
            ))
        return ids, sizes

    def diff(
        self,
        job_id: str,
        from_version: int | None = None,
        to_version: int | None = None,
    ) -> SnapshotDiff:
        """Churn between two versions (default: the two newest readable)."""
        if (from_version is None) != (to_version is None):
            raise ConfigurationError(
                "diff needs both versions or neither (neither = the two "
                "newest readable)"
            )
        if from_version is None:
            readable: list[Snapshot] = []
            for path in reversed(self.catalog.versions(job_id)):
                try:
                    readable.append(Snapshot.open(path))
                except SnapshotError:
                    continue
                if len(readable) == 2:
                    break
            if len(readable) < 2:
                for snap in readable:
                    snap.close()
                raise SnapshotNotFoundError(
                    f"job {job_id!r} has fewer than two readable snapshot "
                    f"versions; nothing to diff"
                )
            newer, older = readable
        else:
            older = self.catalog.open_version(job_id, from_version)
            newer = self.catalog.open_version(job_id, to_version)
        try:
            result = diff_snapshots(older, newer)
        finally:
            older.close()
            newer.close()
        self.op_counts["diff"] += 1
        if self.tracer.enabled:
            self.tracer.emit(QueryEvent(
                iteration=self._total_ops(), job_id=job_id, op="diff",
                key=result.to_version, result_size=result.total,
                snapshot_version=result.to_version,
            ))
        return result

    # ------------------------------------------------------------------ #

    def _total_ops(self) -> int:
        return sum(self.op_counts.values())

    def stats(self) -> dict:
        """Op counters plus the set of currently served snapshots."""
        return {
            "ops": dict(self.op_counts),
            "total_ops": self._total_ops(),
            "served_jobs": sorted(self._cache),
            "versions": {
                job_id: snap.snapshot_version
                for job_id, snap in sorted(self._cache.items())
            },
            "skipped": len(self.catalog.skipped),
        }

    def snapshot_stats(self) -> dict:
        """Emit a :class:`QueryStatsEvent` and return :meth:`stats`."""
        doc = self.stats()
        self._stats_seq += 1
        self.tracer.emit(QueryStatsEvent(
            iteration=self._stats_seq,
            membership=doc["ops"]["membership"],
            roster=doc["ops"]["roster"],
            community_sizes=doc["ops"]["community_sizes"],
            diff=doc["ops"]["diff"],
            refresh=doc["ops"]["refresh"],
            served_jobs=len(doc["served_jobs"]),
            skipped_snapshots=doc["skipped"],
        ))
        return doc
